//! Batched training kernels vs their per-sample references, emitted as
//! `BENCH_train.json`.
//!
//! Three learner hot paths, each timed against the retained historical
//! implementation while asserting exact equivalence:
//!
//! * **MLP window SGD** — [`oeb_nn::train_window`] drives the blocked
//!   GEMM batch path (`matmul_xwt_bias_into` forward, `matmul_noskip_into`
//!   backward, `matmul_at_b_accum_into` gradients);
//!   [`oeb_nn::train_window_reference`] drives the per-sample loop. Both
//!   start from the same initial model with identical shuffling, and the
//!   final parameters must agree **bit-for-bit**.
//! * **ARF window training** — serial
//!   [`AdaptiveRandomForest::learn_window`] vs the lockstep-parallel
//!   [`oeb_core::arf_train_window_lockstep`], timed at the machine's
//!   actual parallelism (spinning more workers than cores measures
//!   scheduler thrash, not the kernel) with the structural-digest
//!   equality additionally asserted at 4 workers untimed.
//! * **Hoeffding split evaluation** — the maintained-aggregate
//!   `best_splits` fast path vs the retained reference on a densely fed
//!   leaf; the `(gain, feature, threshold, runner-up)` tuples must agree
//!   bit-for-bit.
//!
//! Timing uses [`oeb_bench::warm_min_pair`]: alternating warm passes,
//! minimum per side. A final traced quick pass records the new `train.*`
//! counters; `--metrics FILE` renders them as a metrics table for the CI
//! counter-vocabulary gate (`trace_check --counters`).
//!
//! Usage: `bench_train [--quick] [--out FILE] [--metrics FILE]`

use oeb_bench::warm_min_pair;
use oeb_linalg::Matrix;
use oeb_nn::{train_window, train_window_reference, Mlp, Objective, Regularizer, SgdConfig};
use oeb_tree::{AdaptiveRandomForest, ArfConfig, HoeffdingConfig, HoeffdingTree};

struct Options {
    quick: bool,
    out: String,
    metrics: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let usage = "usage: bench_train [--quick] [--out FILE] [--metrics FILE]";
    let mut opts = Options {
        quick: false,
        out: "BENCH_train.json".into(),
        metrics: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                i += 1;
                opts.out = args.get(i).ok_or(usage)?.clone();
            }
            "--metrics" => {
                i += 1;
                opts.metrics = Some(args.get(i).ok_or(usage)?.clone());
            }
            _ => return Err(usage.into()),
        }
        i += 1;
    }
    Ok(opts)
}

/// Deterministic xorshift stream for synthetic windows.
fn lcg(seed: &mut u64) -> f64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

fn synth_window(rows: usize, cols: usize, n_classes: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut s = seed;
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| lcg(&mut s) * 3.0).collect())
        .collect();
    let ys: Vec<f64> = data
        .iter()
        .map(|r| {
            let t: f64 = r.iter().sum();
            ((t.abs() * 7.0) as usize % n_classes) as f64
        })
        .collect();
    (Matrix::from_rows(&data), ys)
}

/// MLP window training: GEMM batch path vs per-sample reference,
/// bit-identical final parameters.
fn bench_mlp(quick: bool, passes: usize) -> serde_json::Value {
    let (rows, input, hidden, n_classes, epochs): (usize, usize, Vec<usize>, usize, usize) =
        if quick {
            (512, 16, vec![32, 16], 4, 2)
        } else {
            (2048, 24, vec![64, 32], 5, 5)
        };
    let (xs, ys) = synth_window(rows, input, n_classes, 0x0eb_171);
    let cfg = SgdConfig {
        epochs,
        batch_size: 64,
        lr: 0.01,
        seed: 7,
    };
    let base = Mlp::new(input, &hidden, n_classes, Objective::CrossEntropy, 42);
    let mut batched_params = Vec::new();
    let mut reference_params = Vec::new();
    let (batched_seconds, reference_seconds) = warm_min_pair(
        passes,
        || {
            let mut m = base.clone();
            train_window(&mut m, &xs, &ys, &cfg, &Regularizer::None);
            batched_params = m.get_params();
        },
        || {
            let mut m = base.clone();
            train_window_reference(&mut m, &xs, &ys, &cfg, &Regularizer::None);
            reference_params = m.get_params();
        },
    );
    assert_eq!(batched_params.len(), reference_params.len());
    for (i, (a, b)) in batched_params.iter().zip(&reference_params).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "MLP param {i} diverged: {a} vs {b}"
        );
    }
    let speedup = reference_seconds / batched_seconds.max(1e-12);
    eprintln!(
        "[bench_train] mlp ({rows}x{input} -> {hidden:?} -> {n_classes}, {epochs} epochs): \
         reference {reference_seconds:.4}s, batched {batched_seconds:.4}s ({speedup:.2}x)"
    );
    serde_json::json!({
        "rows": rows as u64,
        "input": input as u64,
        "hidden": hidden.iter().map(|&h| h as u64).collect::<Vec<_>>(),
        "n_classes": n_classes as u64,
        "epochs": epochs as u64,
        "reference_seconds": reference_seconds,
        "batched_seconds": batched_seconds,
        "speedup": speedup,
        "params_bit_identical": true,
    })
}

/// ARF window training: serial fused loop vs lockstep-parallel members.
///
/// Timing runs the lockstep trainer at the machine's *actual*
/// parallelism — on a single-core box that resolves to one worker
/// (lockstep degenerates to the pre-pass-split serial loop, so the
/// ratio measures the refactor's overhead, ~1.0x), while multi-core
/// machines see the real speedup. Spinning 4 workers on 1 core would
/// only measure scheduler-quantum thrash, not the kernel. The
/// bit-identity contract is still checked at 4 workers, untimed.
fn bench_arf(quick: bool, passes: usize) -> serde_json::Value {
    let rows = if quick { 2_000 } else { 8_000 };
    let (xs, ys) = synth_window(rows, 3, 2, 0x0eb_a2f);
    let mk = || AdaptiveRandomForest::new(3, 2, ArfConfig::default());
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    let timed_threads = available.min(4);
    let mut serial_digest = 0u64;
    let mut lockstep_digest = 1u64;
    let (serial_seconds, lockstep_seconds) = warm_min_pair(
        passes,
        || {
            let mut f = mk();
            f.learn_window(&xs, &ys);
            serial_digest = f.digest();
        },
        || {
            let mut f = mk();
            oeb_core::arf_train_window_lockstep(&mut f, &xs, &ys, timed_threads);
            lockstep_digest = f.digest();
        },
    );
    assert_eq!(
        serial_digest, lockstep_digest,
        "ARF forests diverged between the serial and lockstep trainers"
    );
    // Determinism contract at an oversubscribed thread count (untimed).
    let mut four = mk();
    oeb_core::arf_train_window_lockstep(&mut four, &xs, &ys, 4);
    assert_eq!(
        serial_digest,
        four.digest(),
        "ARF forest diverged at 4 lockstep workers"
    );
    let speedup = serial_seconds / lockstep_seconds.max(1e-12);
    eprintln!(
        "[bench_train] arf ({rows} rows, 5 members, {timed_threads} of {available} \
         hw threads): serial {serial_seconds:.4}s, lockstep {lockstep_seconds:.4}s \
         ({speedup:.2}x; digest also checked at 4 workers)"
    );
    serde_json::json!({
        "rows": rows as u64,
        "members": 5u64,
        "timed_threads": timed_threads as u64,
        "available_parallelism": available as u64,
        "serial_seconds": serial_seconds,
        "lockstep_seconds": lockstep_seconds,
        "speedup": speedup,
        "digests_equal_timed": true,
        "digests_equal_4_workers": true,
    })
}

/// Hoeffding split evaluation on a densely fed leaf: maintained
/// aggregates vs the allocating reference.
fn bench_hoeffding(quick: bool, passes: usize) -> serde_json::Value {
    let (samples, evals) = if quick { (4_000, 200) } else { (20_000, 2_000) };
    let (n_features, n_classes) = (8, 4);
    let cfg = HoeffdingConfig {
        grace_period: usize::MAX, // keep the root a leaf while feeding it
        ..Default::default()
    };
    let mut seed = 0x0eb_40ef;
    let mut grown = HoeffdingTree::new(n_features, n_classes, cfg);
    for _ in 0..samples {
        let x: Vec<f64> = (0..n_features).map(|_| lcg(&mut seed) * 10.0).collect();
        let y = (x[0].abs() * 3.0) as usize % n_classes;
        grown.learn_one(&x, y);
    }
    let mut fast_tree = grown.clone();
    let mut ref_tree = grown;
    let mut fast = None;
    let mut reference = None;
    let (fast_seconds, reference_seconds) = warm_min_pair(
        passes,
        || {
            for _ in 0..evals {
                fast = fast_tree.root_split_eval(false);
            }
        },
        || {
            for _ in 0..evals {
                reference = ref_tree.root_split_eval(true);
            }
        },
    );
    let fast = fast.expect("root stayed a leaf");
    let reference = reference.expect("root stayed a leaf");
    assert_eq!(fast.0.to_bits(), reference.0.to_bits(), "best gain");
    assert_eq!(fast.1, reference.1, "split feature");
    assert_eq!(fast.2.to_bits(), reference.2.to_bits(), "threshold");
    assert_eq!(fast.3.to_bits(), reference.3.to_bits(), "runner-up gain");
    let speedup = reference_seconds / fast_seconds.max(1e-12);
    eprintln!(
        "[bench_train] hoeffding ({samples} samples, {evals} split evals): \
         reference {reference_seconds:.4}s, fast {fast_seconds:.4}s ({speedup:.2}x)"
    );
    serde_json::json!({
        "leaf_samples": samples as u64,
        "split_evals": evals as u64,
        "n_features": n_features as u64,
        "n_classes": n_classes as u64,
        "reference_seconds": reference_seconds,
        "fast_seconds": fast_seconds,
        "speedup": speedup,
        "split_bit_identical": true,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let passes = if opts.quick {
        3
    } else {
        oeb_bench::WARM_PASSES
    };

    let mlp = bench_mlp(opts.quick, passes);
    let arf = bench_arf(opts.quick, passes);
    let hoeffding = bench_hoeffding(opts.quick, passes);

    // One traced pass through each batched path so the artifact (and the
    // CI counter gate) record the train.* counters the kernels emit.
    oeb_trace::reset();
    oeb_trace::enable();
    {
        let (xs, ys) = synth_window(256, 8, 3, 0x0eb_77a);
        let mut m = Mlp::new(8, &[16], 3, Objective::CrossEntropy, 9);
        train_window(
            &mut m,
            &xs,
            &ys,
            &SgdConfig {
                epochs: 1,
                ..Default::default()
            },
            &Regularizer::None,
        );
        let (axs, ays) = synth_window(600, 3, 2, 0x0eb_77b);
        let mut forest = AdaptiveRandomForest::new(3, 2, ArfConfig::default());
        oeb_core::arf_train_window_lockstep(&mut forest, &axs, &ays, 2);
        let mut tree = HoeffdingTree::new(
            4,
            2,
            HoeffdingConfig {
                grace_period: 50,
                ..Default::default()
            },
        );
        let (hxs, hys) = synth_window(500, 4, 2, 0x0eb_77c);
        tree.learn_window(&hxs, &hys);
    }
    oeb_trace::disable();
    let snap = oeb_trace::snapshot();
    for counter in [
        "train.mlp.gemm_batches",
        "train.arf.parallel_members",
        "train.hoeffding.split_checks",
    ] {
        assert!(
            snap.counters.get(counter).copied().unwrap_or(0) > 0,
            "traced pass never hit {counter}"
        );
    }
    if let Some(path) = &opts.metrics {
        std::fs::write(path, oeb_trace::render_metrics_table(&snap)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    let metrics = oeb_bench::metrics_json(&snap);

    let json = serde_json::json!({
        "benchmark": "batched training kernels vs per-sample references",
        "quick": opts.quick,
        "passes": passes as u64,
        "equivalence": {
            "mlp": "final parameters bit-identical (GEMM batch vs per-sample)",
            "arf": "forest structural digests equal (lockstep vs serial)",
            "hoeffding": "split tuples bit-identical (maintained aggregates vs rescan)",
        },
        "mlp": mlp,
        "arf": arf,
        "hoeffding": hoeffding,
        "metrics": metrics,
    });
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&json).expect("json serialises"),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    });
    eprintln!("[bench_train] -> {}", opts.out);
}
