//! Incremental delta-statistics vs full per-window recomputation,
//! emitted as `BENCH_incremental.json`.
//!
//! A sliding window (size `W`, stride = change-rate × `W`) advances over
//! a deterministic synthetic stream, and after every slide both engines
//! produce the same statistic bundle:
//!
//! * missing-value ratios (rows / columns / cells);
//! * standard-scaler means and stds;
//! * per-column two-sample KS statistic against the first window;
//! * per-column Hellinger distance between 16-bin histograms and the
//!   first window's histograms;
//! * ECOD outlier scores of 16 fixed probe rows.
//!
//! The **full** engine recomputes everything from the window's rows
//! (`missing_stats`-style scan, [`StandardScaler::fit`],
//! [`ks_statistic`], [`Histogram::new`], [`Ecod::fit`]) — the cost the
//! pipeline paid before the delta layer. The **incremental** engine
//! maintains sufficient statistics ([`MissingDelta`], [`ScalerDelta`],
//! [`EcdfMultiset`], maintained bin counts, [`EcodDelta`]) and only
//! absorbs/retracts the rows each slide touches.
//!
//! Both engines are timed over the *slides*: the first window's state is
//! built once in untimed setup and cloned per pass (the acceptance
//! question is what a steady-state window slide costs, not the cold
//! start), and the full engine likewise skips the first window.
//!
//! Equivalence is enforced, not assumed: the counting statistics (KS,
//! histograms, missing ratios, ECOD scores) must agree **bit-for-bit**
//! (an FNV digest over their raw bits is compared per pass), and the
//! scaler moments must agree to the documented 1e-9 relative epsilon.
//!
//! Timing uses [`oeb_bench::warm_min_pair`]: alternating warm passes,
//! minimum per side.
//!
//! Usage: `bench_incremental [--quick] [--out FILE]`

use oeb_bench::warm_min_pair;
use oeb_linalg::{hellinger, ks_between, ks_statistic, EcdfMultiset, EcdfUniverse, Histogram};
use oeb_outlier::{Ecod, EcodDelta};
use oeb_preprocess::{ScalerDelta, StandardScaler};
use oeb_tabular::{
    sliding_window_ranges, window_slide_deltas, DeltaStat, MissingDelta, SlideDelta,
};
use std::ops::Range;
use std::sync::Arc;

const BINS: usize = 16;
const N_PROBES: usize = 16;
const SCALER_REL_EPS: f64 = 1e-9;

struct Options {
    quick: bool,
    out: String,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let usage = "usage: bench_incremental [--quick] [--out FILE]";
    let mut opts = Options {
        quick: false,
        out: "BENCH_incremental.json".into(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                i += 1;
                opts.out = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("--out needs a path\n{usage}"))?;
            }
            _ => return Err(usage.to_string()),
        }
        i += 1;
    }
    Ok(opts)
}

/// Same LCG family as the other benchmark bins; inputs must not depend
/// on ambient entropy.
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed
}

fn lcg_f64(seed: &mut u64) -> f64 {
    (lcg(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// A drifting stream with NaN holes, infinity pollution, `-0.0`, and
/// (in the first two columns) heavy value multiplicity, so the delta
/// structures face the same mess the chaos tests use.
fn gen_stream(n: usize, d: usize, seed: &mut u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|r| {
            let t = r as f64 / n.max(1) as f64;
            (0..d)
                .map(|c| {
                    let noise = lcg_f64(seed) * 2.0 - 1.0;
                    match lcg(seed) % 100 {
                        0..=3 => f64::NAN,
                        4 => f64::INFINITY,
                        5 => -0.0,
                        _ => {
                            let v = c as f64 + 3.0 * t + noise;
                            if c < 2 {
                                (v * 8.0).round() / 8.0
                            } else {
                                v
                            }
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// FNV-1a-style fold of one word into a running digest.
fn fold(h: u64, bits: u64) -> u64 {
    (h ^ bits).wrapping_mul(0x100000001b3)
}

/// One engine's outputs over every slid window of a rate's run: a digest
/// of the bit-exact statistics, and the scaler moments (epsilon
/// contract) kept separate for the relative comparison.
#[derive(Default)]
struct RunOutput {
    digest: u64,
    scaler: Vec<f64>,
}

impl RunOutput {
    fn push_exact(&mut self, x: f64) {
        self.digest = fold(self.digest, x.to_bits());
    }

    fn push_scaler(&mut self, s: &StandardScaler) {
        self.scaler.extend_from_slice(&s.means);
        self.scaler.extend_from_slice(&s.stds);
    }
}

/// Maintained equal-width bin counts over a fixed range — the bin-count
/// delta behind the histogram comparison. The bin arithmetic is
/// copied from [`Histogram::new`], and the counts are integers, so the
/// snapshot probabilities are bit-identical to a batch histogram of the
/// same rows.
#[derive(Clone)]
struct BinCounts {
    lo: f64,
    span: f64,
    counts: Vec<usize>,
    total: usize,
}

impl BinCounts {
    fn new(lo: f64, hi: f64) -> BinCounts {
        BinCounts {
            lo,
            span: (hi - lo).max(f64::MIN_POSITIVE),
            counts: vec![0; BINS],
            total: 0,
        }
    }

    fn bin_of(&self, x: f64) -> usize {
        let frac = ((x - self.lo) / self.span).clamp(0.0, 1.0);
        let b = (frac * BINS as f64) as usize;
        b.min(BINS - 1)
    }

    fn add(&mut self, x: f64) {
        if x.is_finite() {
            let b = self.bin_of(x);
            self.counts[b] += 1;
            self.total += 1;
        }
    }

    fn sub(&mut self, x: f64) {
        if x.is_finite() {
            let b = self.bin_of(x);
            assert!(self.counts[b] > 0, "retracting from an empty bin");
            self.counts[b] -= 1;
            self.total -= 1;
        }
    }

    /// Same normalisation as [`Histogram::probabilities`].
    fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; BINS];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

/// Per-column reference state shared by both engines (the first window,
/// frozen): finite values for the batch KS, multisets for the delta KS,
/// histogram probabilities, and the fixed bin range.
struct Reference {
    finite_cols: Vec<Vec<f64>>,
    sets: Vec<EcdfMultiset>,
    probs: Vec<Vec<f64>>,
    ranges: Vec<(f64, f64)>,
}

fn build_reference(
    stream: &[Vec<f64>],
    window: &Range<usize>,
    universes: &[Arc<EcdfUniverse>],
) -> Reference {
    let d = universes.len();
    let mut sets: Vec<EcdfMultiset> = universes
        .iter()
        .map(|u| EcdfMultiset::new(Arc::clone(u)))
        .collect();
    for row in &stream[window.start..window.end] {
        for (c, set) in sets.iter_mut().enumerate() {
            set.insert(row[c]);
        }
    }
    let finite_cols: Vec<Vec<f64>> = (0..d)
        .map(|c| {
            stream[window.start..window.end]
                .iter()
                .map(|row| row[c])
                .filter(|x| x.is_finite())
                .collect()
        })
        .collect();
    // Fixed bin ranges from the whole stream's per-column extremes, so
    // every window (and both engines) bins identically.
    let ranges: Vec<(f64, f64)> = universes
        .iter()
        .map(|u| {
            if u.is_empty() {
                return (0.0, 1.0);
            }
            let lo = u.value_at(0);
            let hi = u.value_at(u.len() - 1);
            (lo, if hi > lo { hi } else { lo + 1.0 })
        })
        .collect();
    let probs = sets
        .iter()
        .zip(&ranges)
        .map(|(s, &(lo, hi))| s.histogram(BINS, lo, hi).probabilities())
        .collect();
    Reference {
        finite_cols,
        sets,
        probs,
        ranges,
    }
}

/// The pre-delta pipeline: rebuild every statistic from the window's
/// rows on each slide.
fn run_full(
    stream: &[Vec<f64>],
    windows: &[Range<usize>],
    reference: &Reference,
    probes: &[Vec<f64>],
    d: usize,
) -> RunOutput {
    let mut out = RunOutput::default();
    for w in &windows[1..] {
        let rows = &stream[w.start..w.end];

        // Missing ratios, mirroring `Table::missing_stats`.
        let n_rows = rows.len();
        let mut rows_with_missing = 0usize;
        let mut col_missing = vec![0usize; d];
        for row in rows {
            let mut any = false;
            for (c, x) in row.iter().enumerate() {
                if x.is_nan() {
                    any = true;
                    col_missing[c] += 1;
                }
            }
            if any {
                rows_with_missing += 1;
            }
        }
        let cells: usize = col_missing.iter().sum();
        let missing_cols = col_missing.iter().filter(|&&m| m > 0).count();
        out.push_exact(rows_with_missing as f64 / n_rows as f64);
        out.push_exact(missing_cols as f64 / d as f64);
        out.push_exact(cells as f64 / (n_rows * d) as f64);

        // Scaler: the two-pass batch fit.
        let m = oeb_linalg::Matrix::from_rows(rows);
        out.push_scaler(&StandardScaler::fit(&m));

        // KS and histogram divergence per column, against the frozen
        // reference. `ks_statistic` re-sorts both sides every call —
        // exactly what the batch detectors pay per window.
        for c in 0..d {
            let col: Vec<f64> = rows
                .iter()
                .map(|row| row[c])
                .filter(|x| x.is_finite())
                .collect();
            out.push_exact(ks_statistic(&col, &reference.finite_cols[c]));
            let (lo, hi) = reference.ranges[c];
            let h = Histogram::new(&col, BINS, lo, hi);
            out.push_exact(hellinger(&h.probabilities(), &reference.probs[c]));
        }

        // ECOD: full per-column re-sort and fit, then the probe scores.
        let model = Ecod::fit(&m);
        for p in probes {
            out.push_exact(model.score(p));
        }
    }
    out
}

/// The maintained sufficient statistics of the delta pipeline.
#[derive(Clone)]
struct IncState {
    missing: MissingDelta,
    scaler: ScalerDelta,
    ecod: EcodDelta,
    cols: Vec<EcdfMultiset>,
    hists: Vec<BinCounts>,
}

impl IncState {
    fn absorb(&mut self, row: &[f64]) {
        self.missing.absorb(row);
        self.scaler.absorb(row);
        self.ecod.absorb(row);
        for (c, &x) in row.iter().enumerate() {
            self.cols[c].insert(x);
            self.hists[c].add(x);
        }
    }

    fn retract(&mut self, row: &[f64]) {
        self.missing.retract(row);
        self.scaler.retract(row);
        self.ecod.retract(row);
        for (c, &x) in row.iter().enumerate() {
            self.cols[c].remove(x);
            self.hists[c].sub(x);
        }
    }
}

/// Builds the first window's maintained state (untimed setup; the timed
/// runs clone this and slide from it).
fn prime(
    stream: &[Vec<f64>],
    window: &Range<usize>,
    universes: &[Arc<EcdfUniverse>],
    reference: &Reference,
) -> IncState {
    let d = universes.len();
    let mut state = IncState {
        missing: MissingDelta::new(d),
        scaler: ScalerDelta::new(d),
        ecod: EcodDelta::new(universes),
        cols: universes
            .iter()
            .map(|u| EcdfMultiset::new(Arc::clone(u)))
            .collect(),
        hists: reference
            .ranges
            .iter()
            .map(|&(lo, hi)| BinCounts::new(lo, hi))
            .collect(),
    };
    for row in &stream[window.start..window.end] {
        state.absorb(row);
    }
    state
}

/// The delta pipeline: clone the primed first-window state, then touch
/// only the rows each slide enters or leaves.
fn run_incremental(
    stream: &[Vec<f64>],
    slides: &[SlideDelta],
    reference: &Reference,
    probes: &[Vec<f64>],
    primed: &IncState,
) -> RunOutput {
    let d = reference.sets.len();
    let mut out = RunOutput::default();
    let mut state = primed.clone();

    for slide in slides {
        for r in slide.leaving.clone() {
            state.retract(&stream[r]);
        }
        for r in slide.entering.clone() {
            state.absorb(&stream[r]);
        }

        let ms = state.missing.snapshot();
        out.push_exact(ms.rows_with_missing);
        out.push_exact(ms.missing_columns);
        out.push_exact(ms.empty_cells);

        out.push_scaler(&state.scaler.snapshot());

        for c in 0..d {
            out.push_exact(ks_between(&state.cols[c], &reference.sets[c]));
            out.push_exact(hellinger(
                &state.hists[c].probabilities(),
                &reference.probs[c],
            ));
        }

        let model = state.ecod.snapshot();
        for p in probes {
            out.push_exact(model.score(p));
        }
    }
    out
}

/// Largest relative deviation between the two engines' scaler moments.
fn scaler_max_rel_dev(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "scaler series must align");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / (1.0 + x.abs().max(y.abs())))
        .fold(0.0, f64::max)
}

fn bench_rate(
    change_rate: f64,
    window_rows: usize,
    n_slides: usize,
    d: usize,
    passes: usize,
) -> serde_json::Value {
    let stride = ((change_rate * window_rows as f64) as usize).max(1);
    let n_rows = window_rows + n_slides * stride;
    let mut seed = 0x0eb_de17a ^ (stride as u64);
    let stream = gen_stream(n_rows, d, &mut seed);
    let probes = gen_stream(N_PROBES, d, &mut seed);
    let windows = sliding_window_ranges(n_rows, window_rows, stride);
    let universes: Vec<Arc<EcdfUniverse>> = (0..d)
        .map(|c| {
            Arc::new(EcdfUniverse::from_values(
                stream.iter().map(|row| row[c]).collect::<Vec<_>>(),
            ))
        })
        .collect();
    let reference = build_reference(&stream, &windows[0], &universes);
    let primed = prime(&stream, &windows[0], &universes, &reference);
    // The first delta is the initial window's build — already primed.
    let slides: Vec<SlideDelta> = window_slide_deltas(&windows).split_off(1);

    let mut full = RunOutput::default();
    let mut incremental = RunOutput::default();
    let (full_seconds, incremental_seconds) = warm_min_pair(
        passes,
        || full = run_full(&stream, &windows, &reference, &probes, d),
        || incremental = run_incremental(&stream, &slides, &reference, &probes, &primed),
    );

    assert_eq!(
        full.digest, incremental.digest,
        "counting statistics must be bit-identical at change rate {change_rate}"
    );
    let rel_dev = scaler_max_rel_dev(&full.scaler, &incremental.scaler);
    assert!(
        rel_dev <= SCALER_REL_EPS,
        "scaler moments exceeded the {SCALER_REL_EPS} contract: {rel_dev}"
    );

    let speedup = full_seconds / incremental_seconds.max(1e-12);
    eprintln!(
        "[bench_incremental] rate {:>4.0}% (stride {stride:>4}, {} slides): \
         full {full_seconds:.4}s, incremental {incremental_seconds:.4}s ({speedup:.2}x)",
        change_rate * 100.0,
        slides.len(),
    );
    serde_json::json!({
        "change_rate": change_rate,
        "stride": stride as u64,
        "slides": slides.len() as u64,
        "full_seconds": full_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": speedup,
        "digests_equal": true,
        "scaler_max_rel_dev": rel_dev,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let d = 8;
    let (window_rows, n_slides, passes) = if opts.quick {
        (512, 12, 3)
    } else {
        (2048, 24, oeb_bench::WARM_PASSES)
    };
    let rates: Vec<serde_json::Value> = [0.01, 0.10, 0.50]
        .iter()
        .map(|&rate| bench_rate(rate, window_rows, n_slides, d, passes))
        .collect();

    // One traced pass through the production engine (`extract_stats` in
    // incremental mode) so the artifact records the `stats.*` delta
    // counters the maintained path emits.
    oeb_trace::reset();
    oeb_trace::enable();
    let entries = oeb_synth::registry_scaled(if opts.quick { 0.02 } else { 0.04 });
    let entry = entries
        .iter()
        .find(|e| e.spec.name == "Electricity Prices")
        .expect("registry includes Electricity Prices");
    let dataset = oeb_synth::generate(&entry.spec, 0);
    let stats = oeb_core::stats::extract_stats(
        &dataset,
        &oeb_core::stats::StatsConfig {
            mode: oeb_core::stats::StatsMode::Incremental,
            ..Default::default()
        },
    );
    oeb_trace::disable();
    let metrics = oeb_bench::metrics_json(&oeb_trace::snapshot());

    let json = serde_json::json!({
        "benchmark": "incremental delta-statistics vs full per-window recomputation",
        "quick": opts.quick,
        "window_rows": window_rows as u64,
        "cols": d as u64,
        "passes": passes as u64,
        "bins": BINS as u64,
        "statistics": [
            "missing ratios (rows/columns/cells)",
            "standard-scaler means and stds",
            "per-column KS vs first window",
            "per-column Hellinger histogram distance vs first window",
            "ECOD probe scores",
        ],
        "equivalence": {
            "bit_identical": ["missing", "ks", "histogram", "ecod"],
            "scaler_rel_eps": SCALER_REL_EPS,
        },
        "rates": rates,
        "traced_stats_windows": stats.n_windows as u64,
        "metrics": metrics,
    });
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&json).expect("json serialises"),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    });
    eprintln!("[bench_incremental] -> {}", opts.out);
}
