//! Trace timeline analytics behind the `oeb-profile` binary.
//!
//! Consumes a schema-v2 trace (`--trace` JSONL from `repro` or the
//! sweep CLI) and produces the deterministic `PROFILE.json` document
//! plus a human-readable table: per-stage span totals, per-cell wall
//! time attributed through [`oeb_trace::CellCtx`], per-worker busy/idle
//! timelines, and the makespan against its scheduling lower bound
//! `max(longest cell, total cell time / workers)`.
//!
//! Determinism contract: the analysis is a pure function of the trace
//! bytes. Cell aggregation fans out over [`oeb_core::parallel_map`] but
//! deposits into per-key slots indexed by the sorted key order, so the
//! rendered output is byte-identical at any `--threads` value — a
//! property the `profile_output_is_thread_invariant` test pins.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use oeb_core::{parallel_map, CostModel, CostSample};

/// Span names that carry a whole cell's wall time. `cell.run` wraps the
/// per-seed harness funnel (every execution path); `sweep.cell` is the
/// sweep's per-grid-cell umbrella and is only used as a fallback for
/// traces recorded before the harness span existed.
const CELL_WALL_SPANS: [&str; 2] = ["cell.run", "sweep.cell"];

/// One span record parsed back out of a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span name (the `SpanDef` name).
    pub name: String,
    /// Worker slot that recorded the span.
    pub slot: u64,
    /// Epoch-relative start, exact nanoseconds.
    pub start_ns: u64,
    /// Duration, exact nanoseconds.
    pub dur_ns: u64,
    /// Attribution fields, present when the span ran under a `CellCtx`.
    pub dataset: Option<String>,
    /// Learner class from the cell context.
    pub learner: Option<String>,
    /// Cell seed from the cell context.
    pub cell_seed: Option<u64>,
    /// Raw dataset rows from the cell context.
    pub rows: Option<u64>,
}

impl TraceSpan {
    fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    fn cell_key(&self) -> Option<(String, String, u64)> {
        match (&self.dataset, &self.learner, self.cell_seed) {
            (Some(d), Some(l), Some(s)) => Some((d.clone(), l.clone(), s)),
            _ => None,
        }
    }
}

/// The trace footer record (always the last line of a v2 trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFooter {
    /// Trace schema version.
    pub schema: u64,
    /// Number of span records the writer emitted.
    pub events: u64,
    /// Events silently dropped by the per-thread buffer cap.
    pub dropped: u64,
}

/// A parsed trace file: the span stream plus its footer.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrace {
    /// Span records in file order (the deterministic drained order).
    pub spans: Vec<TraceSpan>,
    /// Footer, when the trace has one (schema v2+).
    pub footer: Option<TraceFooter>,
}

fn field_u64(v: &serde_json::Value, key: &str, line: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("line {line}: `{key}` missing or not a non-negative integer"))
}

/// Parse a trace JSONL document. Tolerates v1 traces (no footer, no
/// nanosecond fields — `start_us`/`dur_us` are scaled up) so old
/// artifacts stay analysable; rejects malformed lines with a message
/// naming the line number.
pub fn parse_trace(text: &str) -> Result<ParsedTrace, String> {
    let mut spans = Vec::new();
    let mut footer = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if footer.is_some() {
            return Err(format!("line {lineno}: record after the footer"));
        }
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("line {lineno}: invalid JSON: {e}"))?;
        match v.get("type").and_then(|t| t.as_str()) {
            Some("span") => {
                let ns_or = |exact: &str, coarse: &str| -> Result<u64, String> {
                    match v.get(exact).and_then(|x| x.as_u64()) {
                        Some(n) => Ok(n),
                        None => Ok(field_u64(&v, coarse, lineno)? * 1_000),
                    }
                };
                spans.push(TraceSpan {
                    name: v
                        .get("name")
                        .and_then(|n| n.as_str())
                        .ok_or_else(|| format!("line {lineno}: `name` missing"))?
                        .to_string(),
                    slot: field_u64(&v, "slot", lineno)?,
                    start_ns: ns_or("start_ns", "start_us")?,
                    dur_ns: ns_or("dur_ns", "dur_us")?,
                    dataset: v.get("dataset").and_then(|x| x.as_str()).map(String::from),
                    learner: v.get("learner").and_then(|x| x.as_str()).map(String::from),
                    cell_seed: v.get("cell_seed").and_then(|x| x.as_u64()),
                    rows: v.get("rows").and_then(|x| x.as_u64()),
                });
            }
            Some("footer") => {
                footer = Some(TraceFooter {
                    schema: field_u64(&v, "schema", lineno)?,
                    events: field_u64(&v, "events", lineno)?,
                    dropped: field_u64(&v, "dropped", lineno)?,
                });
            }
            other => {
                return Err(format!("line {lineno}: unknown record type {other:?}"));
            }
        }
    }
    if let Some(f) = footer {
        if f.events != spans.len() as u64 {
            return Err(format!(
                "footer claims {} events but the file holds {}",
                f.events,
                spans.len()
            ));
        }
    }
    Ok(ParsedTrace { spans, footer })
}

/// Aggregate totals for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTotal {
    /// Number of span records.
    pub count: u64,
    /// Sum of exact durations in nanoseconds.
    pub total_ns: u64,
}

/// Everything attributed to one `(dataset, learner, seed)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellProfile {
    /// Dataset name.
    pub dataset: String,
    /// Learner class.
    pub learner: String,
    /// Cell seed.
    pub seed: u64,
    /// Raw dataset rows (max over the cell's spans).
    pub rows: u64,
    /// Wall time of the cell's top-level run spans.
    pub wall_ns: u64,
    /// Per-stage totals inside this cell.
    pub stages: BTreeMap<String, StageTotal>,
}

/// Busy/idle summary for one worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Trace slot (0 = spawning thread, 1.. = workers).
    pub slot: u64,
    /// Span records this slot recorded.
    pub events: u64,
    /// Union length of the slot's span intervals (nested spans don't
    /// double-count).
    pub busy_ns: u64,
}

/// The full analysis of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Span records analysed.
    pub events: u64,
    /// Dropped-event count from the footer (0 when absent).
    pub dropped: u64,
    /// Trace schema version (1 when the trace had no footer).
    pub trace_schema: u64,
    /// Per-stage totals over the whole trace.
    pub stages: BTreeMap<String, StageTotal>,
    /// Per-cell profiles, slowest first (ties broken by key).
    pub cells: Vec<CellProfile>,
    /// Per-slot busy/idle summaries, by slot.
    pub workers: Vec<WorkerProfile>,
    /// Wall time from first span start to last span end.
    pub makespan_ns: u64,
    /// Longest single cell wall time.
    pub longest_cell_ns: u64,
    /// Sum of all cell wall times.
    pub total_cell_ns: u64,
    /// Scheduling lower bound: `max(longest cell, total / workers)`.
    pub lower_bound_ns: u64,
    /// `Σ busy / (workers · makespan)`, in `[0, 1]`.
    pub utilization: f64,
}

/// Union length of a set of `[start, end)` intervals.
fn interval_union_ns(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in iv {
        match &mut cur {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => {
                if let Some((cs, ce)) = cur {
                    total += ce - cs;
                }
                cur = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Analyse a parsed trace. `threads` bounds the fan-out of the per-cell
/// aggregation; the result is byte-identical for every value.
pub fn analyze(trace: &ParsedTrace, threads: usize) -> Profile {
    let mut stages: BTreeMap<String, StageTotal> = BTreeMap::new();
    for s in &trace.spans {
        let t = stages.entry(s.name.clone()).or_default();
        t.count += 1;
        t.total_ns += s.dur_ns;
    }

    // Group attributed spans by cell key, sorted for determinism.
    let mut by_cell: BTreeMap<(String, String, u64), Vec<&TraceSpan>> = BTreeMap::new();
    for s in &trace.spans {
        if let Some(key) = s.cell_key() {
            by_cell.entry(key).or_default().push(s);
        }
    }
    let wall_span = CELL_WALL_SPANS
        .iter()
        .copied()
        .find(|w| trace.spans.iter().any(|s| s.name == *w));
    let grouped: Vec<_> = by_cell.iter().collect();
    let mut cells: Vec<CellProfile> = parallel_map(grouped.len(), threads.max(1), |i| {
        let ((dataset, learner, seed), spans) = &grouped[i];
        let mut cell = CellProfile {
            dataset: dataset.clone(),
            learner: learner.clone(),
            seed: *seed,
            rows: spans.iter().filter_map(|s| s.rows).max().unwrap_or(0),
            wall_ns: 0,
            stages: BTreeMap::new(),
        };
        for s in spans.iter() {
            let t = cell.stages.entry(s.name.clone()).or_default();
            t.count += 1;
            t.total_ns += s.dur_ns;
            if Some(s.name.as_str()) == wall_span {
                cell.wall_ns += s.dur_ns;
            }
        }
        cell
    });
    cells.sort_by(|a, b| {
        b.wall_ns
            .cmp(&a.wall_ns)
            .then_with(|| (&a.dataset, &a.learner, a.seed).cmp(&(&b.dataset, &b.learner, b.seed)))
    });

    // Per-slot busy time: union of span intervals, so nesting and
    // overlap within a slot never double-count.
    let mut by_slot: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for s in &trace.spans {
        by_slot
            .entry(s.slot)
            .or_default()
            .push((s.start_ns, s.end_ns()));
    }
    let workers: Vec<WorkerProfile> = by_slot
        .into_iter()
        .map(|(slot, iv)| WorkerProfile {
            slot,
            events: iv.len() as u64,
            busy_ns: interval_union_ns(iv),
        })
        .collect();

    let start = trace.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let end = trace.spans.iter().map(TraceSpan::end_ns).max().unwrap_or(0);
    let makespan_ns = end.saturating_sub(start);
    let longest_cell_ns = cells.iter().map(|c| c.wall_ns).max().unwrap_or(0);
    let total_cell_ns: u64 = cells.iter().map(|c| c.wall_ns).sum();
    // Workers executing cells bound the schedule; when no cell spans are
    // attributed, every recording slot counts.
    let cell_workers = trace
        .spans
        .iter()
        .filter(|s| Some(s.name.as_str()) == wall_span)
        .map(|s| s.slot)
        .collect::<std::collections::BTreeSet<_>>()
        .len()
        .max(1);
    let n_workers = if total_cell_ns > 0 {
        cell_workers
    } else {
        workers.len().max(1)
    };
    let lower_bound_ns = longest_cell_ns.max(total_cell_ns / n_workers as u64);
    let busy: u64 = workers.iter().map(|w| w.busy_ns).sum();
    let utilization = if makespan_ns > 0 && !workers.is_empty() {
        (busy as f64 / (workers.len() as u64 * makespan_ns) as f64).min(1.0)
    } else {
        0.0
    };

    Profile {
        events: trace.spans.len() as u64,
        dropped: trace.footer.map_or(0, |f| f.dropped),
        trace_schema: trace.footer.map_or(1, |f| f.schema),
        stages,
        cells,
        workers,
        makespan_ns,
        longest_cell_ns,
        total_cell_ns,
        lower_bound_ns,
        utilization,
    }
}

/// Convenience: parse then analyse.
pub fn profile_trace(text: &str, threads: usize) -> Result<Profile, String> {
    Ok(analyze(&parse_trace(text)?, threads))
}

fn stage_map_json(stages: &BTreeMap<String, StageTotal>) -> serde_json::Value {
    let mut m = serde_json::Map::new();
    for (name, t) in stages {
        m.insert(
            name.clone(),
            serde_json::json!({ "count": t.count, "total_ns": t.total_ns }),
        );
    }
    serde_json::Value::Object(m)
}

/// Build the `PROFILE.json` document. Keys are inserted in a fixed
/// order, so equal profiles serialise to equal bytes.
pub fn profile_json(p: &Profile, top: usize) -> serde_json::Value {
    let cells: Vec<serde_json::Value> = p
        .cells
        .iter()
        .map(|c| {
            serde_json::json!({
                "dataset": c.dataset.clone(),
                "learner": c.learner.clone(),
                "seed": c.seed,
                "rows": c.rows,
                "wall_ns": c.wall_ns,
                "stages": stage_map_json(&c.stages),
            })
        })
        .collect();
    let top_cells: Vec<serde_json::Value> = p
        .cells
        .iter()
        .take(top)
        .map(|c| {
            serde_json::json!({
                "dataset": c.dataset.clone(),
                "learner": c.learner.clone(),
                "seed": c.seed,
                "wall_ns": c.wall_ns,
            })
        })
        .collect();
    let per_worker: Vec<serde_json::Value> = p
        .workers
        .iter()
        .map(|w| serde_json::json!({ "slot": w.slot, "events": w.events, "busy_ns": w.busy_ns }))
        .collect();
    serde_json::json!({
        "schema": 1,
        "events": p.events,
        "dropped": p.dropped,
        "trace_schema": p.trace_schema,
        "stages": stage_map_json(&p.stages),
        "timeline": serde_json::json!({
            "workers": p.workers.len() as u64,
            "makespan_ns": p.makespan_ns,
            "busy_ns": p.workers.iter().map(|w| w.busy_ns).sum::<u64>(),
            "utilization": p.utilization,
            "longest_cell_ns": p.longest_cell_ns,
            "total_cell_ns": p.total_cell_ns,
            "lower_bound_ns": p.lower_bound_ns,
            "per_worker": per_worker,
        }),
        "cells": cells,
        "top": top_cells,
    })
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Render the human-readable profile table.
pub fn render_profile(p: &Profile, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {} events, {} dropped (trace schema {})",
        p.events, p.dropped, p.trace_schema
    );
    let busy: u64 = p.workers.iter().map(|w| w.busy_ns).sum();
    let _ = writeln!(out, "\nstages (share of busy time)");
    let width = p.stages.keys().map(String::len).max().unwrap_or(5).max(5);
    for (name, t) in &p.stages {
        let share = if busy > 0 {
            100.0 * t.total_ns as f64 / busy as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {name:<width$}  count={:<6} total_ms={:<12} share={share:.1}%",
            t.count,
            ms(t.total_ns),
        );
    }
    let _ = writeln!(
        out,
        "\ntimeline: workers={} makespan_ms={} busy_ms={} utilization={:.1}%",
        p.workers.len(),
        ms(p.makespan_ns),
        ms(busy),
        100.0 * p.utilization
    );
    let _ = writeln!(
        out,
        "lower bound_ms={} (longest cell {} / total-over-workers {})",
        ms(p.lower_bound_ns),
        ms(p.longest_cell_ns),
        ms(p.total_cell_ns),
    );
    for w in &p.workers {
        let idle = p.makespan_ns.saturating_sub(w.busy_ns);
        let _ = writeln!(
            out,
            "  slot {:<3} events={:<6} busy_ms={:<12} idle_ms={}",
            w.slot,
            w.events,
            ms(w.busy_ns),
            ms(idle)
        );
    }
    if !p.cells.is_empty() {
        let _ = writeln!(out, "\ntop {} cells by wall time", top.min(p.cells.len()));
        for c in p.cells.iter().take(top) {
            let _ = writeln!(
                out,
                "  {:<28} {:<10} seed={:<20} rows={:<8} wall_ms={}",
                c.dataset,
                c.learner,
                c.seed,
                c.rows,
                ms(c.wall_ns)
            );
        }
    }
    out
}

/// Extract cost-model samples: one per attributed cell wall span, in
/// trace order.
pub fn cost_samples(trace: &ParsedTrace) -> Vec<CostSample> {
    let wall_span = CELL_WALL_SPANS
        .iter()
        .copied()
        .find(|w| trace.spans.iter().any(|s| s.name == *w));
    trace
        .spans
        .iter()
        .filter(|s| Some(s.name.as_str()) == wall_span)
        .filter_map(|s| {
            Some(CostSample {
                learner: s.learner.clone()?,
                rows: s.rows?,
                dur_ns: s.dur_ns,
            })
        })
        .collect()
}

/// Fit the cost model from a trace's attributed cell spans.
pub fn fit_cost_model(trace: &ParsedTrace) -> CostModel {
    CostModel::fit(&cost_samples(trace))
}

/// Cross-check the profile's per-stage totals against a rendered
/// metrics table (`render_metrics_table` output): every span row must
/// match the trace aggregate exactly — same count, same `total_us`
/// (both floor the same nanosecond sum once). Returns the number of
/// span names checked.
pub fn check_metrics(p: &Profile, metrics_text: &str) -> Result<usize, String> {
    if p.dropped > 0 {
        return Err(format!(
            "trace dropped {} events; span totals cannot match the snapshot",
            p.dropped
        ));
    }
    let mut in_spans = false;
    let mut checked = 0usize;
    let mut seen = std::collections::BTreeSet::new();
    for line in metrics_text.lines() {
        if !line.starts_with(' ') {
            in_spans = line == "spans";
            continue;
        }
        if !in_spans {
            continue;
        }
        let mut it = line.split_whitespace();
        let name = it.next().ok_or("empty span row")?;
        let mut count = None;
        let mut total_us = None;
        for kv in it {
            if let Some(v) = kv.strip_prefix("count=") {
                count = v.parse::<u64>().ok();
            } else if let Some(v) = kv.strip_prefix("total_us=") {
                total_us = v.parse::<u64>().ok();
            }
        }
        let (count, total_us) = match (count, total_us) {
            (Some(c), Some(t)) => (c, t),
            _ => return Err(format!("unparseable span row: {line:?}")),
        };
        let stage = p
            .stages
            .get(name)
            .ok_or_else(|| format!("span {name:?} in metrics but absent from the trace"))?;
        if stage.count != count || stage.total_ns / 1_000 != total_us {
            return Err(format!(
                "span {name:?}: metrics count={count} total_us={total_us}, trace count={} total_us={}",
                stage.count,
                stage.total_ns / 1_000
            ));
        }
        seen.insert(name.to_string());
        checked += 1;
    }
    if let Some(missing) = p.stages.keys().find(|k| !seen.contains(*k)) {
        return Err(format!(
            "span {missing:?} in the trace but absent from the metrics table"
        ));
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, slot: u64, start: u64, dur: u64) -> String {
        format!(
            "{{\"type\":\"span\",\"id\":0,\"slot\":{slot},\"seq\":0,\"name\":\"{name}\",\"start_us\":{},\"dur_us\":{},\"start_ns\":{start},\"dur_ns\":{dur}}}",
            start / 1_000,
            dur / 1_000
        )
    }

    fn cell_span(
        name: &str,
        slot: u64,
        start: u64,
        dur: u64,
        cell: (&str, &str, u64, u64),
    ) -> String {
        let mut line = span(name, slot, start, dur);
        line.pop();
        format!(
            "{line},\"dataset\":\"{}\",\"learner\":\"{}\",\"cell_seed\":{},\"rows\":{}}}",
            cell.0, cell.1, cell.2, cell.3
        )
    }

    fn sample_trace() -> String {
        let lines = [
            cell_span("cell.run", 1, 0, 4_000_000, ("beijing", "arf", 7, 100)),
            cell_span(
                "evaluate.train",
                1,
                100,
                1_000_000,
                ("beijing", "arf", 7, 100),
            ),
            cell_span("cell.run", 2, 0, 2_000_000, ("room", "tree", 9, 50)),
            span("report.render", 0, 4_000_000, 500_000),
            "{\"type\":\"footer\",\"schema\":2,\"events\":4,\"dropped\":0}".to_string(),
        ];
        lines.join("\n") + "\n"
    }

    #[test]
    fn parses_and_analyses_a_small_trace() {
        let trace = parse_trace(&sample_trace()).unwrap();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.footer.unwrap().dropped, 0);

        let p = analyze(&trace, 2);
        assert_eq!(p.stages["cell.run"].count, 2);
        assert_eq!(p.stages["cell.run"].total_ns, 6_000_000);
        assert_eq!(p.cells.len(), 2);
        // Slowest first.
        assert_eq!(p.cells[0].dataset, "beijing");
        assert_eq!(p.cells[0].wall_ns, 4_000_000);
        assert_eq!(p.cells[0].rows, 100);
        // Nested train span does not inflate busy time for slot 1.
        let slot1 = p.workers.iter().find(|w| w.slot == 1).unwrap();
        assert_eq!(slot1.busy_ns, 4_000_000);
        assert_eq!(p.makespan_ns, 4_500_000);
        assert_eq!(p.total_cell_ns, 6_000_000);
        // Two slots ran cells: lower bound = max(4ms, 6ms / 2) = 4ms.
        assert_eq!(p.lower_bound_ns, 4_000_000);
    }

    #[test]
    fn analysis_is_thread_invariant() {
        let trace = parse_trace(&sample_trace()).unwrap();
        let one = serde_json::to_string(&profile_json(&analyze(&trace, 1), 5)).unwrap();
        let four = serde_json::to_string(&profile_json(&analyze(&trace, 4), 5)).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn cost_samples_feed_the_model() {
        let trace = parse_trace(&sample_trace()).unwrap();
        let samples = cost_samples(&trace);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].learner, "arf");
        assert_eq!(samples[0].rows, 100);
        let model = fit_cost_model(&trace);
        assert!(model.classes.contains_key("arf"));
        assert!(model.classes.contains_key("tree"));
    }

    #[test]
    fn check_metrics_accepts_matching_and_rejects_drifted_tables() {
        let p = analyze(&parse_trace(&sample_trace()).unwrap(), 1);
        let good = "counters\n  x  1\nspans\n  cell.run        count=2 total_us=6000 mean_us=3000\n  evaluate.train  count=1 total_us=1000 mean_us=1000\n  report.render   count=1 total_us=500 mean_us=500\n";
        assert_eq!(check_metrics(&p, good).unwrap(), 3);
        let drifted = good.replace("total_us=6000", "total_us=6001");
        assert!(check_metrics(&p, &drifted).is_err());
        let missing = "spans\n  cell.run  count=2 total_us=6000 mean_us=3000\n";
        assert!(check_metrics(&p, missing)
            .unwrap_err()
            .contains("absent from the metrics"));
    }

    #[test]
    fn footer_event_count_must_match() {
        let bad = sample_trace().replace("\"events\":4", "\"events\":9");
        assert!(parse_trace(&bad).unwrap_err().contains("footer claims"));
    }

    #[test]
    fn v1_traces_without_nanoseconds_still_parse() {
        let v1 = "{\"type\":\"span\",\"id\":0,\"slot\":0,\"seq\":0,\"name\":\"a\",\"start_us\":10,\"dur_us\":5}\n";
        let trace = parse_trace(v1).unwrap();
        assert_eq!(trace.spans[0].start_ns, 10_000);
        assert_eq!(trace.spans[0].dur_ns, 5_000);
        assert!(trace.footer.is_none());
        assert_eq!(analyze(&trace, 1).trace_schema, 1);
    }

    #[test]
    fn interval_union_merges_overlaps() {
        assert_eq!(interval_union_ns(vec![(0, 10), (5, 15), (20, 30)]), 25);
        assert_eq!(interval_union_ns(vec![]), 0);
    }
}
