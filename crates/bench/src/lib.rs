//! # oeb-bench
//!
//! The benchmark harness of the OEBench reproduction:
//!
//! * the `repro` binary regenerates every table and figure of the
//!   paper's evaluation (`cargo run -p oeb-bench --release --bin repro --
//!   all`), writing text and JSON artifacts under `results/`;
//! * Criterion micro-benches (`cargo bench`) cover the per-window
//!   kernels behind those artifacts: learner train/predict, drift
//!   detectors, outlier detectors, preprocessing, and the end-to-end
//!   prequential pipeline.

pub mod counter_vocab;
pub mod profile;

use std::fs;
use std::path::Path;

use oeb_core::experiments::{run_experiment, ExpContext, ExperimentOutput, ALL_EXPERIMENTS};
use oeb_core::stats::OeStats;
use oeb_core::LinePlot;
use oeb_trace::{SpanDef, Stopwatch};

static EXPERIMENT_SPAN: SpanDef = SpanDef::new("repro.experiment");

/// Extracts a float series from a JSON array (nulls = diverged = NaN).
fn json_floats(v: &serde_json::Value) -> Vec<f64> {
    v.as_array()
        .map(|a| a.iter().map(|x| x.as_f64().unwrap_or(f64::NAN)).collect())
        .unwrap_or_default()
}

/// Renders SVG figures for the curve experiments; returns
/// `(file-suffix, svg)` pairs (empty for non-curve experiments).
pub fn render_figures(out: &ExperimentOutput) -> Vec<(String, String)> {
    match out.id {
        "fig4" => vec![(
            "fig4.svg".into(),
            LinePlot::new("Valid-value ratio per window (evolving sensors)")
                .series("feature 0", json_floats(&out.json["feature0_valid_ratio"]))
                .series("feature 1", json_floats(&out.json["feature1_valid_ratio"]))
                .render(),
        )],
        "fig5" => vec![(
            "fig5.svg".into(),
            LinePlot::new("Test loss: filling vs discarding evolving features")
                .series("Filling (oracle)", json_floats(&out.json["oracle"]))
                .series("Filling (normal)", json_floats(&out.json["normal"]))
                .series("Discard", json_floats(&out.json["discard"]))
                .render(),
        )],
        "fig7" => {
            let markers: Vec<usize> = out.json["drift_windows"]
                .as_array()
                .map(|a| {
                    a.iter()
                        .filter_map(|v| v.as_u64())
                        .map(|v| v as usize)
                        .collect()
                })
                .unwrap_or_default();
            vec![(
                "fig7.svg".into(),
                LinePlot::new("Test loss around drift occurrences")
                    .series("Naive-DT", json_floats(&out.json["dt"]))
                    .series("Naive-NN", json_floats(&out.json["nn"]))
                    .markers(markers)
                    .render(),
            )]
        }
        "fig8" => {
            let flood = out.json["flood_window"].as_u64().unwrap_or(0) as usize;
            vec![(
                "fig8.svg".into(),
                LinePlot::new("Window anomaly ratios (flood marked)")
                    .series("ECOD", json_floats(&out.json["ecod"]))
                    .series("IForest", json_floats(&out.json["iforest"]))
                    .markers(vec![flood])
                    .render(),
            )]
        }
        "fig15" | "fig16" => {
            // One SVG per dataset, with one series per variant.
            let Some(curves) = out.json["curves"].as_array() else {
                return Vec::new();
            };
            let mut by_dataset: Vec<(String, LinePlot)> = Vec::new();
            for c in curves {
                let dataset = c["dataset"].as_str().unwrap_or("?").to_string();
                let label = format!(
                    "{} [{}]",
                    c["variant"].as_str().unwrap_or("?"),
                    c["algorithm"].as_str().unwrap_or("?")
                );
                let values = json_floats(&c["curve"]);
                match by_dataset.iter_mut().find(|(d, _)| *d == dataset) {
                    Some((_, plot)) => plot.series.push(oeb_core::Series { label, values }),
                    None => {
                        let title = format!("{} — {}", out.title, dataset);
                        by_dataset.push((dataset, LinePlot::new(title).series(label, values)));
                    }
                }
            }
            by_dataset
                .into_iter()
                .map(|(dataset, plot)| {
                    (
                        format!("{}_{}.svg", out.id, dataset.replace(' ', "_")),
                        plot.render(),
                    )
                })
                .collect()
        }
        _ => Vec::new(),
    }
}

/// Converts an [`oeb_trace::MetricsSnapshot`] into a JSON value for
/// embedding in benchmark artifacts: counters verbatim, spans as
/// `{count, total_seconds}`.
pub fn metrics_json(snap: &oeb_trace::MetricsSnapshot) -> serde_json::Value {
    let mut counters = serde_json::Map::new();
    for (name, v) in &snap.counters {
        counters.insert(name.clone(), (*v).into());
    }
    let mut spans = serde_json::Map::new();
    for (name, s) in &snap.spans {
        spans.insert(
            name.clone(),
            serde_json::json!({
                "count": s.count,
                "total_seconds": s.total_ns as f64 / 1e9,
            }),
        );
    }
    serde_json::json!({
        "counters": serde_json::Value::Object(counters),
        "spans": serde_json::Value::Object(spans),
    })
}

/// Number of alternating warm passes the benchmark bins run by default;
/// each reported figure is the minimum across passes.
pub const WARM_PASSES: usize = 5;

/// Wall-clock sample accumulator for one side of an alternating
/// warm-pass comparison.
///
/// For a fixed deterministic workload the minimum across passes is the
/// noise floor — scheduler hiccups and cold caches only ever inflate a
/// sample — so two timers fed from interleaved passes yield a ratio
/// that neither side's outliers can skew. Callers drive the alternation
/// loop themselves, which keeps per-pass hooks (trace enable/disable,
/// bit-identity asserts) outside the timed regions; [`warm_min_pair`]
/// wraps the common no-hook case.
#[derive(Debug, Default)]
pub struct WarmTimer {
    samples: Vec<f64>,
}

impl WarmTimer {
    /// An empty accumulator.
    pub fn new() -> WarmTimer {
        WarmTimer::default()
    }

    /// Times one pass of `f`, records the sample, and passes through the
    /// closure's result (so bit-identity checks can run on the output
    /// without re-entering the timed region).
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let watch = Stopwatch::start();
        let out = f();
        self.samples.push(watch.elapsed_seconds());
        out
    }

    /// Number of samples recorded so far.
    pub fn passes(&self) -> usize {
        self.samples.len()
    }

    /// The minimum recorded sample, in seconds.
    pub fn min_seconds(&self) -> f64 {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        *sorted.first().expect("min_seconds needs at least one pass")
    }
}

/// Times `a` and `b` over `passes` alternating warm passes (a, b, a, b,
/// …) and returns `(min_a_seconds, min_b_seconds)`.
pub fn warm_min_pair<F: FnMut(), G: FnMut()>(passes: usize, mut a: F, mut b: G) -> (f64, f64) {
    assert!(passes >= 1, "warm_min_pair needs at least one pass");
    let mut timer_a = WarmTimer::new();
    let mut timer_b = WarmTimer::new();
    for _ in 0..passes {
        timer_a.time(&mut a);
        timer_b.time(&mut b);
    }
    (timer_a.min_seconds(), timer_b.min_seconds())
}

/// Command-line options of the `repro` binary.
#[derive(Debug, Clone)]
pub struct ReproOptions {
    /// Experiment ids to run (`all` expands to every experiment).
    pub experiments: Vec<String>,
    /// Row-scale factor on the registry specs.
    pub scale: f64,
    /// Number of repeat seeds.
    pub n_seeds: usize,
    /// Output directory for artifacts.
    pub out_dir: String,
    /// Worker threads for parallel experiment grids; `None` falls back
    /// to `OEBENCH_THREADS` and then the machine's parallelism.
    pub threads: Option<usize>,
    /// Write a span trace (JSONL) to this path after the run.
    pub trace: Option<String>,
    /// Print the metrics table to stderr after the run.
    pub metrics: bool,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            experiments: vec!["all".into()],
            scale: 0.10,
            n_seeds: 3,
            out_dir: "results".into(),
            threads: None,
            trace: None,
            metrics: false,
        }
    }
}

/// Parses `repro` CLI arguments. Returns `Err(usage)` on bad input.
pub fn parse_args(args: &[String]) -> Result<ReproOptions, String> {
    let usage =
        "usage: repro [<exp-id>... | all] [--scale F] [--seeds N] [--out DIR] [--threads N]\n\
                 [--trace <out.jsonl>] [--metrics]\n\
                 experiment ids: table2 table3 fig2..fig19 table4/5/6/9/10/13";
    let mut opts = ReproOptions {
        experiments: Vec::new(),
        ..Default::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &f64| v > 0.0 && v <= 1.0)
                    .ok_or(format!("--scale needs a value in (0, 1]\n{usage}"))?;
            }
            "--seeds" => {
                i += 1;
                opts.n_seeds = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &usize| v >= 1)
                    .ok_or(format!("--seeds needs a positive integer\n{usage}"))?;
            }
            "--out" => {
                i += 1;
                opts.out_dir = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("--out needs a path\n{usage}"))?;
            }
            "--threads" => {
                i += 1;
                opts.threads = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &usize| v >= 1)
                        .ok_or(format!("--threads needs a positive integer\n{usage}"))?,
                );
            }
            "--trace" => {
                i += 1;
                opts.trace = Some(
                    args.get(i)
                        .cloned()
                        .ok_or(format!("--trace needs an output path\n{usage}"))?,
                );
            }
            "--metrics" => opts.metrics = true,
            "--help" | "-h" => return Err(usage.to_string()),
            id => {
                if id != "all" && !ALL_EXPERIMENTS.contains(&id) {
                    return Err(format!("unknown experiment {id:?}\n{usage}"));
                }
                opts.experiments.push(id.to_string());
            }
        }
        i += 1;
    }
    if opts.experiments.is_empty() {
        return Err(usage.to_string());
    }
    Ok(opts)
}

/// Runs the selected experiments, writing artifacts and returning them.
///
/// When `--trace`/`--metrics` are set, tracing is enabled for the run;
/// the trace file is written (and the metrics table printed to stderr)
/// even if an experiment write fails partway through.
pub fn run_repro(opts: &ReproOptions) -> std::io::Result<Vec<ExperimentOutput>> {
    if opts.trace.is_some() || opts.metrics {
        oeb_trace::enable();
    }
    let result = run_repro_inner(opts);
    if let Some(path) = &opts.trace {
        if let Err(e) = oeb_trace::write_trace_file(Path::new(path)) {
            eprintln!("[repro] failed to write trace {path}: {e}");
            return result.and(Err(e));
        }
        eprintln!("[repro] trace written to {path}");
    }
    if opts.metrics {
        eprint!(
            "{}",
            oeb_trace::render_metrics_table(&oeb_trace::snapshot())
        );
    }
    result
}

fn run_repro_inner(opts: &ReproOptions) -> std::io::Result<Vec<ExperimentOutput>> {
    let ids: Vec<&str> = if opts.experiments.iter().any(|e| e == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        opts.experiments.iter().map(String::as_str).collect()
    };
    let ctx = ExpContext {
        scale: opts.scale,
        seeds: (0..opts.n_seeds as u64).collect(),
    };
    // Deep call sites (run_matrix's experiment grid) resolve their
    // worker count through this process-wide default.
    oeb_core::set_default_threads(opts.threads);
    fs::create_dir_all(&opts.out_dir)?;
    let mut stats_cache: Option<Vec<OeStats>> = None;
    let mut outputs = Vec::with_capacity(ids.len());
    for id in ids {
        eprintln!(
            "[repro] running {id} (scale {}, {} seeds)...",
            ctx.scale,
            ctx.seeds.len()
        );
        let watch = Stopwatch::start();
        let out = run_experiment(id, &ctx, &mut stats_cache)
            .expect("ids validated against ALL_EXPERIMENTS");
        let dir = Path::new(&opts.out_dir);
        fs::write(
            dir.join(format!("{id}.txt")),
            format!("# {}\n\n{}", out.title, out.text),
        )?;
        fs::write(
            dir.join(format!("{id}.json")),
            serde_json::to_string_pretty(&out.json).expect("json serialises"),
        )?;
        for (suffix, svg) in render_figures(&out) {
            fs::write(dir.join(suffix), svg)?;
        }
        eprintln!("[repro] {id} done in {:.1}s", watch.stop(&EXPERIMENT_SPAN));
        outputs.push(out);
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_experiments_and_flags() {
        let o = parse_args(&s(&["table4", "fig10", "--scale", "0.05", "--seeds", "2"])).unwrap();
        assert_eq!(o.experiments, vec!["table4", "fig10"]);
        assert_eq!(o.scale, 0.05);
        assert_eq!(o.n_seeds, 2);
    }

    #[test]
    fn parses_threads() {
        let o = parse_args(&s(&["table4", "--threads", "4"])).unwrap();
        assert_eq!(o.threads, Some(4));
        assert!(parse_args(&s(&["table4", "--threads", "0"])).is_err());
        assert!(parse_args(&s(&["table4", "--threads"])).is_err());
    }

    #[test]
    fn parses_trace_and_metrics() {
        let o = parse_args(&s(&["table4", "--trace", "/tmp/t.jsonl", "--metrics"])).unwrap();
        assert_eq!(o.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert!(o.metrics);
        assert!(parse_args(&s(&["table4", "--trace"])).is_err());
    }

    #[test]
    fn rejects_unknown_experiment() {
        assert!(parse_args(&s(&["table99"])).is_err());
    }

    #[test]
    fn rejects_bad_scale() {
        assert!(parse_args(&s(&["table4", "--scale", "7"])).is_err());
        assert!(parse_args(&s(&["table4", "--scale"])).is_err());
    }

    #[test]
    fn requires_an_experiment() {
        assert!(parse_args(&s(&[])).is_err());
    }

    #[test]
    fn all_is_accepted() {
        let o = parse_args(&s(&["all"])).unwrap();
        assert_eq!(o.experiments, vec!["all"]);
    }

    #[test]
    fn warm_timer_tracks_minimum_and_passes_results_through() {
        let mut timer = WarmTimer::new();
        let mut acc = 0u64;
        for k in 0..4 {
            acc = timer.time(|| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                acc + k
            });
        }
        assert_eq!(timer.passes(), 4);
        assert_eq!(acc, 6);
        let min = timer.min_seconds();
        assert!(min >= 0.0005, "sleep floor missing: {min}");
        assert!(timer.samples.iter().all(|&s| s >= min));
    }

    #[test]
    fn warm_min_pair_alternates_sides() {
        let order = std::cell::RefCell::new(Vec::new());
        let (a, b) = warm_min_pair(
            3,
            || order.borrow_mut().push('a'),
            || order.borrow_mut().push('b'),
        );
        assert_eq!(*order.borrow(), vec!['a', 'b', 'a', 'b', 'a', 'b']);
        assert!(a >= 0.0 && b >= 0.0);
    }

    #[test]
    fn runs_a_cheap_experiment_end_to_end() {
        let dir = std::env::temp_dir().join("oeb_repro_test");
        let opts = ReproOptions {
            experiments: vec!["table2".into()],
            scale: 0.02,
            n_seeds: 1,
            out_dir: dir.to_string_lossy().into_owned(),
            threads: None,
            trace: None,
            metrics: false,
        };
        let outputs = run_repro(&opts).unwrap();
        assert_eq!(outputs.len(), 1);
        assert!(dir.join("table2.txt").exists());
        assert!(dir.join("table2.json").exists());
    }
}
