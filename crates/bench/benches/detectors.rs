//! Drift-detector kernels — the inner loop of the §4.3 statistics
//! pipeline (Table 3 / Figure 2 inputs): one window update per batch
//! detector, one item per streaming detector.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oeb_drift::{
    Adwin, BatchDriftDetector, Cdbd, ConceptDriftDetector, Ddm, Eddm, Hdddm, HddmA,
    KdqTreeDetector, KsDetector, PcaCd,
};
use oeb_linalg::Matrix;

fn windows(n_windows: usize, rows: usize, d: usize) -> Vec<Matrix> {
    (0..n_windows)
        .map(|w| {
            let rows: Vec<Vec<f64>> = (0..rows)
                .map(|i| {
                    (0..d)
                        .map(|j| ((i * 7 + j * 13 + w * 3) % 89) as f64 / 89.0)
                        .collect()
                })
                .collect();
            Matrix::from_rows(&rows)
        })
        .collect()
}

fn bench_batch_detectors(c: &mut Criterion) {
    let ws = windows(8, 256, 8);
    let mut group = c.benchmark_group("batch_drift_window");
    group.sample_size(20);
    group.bench_function("HDDDM", |b| {
        b.iter_batched(
            Hdddm::default,
            |mut det| {
                for w in &ws {
                    std::hint::black_box(det.update(w));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("kdq-tree", |b| {
        b.iter_batched(
            KdqTreeDetector::default,
            |mut det| {
                for w in &ws {
                    std::hint::black_box(det.update(w));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("PCA-CD", |b| {
        b.iter_batched(
            PcaCd::default,
            |mut det| {
                for w in &ws {
                    std::hint::black_box(det.update(w));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("KS-per-column", |b| {
        b.iter_batched(
            || KsDetector::new(0.05),
            |mut det| {
                for w in &ws {
                    std::hint::black_box(det.update(&w.col(0)));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("CDBD-per-column", |b| {
        b.iter_batched(
            Cdbd::default,
            |mut det| {
                for w in &ws {
                    std::hint::black_box(det.update(&w.col(0)));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_streaming_detectors(c: &mut Criterion) {
    let items: Vec<f64> = (0..4096).map(|i| ((i * 31) % 97) as f64 / 97.0).collect();
    let mut group = c.benchmark_group("streaming_drift_4096_items");
    group.bench_function("ADWIN", |b| {
        b.iter_batched(
            || Adwin::new(0.002),
            |mut det| {
                for &x in &items {
                    std::hint::black_box(det.insert(x));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("HDDM-A", |b| {
        b.iter_batched(
            HddmA::default,
            |mut det| {
                for &x in &items {
                    std::hint::black_box(det.update(x));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("DDM", |b| {
        b.iter_batched(
            Ddm::new,
            |mut det| {
                for &x in &items {
                    std::hint::black_box(det.update(f64::from(x > 0.7)));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("EDDM", |b| {
        b.iter_batched(
            Eddm::new,
            |mut det| {
                for &x in &items {
                    std::hint::black_box(det.update(f64::from(x > 0.7)));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Plot generation and long measurement windows dominate wall-clock
    // on small machines; the numeric report is what the repro records.
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_batch_detectors, bench_streaming_detectors
}
criterion_main!(benches);
