//! End-to-end kernels: a full prequential run (the Table 4 unit of
//! work), statistics extraction (the Table 3 / Figure 2 unit), and the
//! selection-pipeline math (PCA + K-Means + t-SNE behind Figures 2/6).

use criterion::{criterion_group, criterion_main, Criterion};
use oeb_core::{extract_stats, run_stream, Algorithm, HarnessConfig, StatsConfig};
use oeb_linalg::{kmeans, tsne, KMeansConfig, Matrix, Pca, TsneConfig};
use oeb_synth::{generate, registry_scaled};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(name: &str) -> oeb_tabular::StreamDataset {
    let entries = registry_scaled(0.02);
    let entry = entries.iter().find(|e| e.spec.name == name).unwrap();
    generate(&entry.spec, 0)
}

fn bench_prequential_run(c: &mut Criterion) {
    let d = dataset("Electricity Prices");
    let mut group = c.benchmark_group("prequential_run_2pct");
    group.sample_size(10);
    for alg in [Algorithm::NaiveDt, Algorithm::NaiveNn, Algorithm::SeaGbdt] {
        group.bench_function(alg.name(), |b| {
            b.iter(|| std::hint::black_box(run_stream(&d, alg, &HarnessConfig::default())))
        });
    }
    group.finish();
}

fn bench_stats_extraction(c: &mut Criterion) {
    let d = dataset("Electricity Prices");
    let mut group = c.benchmark_group("stats_extraction_2pct");
    group.sample_size(10);
    group.bench_function("electricity", |b| {
        b.iter(|| std::hint::black_box(extract_stats(&d, &StatsConfig::default())))
    });
    group.finish();
}

fn bench_selection_math(c: &mut Criterion) {
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| (0..15).map(|j| ((i * 7 + j * 11) % 53) as f64).collect())
        .collect();
    let m = Matrix::from_rows(&rows);
    c.bench_function("pca_200x15_to_3", |b| {
        b.iter(|| std::hint::black_box(Pca::fit(&m, 3).transform(&m)))
    });
    c.bench_function("kmeans_200x15_k5", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(kmeans(
                &m,
                &KMeansConfig {
                    k: 5,
                    ..Default::default()
                },
                &mut rng,
            ))
        })
    });
    let small: Vec<Vec<f64>> = rows.iter().take(120).cloned().collect();
    let sm = Matrix::from_rows(&small);
    let mut group = c.benchmark_group("tsne");
    group.sample_size(10);
    group.bench_function("tsne_120x15", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            std::hint::black_box(tsne(
                &sm,
                &TsneConfig {
                    iterations: 100,
                    ..Default::default()
                },
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Plot generation and long measurement windows dominate wall-clock
    // on small machines; the numeric report is what the repro records.
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_prequential_run,
    bench_stats_extraction,
    bench_selection_math
}
criterion_main!(benches);
