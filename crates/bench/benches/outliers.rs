//! Outlier-detector kernels — the per-window cost behind Figure 8,
//! Figure 16 and the anomaly columns of Table 3: fit + score one window
//! under ECOD and IForest.

use criterion::{criterion_group, criterion_main, Criterion};
use oeb_linalg::Matrix;
use oeb_outlier::{Ecod, IForestConfig, IsolationForest};

fn window(rows: usize, d: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..rows)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 17 + j * 29) % 101) as f64 / 101.0)
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows)
}

fn bench_ecod(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecod");
    for rows in [256usize, 1024] {
        let w = window(rows, 8);
        group.bench_function(format!("fit_score_{rows}x8"), |b| {
            b.iter(|| {
                let model = Ecod::fit(std::hint::black_box(&w));
                std::hint::black_box(model.score_all(&w))
            })
        });
    }
    group.finish();
}

fn bench_iforest(c: &mut Criterion) {
    let mut group = c.benchmark_group("iforest");
    group.sample_size(20);
    for rows in [256usize, 1024] {
        let w = window(rows, 8);
        group.bench_function(format!("fit_score_{rows}x8"), |b| {
            b.iter(|| {
                let model = IsolationForest::fit(
                    std::hint::black_box(&w),
                    &IForestConfig {
                        n_trees: 25,
                        ..Default::default()
                    },
                );
                std::hint::black_box(model.score_all(&w))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Plot generation and long measurement windows dominate wall-clock
    // on small machines; the numeric report is what the repro records.
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_ecod, bench_iforest
}
criterion_main!(benches);
