//! Preprocessing kernels — the per-window cost behind Figure 14 and the
//! §4.3 pipeline: one-hot encoding, the four imputers, and first-window
//! scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use oeb_linalg::Matrix;
use oeb_preprocess::{
    Imputer, KnnImputer, MeanImputer, OneHotEncoder, RegressionImputer, StandardScaler, ZeroImputer,
};
use oeb_tabular::{Column, Field, Schema, Table};

fn table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::numeric("a"),
        Field::numeric("b"),
        Field::categorical("c", &["x", "y", "z", "w"]),
    ]);
    Table::new(
        schema,
        vec![
            Column::Numeric((0..rows).map(|i| (i % 37) as f64).collect()),
            Column::Numeric(
                (0..rows)
                    .map(|i| {
                        if i % 9 == 0 {
                            f64::NAN
                        } else {
                            (i % 13) as f64
                        }
                    })
                    .collect(),
            ),
            Column::Categorical((0..rows).map(|i| Some((i % 4) as u32)).collect()),
        ],
    )
}

fn holey_matrix(rows: usize, d: usize) -> Matrix {
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|i| {
            (0..d)
                .map(|j| {
                    if (i * d + j).is_multiple_of(11) {
                        f64::NAN
                    } else {
                        ((i * 3 + j * 7) % 23) as f64
                    }
                })
                .collect()
        })
        .collect();
    Matrix::from_rows(&data)
}

fn bench_encode(c: &mut Criterion) {
    let t = table(1024);
    let enc = OneHotEncoder::fit(&t, &[0, 1, 2]);
    c.bench_function("onehot_encode_1024x3", |b| {
        b.iter(|| std::hint::black_box(enc.encode_all(&t)))
    });
}

fn bench_imputers(c: &mut Criterion) {
    let reference = holey_matrix(512, 8);
    let window = holey_matrix(256, 8);
    let mut group = c.benchmark_group("impute_256x8");
    let imputers: Vec<(&str, Box<dyn Imputer>)> = vec![
        ("knn_k2", Box::new(KnnImputer { k: 2 })),
        ("knn_k20", Box::new(KnnImputer { k: 20 })),
        ("regression", Box::new(RegressionImputer::default())),
        ("mean", Box::new(MeanImputer)),
        ("zero", Box::new(ZeroImputer)),
    ];
    for (name, imp) in &imputers {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut w = window.clone();
                imp.impute(&mut w, &reference);
                std::hint::black_box(w)
            })
        });
    }
    group.finish();
}

fn bench_scaler(c: &mut Criterion) {
    let reference = holey_matrix(512, 8);
    let scaler = StandardScaler::fit(&reference);
    c.bench_function("scale_512x8", |b| {
        b.iter(|| {
            let mut w = reference.clone();
            scaler.transform(&mut w);
            std::hint::black_box(w)
        })
    });
}

criterion_group! {
    name = benches;
    // Plot generation and long measurement windows dominate wall-clock
    // on small machines; the numeric report is what the repro records.
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_encode, bench_imputers, bench_scaler
}
criterion_main!(benches);
