//! Ablation benches for the design choices DESIGN.md calls out:
//! the CART candidate-threshold budget, the ADWIN cut-check clock, the
//! KNN-imputation reference cap, and the kdq-tree bootstrap budget.
//! Each group sweeps the knob so regressions in the chosen defaults are
//! visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oeb_drift::{Adwin, BatchDriftDetector, KdqTreeDetector};
use oeb_linalg::Matrix;
use oeb_preprocess::{Imputer, KnnImputer};
use oeb_tree::{DecisionTree, TreeConfig, TreeTask};

fn labelled(n: usize, d: usize) -> (Matrix, Vec<f64>) {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..d).map(|j| ((i * (j + 7)) % 101) as f64).collect())
        .collect();
    let ys: Vec<f64> = rows
        .iter()
        .map(|r| f64::from(r.iter().sum::<f64>() > 50.0 * d as f64))
        .collect();
    (Matrix::from_rows(&rows), ys)
}

/// CART fit cost vs the quantile-threshold budget (default 32).
fn bench_cart_thresholds(c: &mut Criterion) {
    let (xs, ys) = labelled(1024, 8);
    let mut group = c.benchmark_group("ablation_cart_thresholds");
    group.sample_size(20);
    for thresholds in [8usize, 32, 128] {
        group.bench_function(format!("max_thresholds_{thresholds}"), |b| {
            b.iter(|| {
                DecisionTree::fit(
                    &xs,
                    &ys,
                    TreeTask::Classification { n_classes: 2 },
                    &TreeConfig {
                        max_thresholds: thresholds,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

/// ADWIN insert cost vs how the cut-check clock amortises the scan.
fn bench_adwin_stream(c: &mut Criterion) {
    let items: Vec<f64> = (0..8192).map(|i| ((i * 29) % 83) as f64 / 83.0).collect();
    let mut group = c.benchmark_group("ablation_adwin_delta");
    for delta in [0.3, 0.002] {
        group.bench_function(format!("delta_{delta}"), |b| {
            b.iter_batched(
                || Adwin::new(delta),
                |mut a| {
                    for &x in &items {
                        std::hint::black_box(a.insert(x));
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// KNN imputation cost vs the harness's reference-row cap (default 512).
fn bench_knn_reference_cap(c: &mut Criterion) {
    let window = {
        let (mut xs, _) = labelled(256, 8);
        for r in (0..xs.rows()).step_by(5) {
            xs[(r, 3)] = f64::NAN;
        }
        xs
    };
    let mut group = c.benchmark_group("ablation_knn_reference_cap");
    group.sample_size(20);
    for cap in [128usize, 512, 2048] {
        let (reference, _) = labelled(cap, 8);
        group.bench_function(format!("reference_{cap}"), |b| {
            b.iter(|| {
                let mut w = window.clone();
                KnnImputer { k: 2 }.impute(&mut w, &reference);
                std::hint::black_box(w)
            })
        });
    }
    group.finish();
}

/// kdq-tree detector cost vs the bootstrap budget (default 40).
fn bench_kdq_bootstrap(c: &mut Criterion) {
    let (w1, _) = labelled(512, 6);
    let (w2, _) = labelled(512, 6);
    let mut group = c.benchmark_group("ablation_kdq_bootstrap");
    group.sample_size(10);
    for bootstrap in [10usize, 40, 160] {
        group.bench_function(format!("bootstrap_{bootstrap}"), |b| {
            b.iter_batched(
                || {
                    let mut det = KdqTreeDetector::new(32, bootstrap, 0.99, 1);
                    det.update(&w1);
                    det
                },
                |mut det| std::hint::black_box(det.update(&w2)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Plot generation and long measurement windows dominate wall-clock
    // on small machines; the numeric report is what the repro records.
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_cart_thresholds,
    bench_adwin_stream,
    bench_knn_reference_cap,
    bench_kdq_bootstrap
}
criterion_main!(benches);
