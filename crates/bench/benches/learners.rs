//! Per-window learner kernels — the inner loop behind Tables 4, 5, 6, 9
//! and 10: train one window and predict one window for each of the ten
//! algorithms, on a standardized ELECTRICITY-like window.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oeb_core::{Algorithm, LearnerConfig};
use oeb_linalg::Matrix;
use oeb_tabular::Task;

fn window(n: usize, d: usize, classes: usize) -> (Matrix, Vec<f64>) {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * (j + 3)) % 97) as f64 / 97.0 - 0.5)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = rows
        .iter()
        .map(|r| {
            let s: f64 = r.iter().sum();
            (((s * 10.0).abs() as usize) % classes) as f64
        })
        .collect();
    (Matrix::from_rows(&rows), ys)
}

fn bench_train_window(c: &mut Criterion) {
    let (xs, ys) = window(512, 8, 2);
    let task = Task::Classification { n_classes: 2 };
    let mut group = c.benchmark_group("train_window");
    group.sample_size(10);
    for alg in Algorithm::all() {
        group.bench_function(alg.name(), |b| {
            b.iter_batched(
                || {
                    alg.make(task, xs.cols(), &LearnerConfig::default())
                        .expect("classification supports all algorithms")
                },
                |mut learner| learner.train_window(&xs, &ys),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_predict_window(c: &mut Criterion) {
    let (xs, ys) = window(512, 8, 2);
    let task = Task::Classification { n_classes: 2 };
    let mut group = c.benchmark_group("predict_window");
    for alg in Algorithm::all() {
        let mut learner = alg
            .make(task, xs.cols(), &LearnerConfig::default())
            .expect("classification supports all algorithms");
        learner.train_window(&xs, &ys);
        group.bench_function(alg.name(), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for r in 0..xs.rows() {
                    acc += learner.predict(std::hint::black_box(xs.row(r)));
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Plot generation and long measurement windows dominate wall-clock
    // on small machines; the numeric report is what the repro records.
    config = Criterion::default()
        .without_plots()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_train_window, bench_predict_window
}
criterion_main!(benches);
