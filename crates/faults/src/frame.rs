//! Window frames and the sources that produce them.

use oeb_linalg::Matrix;
use oeb_preprocess::OneHotEncoder;
use oeb_tabular::StreamDataset;

/// One window of a stream: encoded features plus targets.
///
/// `index` is the window's position in the *source* stream; an injector
/// may drop or duplicate frames, so consumers must not assume indices
/// are consecutive or unique.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFrame {
    /// Source window index.
    pub index: usize,
    /// Encoded feature rows (`rows x width`).
    pub features: Matrix,
    /// One target per feature row.
    pub targets: Vec<f64>,
}

impl WindowFrame {
    /// Number of samples in the window.
    pub fn rows(&self) -> usize {
        self.features.rows()
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.features.cols()
    }
}

/// Anything that yields window frames in stream order.
pub trait FrameSource {
    /// Number of windows the *source* stream holds (before faults).
    fn n_windows(&self) -> usize;

    /// The next frame, or `None` at end of stream.
    fn next_frame(&mut self) -> Option<WindowFrame>;
}

/// A fixed in-memory sequence of frames (test double and replay buffer).
#[derive(Debug, Clone)]
pub struct FrameVec {
    frames: std::vec::IntoIter<WindowFrame>,
    total: usize,
}

impl FrameVec {
    /// Wraps the given frames.
    pub fn new(frames: Vec<WindowFrame>) -> FrameVec {
        FrameVec {
            total: frames.len(),
            frames: frames.into_iter(),
        }
    }
}

impl FrameSource for FrameVec {
    fn n_windows(&self) -> usize {
        self.total
    }

    fn next_frame(&mut self) -> Option<WindowFrame> {
        self.frames.next()
    }
}

/// A [`FrameSource`] over frames shared behind an [`Arc`](std::sync::Arc):
/// many consumers (e.g. one prepare pass per fault plan, or a replay of a
/// captured stream) iterate the same materialized window list without
/// duplicating it. Each `next_frame` clones only the yielded window; the
/// backing list itself is never copied per consumer.
#[derive(Debug, Clone)]
pub struct SharedFrames {
    frames: std::sync::Arc<Vec<WindowFrame>>,
    next: usize,
}

impl SharedFrames {
    /// Wraps a shared frame list; iteration starts at the first frame.
    pub fn new(frames: std::sync::Arc<Vec<WindowFrame>>) -> SharedFrames {
        SharedFrames { frames, next: 0 }
    }

    /// Collects every frame of `source` into a shareable list.
    pub fn capture<S: FrameSource>(source: &mut S) -> std::sync::Arc<Vec<WindowFrame>> {
        let mut frames = Vec::with_capacity(source.n_windows());
        while let Some(f) = source.next_frame() {
            frames.push(f);
        }
        std::sync::Arc::new(frames)
    }
}

impl FrameSource for SharedFrames {
    fn n_windows(&self) -> usize {
        self.frames.len()
    }

    fn next_frame(&mut self) -> Option<WindowFrame> {
        let frame = self.frames.get(self.next)?.clone();
        self.next += 1;
        Some(frame)
    }
}

/// Streams a [`StreamDataset`] window by window: each frame holds the
/// one-hot encoded feature block and raw targets of one window. Neither
/// imputation nor scaling happens here — that is the harness's job.
pub struct DatasetFrames<'a> {
    dataset: &'a StreamDataset,
    encoder: OneHotEncoder,
    windows: Vec<std::ops::Range<usize>>,
    next: usize,
}

impl<'a> DatasetFrames<'a> {
    /// Builds the source using the dataset's own windowing scaled by
    /// `window_factor` (1.0 = the dataset default) over `feature_cols`.
    pub fn new(
        dataset: &'a StreamDataset,
        feature_cols: &[usize],
        window_factor: f64,
    ) -> DatasetFrames<'a> {
        DatasetFrames {
            encoder: OneHotEncoder::fit(&dataset.table, feature_cols),
            windows: dataset.windows_scaled(window_factor),
            dataset,
            next: 0,
        }
    }

    /// Encoded feature width.
    pub fn width(&self) -> usize {
        self.encoder.width()
    }

    /// The encoder (e.g. for oracle imputation over the whole stream).
    pub fn encoder(&self) -> &OneHotEncoder {
        &self.encoder
    }
}

impl FrameSource for DatasetFrames<'_> {
    fn n_windows(&self) -> usize {
        self.windows.len()
    }

    fn next_frame(&mut self) -> Option<WindowFrame> {
        let range = self.windows.get(self.next)?.clone();
        let index = self.next;
        self.next += 1;
        let features = self.encoder.encode(&self.dataset.table, range.clone());
        let targets = range.map(|r| self.dataset.target_at(r)).collect();
        Some(WindowFrame {
            index,
            features,
            targets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn toy_frames(n: usize, rows: usize, cols: usize) -> Vec<WindowFrame> {
        (0..n)
            .map(|w| {
                let data: Vec<f64> = (0..rows * cols)
                    .map(|i| (w * rows * cols + i) as f64)
                    .collect();
                WindowFrame {
                    index: w,
                    features: Matrix::from_vec(rows, cols, data),
                    targets: (0..rows).map(|r| ((w + r) % 2) as f64).collect(),
                }
            })
            .collect()
    }

    #[test]
    fn shared_frames_replay_without_copying_the_list() {
        let backing = std::sync::Arc::new(toy_frames(3, 4, 2));
        let mut a = SharedFrames::new(backing.clone());
        let mut b = SharedFrames::new(backing.clone());
        // Two independent cursors over one backing list.
        assert_eq!(a.next_frame().unwrap().index, 0);
        assert_eq!(a.next_frame().unwrap().index, 1);
        assert_eq!(b.next_frame().unwrap().index, 0);
        assert_eq!(a.n_windows(), 3);
        // Only the local Arcs (backing + two cursors) hold the list.
        assert_eq!(std::sync::Arc::strong_count(&backing), 3);
    }

    #[test]
    fn capture_materializes_a_source() {
        let mut src = FrameVec::new(toy_frames(2, 3, 2));
        let captured = SharedFrames::capture(&mut src);
        assert_eq!(captured.len(), 2);
        let mut replay = SharedFrames::new(captured);
        assert_eq!(replay.next_frame().unwrap(), toy_frames(2, 3, 2)[0]);
    }

    #[test]
    fn frame_vec_replays_in_order() {
        let mut src = FrameVec::new(toy_frames(3, 4, 2));
        assert_eq!(src.n_windows(), 3);
        for w in 0..3 {
            let f = src.next_frame().unwrap();
            assert_eq!(f.index, w);
            assert_eq!((f.rows(), f.cols()), (4, 2));
        }
        assert!(src.next_frame().is_none());
    }
}
