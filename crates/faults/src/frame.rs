//! Window frames and the sources that produce them.

use oeb_linalg::Matrix;
use oeb_preprocess::OneHotEncoder;
use oeb_tabular::StreamDataset;

/// One window of a stream: encoded features plus targets.
///
/// `index` is the window's position in the *source* stream; an injector
/// may drop or duplicate frames, so consumers must not assume indices
/// are consecutive or unique.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFrame {
    /// Source window index.
    pub index: usize,
    /// Encoded feature rows (`rows x width`).
    pub features: Matrix,
    /// One target per feature row.
    pub targets: Vec<f64>,
}

impl WindowFrame {
    /// Number of samples in the window.
    pub fn rows(&self) -> usize {
        self.features.rows()
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.features.cols()
    }
}

/// Anything that yields window frames in stream order.
pub trait FrameSource {
    /// Number of windows the *source* stream holds (before faults).
    fn n_windows(&self) -> usize;

    /// The next frame, or `None` at end of stream.
    fn next_frame(&mut self) -> Option<WindowFrame>;
}

/// A fixed in-memory sequence of frames (test double and replay buffer).
#[derive(Debug, Clone)]
pub struct FrameVec {
    frames: std::vec::IntoIter<WindowFrame>,
    total: usize,
}

impl FrameVec {
    /// Wraps the given frames.
    pub fn new(frames: Vec<WindowFrame>) -> FrameVec {
        FrameVec {
            total: frames.len(),
            frames: frames.into_iter(),
        }
    }
}

impl FrameSource for FrameVec {
    fn n_windows(&self) -> usize {
        self.total
    }

    fn next_frame(&mut self) -> Option<WindowFrame> {
        self.frames.next()
    }
}

/// Streams a [`StreamDataset`] window by window: each frame holds the
/// one-hot encoded feature block and raw targets of one window. Neither
/// imputation nor scaling happens here — that is the harness's job.
pub struct DatasetFrames<'a> {
    dataset: &'a StreamDataset,
    encoder: OneHotEncoder,
    windows: Vec<std::ops::Range<usize>>,
    next: usize,
}

impl<'a> DatasetFrames<'a> {
    /// Builds the source using the dataset's own windowing scaled by
    /// `window_factor` (1.0 = the dataset default) over `feature_cols`.
    pub fn new(
        dataset: &'a StreamDataset,
        feature_cols: &[usize],
        window_factor: f64,
    ) -> DatasetFrames<'a> {
        DatasetFrames {
            encoder: OneHotEncoder::fit(&dataset.table, feature_cols),
            windows: dataset.windows_scaled(window_factor),
            dataset,
            next: 0,
        }
    }

    /// Encoded feature width.
    pub fn width(&self) -> usize {
        self.encoder.width()
    }

    /// The encoder (e.g. for oracle imputation over the whole stream).
    pub fn encoder(&self) -> &OneHotEncoder {
        &self.encoder
    }
}

impl FrameSource for DatasetFrames<'_> {
    fn n_windows(&self) -> usize {
        self.windows.len()
    }

    fn next_frame(&mut self) -> Option<WindowFrame> {
        let range = self.windows.get(self.next)?.clone();
        let index = self.next;
        self.next += 1;
        let features = self.encoder.encode(&self.dataset.table, range.clone());
        let targets = range.map(|r| self.dataset.target_at(r)).collect();
        Some(WindowFrame {
            index,
            features,
            targets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn toy_frames(n: usize, rows: usize, cols: usize) -> Vec<WindowFrame> {
        (0..n)
            .map(|w| {
                let data: Vec<f64> = (0..rows * cols)
                    .map(|i| (w * rows * cols + i) as f64)
                    .collect();
                WindowFrame {
                    index: w,
                    features: Matrix::from_vec(rows, cols, data),
                    targets: (0..rows).map(|r| ((w + r) % 2) as f64).collect(),
                }
            })
            .collect()
    }

    #[test]
    fn frame_vec_replays_in_order() {
        let mut src = FrameVec::new(toy_frames(3, 4, 2));
        assert_eq!(src.n_windows(), 3);
        for w in 0..3 {
            let f = src.next_frame().unwrap();
            assert_eq!(f.index, w);
            assert_eq!((f.rows(), f.cols()), (4, 2));
        }
        assert!(src.next_frame().is_none());
    }
}
