//! Fault plans, kinds, and the log of injected events.

use oeb_trace::Counter;

// Per-kind injection counters, recorded at the single chokepoint every
// injected event flows through ([`FaultLog::push`]). Injection decisions
// are keyed on (seed, window index), so these are schedule-invariant.
static NAN_BURSTS: Counter = Counter::new("faults.injected.nan-burst");
static CORRUPTED_CELLS: Counter = Counter::new("faults.injected.corrupted-cells");
static LABEL_NOISE: Counter = Counter::new("faults.injected.label-noise");
static DROPPED_WINDOWS: Counter = Counter::new("faults.injected.dropped-window");
static DUPLICATED_WINDOWS: Counter = Counter::new("faults.injected.duplicated-window");
static TRUNCATED_WINDOWS: Counter = Counter::new("faults.injected.truncated-window");
static SCHEMA_VIOLATIONS: Counter = Counter::new("faults.injected.schema-violation");
static ALL_MISSING_COLUMNS: Counter = Counter::new("faults.injected.all-missing-column");

/// The kinds of stream fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A contiguous block of cells replaced by NaN.
    NanBurst,
    /// Individual cells replaced by extreme out-of-range values.
    CorruptedCells,
    /// Targets perturbed (pairwise swaps within the window).
    LabelNoise,
    /// An entire window removed from the stream.
    DroppedWindow,
    /// A window emitted twice.
    DuplicatedWindow,
    /// A window cut short to a fraction of its rows.
    TruncatedWindow,
    /// The window's column count changed (column added or removed).
    SchemaViolation,
    /// One feature column entirely NaN for the window.
    AllMissingColumn,
}

impl FaultKind {
    /// All kinds, in injection order.
    pub fn all() -> [FaultKind; 8] {
        [
            FaultKind::DroppedWindow,
            FaultKind::DuplicatedWindow,
            FaultKind::TruncatedWindow,
            FaultKind::SchemaViolation,
            FaultKind::AllMissingColumn,
            FaultKind::NanBurst,
            FaultKind::CorruptedCells,
            FaultKind::LabelNoise,
        ]
    }

    /// Stable identifier used in logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NanBurst => "nan-burst",
            FaultKind::CorruptedCells => "corrupted-cells",
            FaultKind::LabelNoise => "label-noise",
            FaultKind::DroppedWindow => "dropped-window",
            FaultKind::DuplicatedWindow => "duplicated-window",
            FaultKind::TruncatedWindow => "truncated-window",
            FaultKind::SchemaViolation => "schema-violation",
            FaultKind::AllMissingColumn => "all-missing-column",
        }
    }

    fn counter(&self) -> &'static Counter {
        match self {
            FaultKind::NanBurst => &NAN_BURSTS,
            FaultKind::CorruptedCells => &CORRUPTED_CELLS,
            FaultKind::LabelNoise => &LABEL_NOISE,
            FaultKind::DroppedWindow => &DROPPED_WINDOWS,
            FaultKind::DuplicatedWindow => &DUPLICATED_WINDOWS,
            FaultKind::TruncatedWindow => &TRUNCATED_WINDOWS,
            FaultKind::SchemaViolation => &SCHEMA_VIOLATIONS,
            FaultKind::AllMissingColumn => &ALL_MISSING_COLUMNS,
        }
    }
}

/// Per-fault injection rates plus the seed that makes them reproducible.
///
/// Window-level rates (`drop_window`, `duplicate_window`,
/// `truncate_window`, `schema_violation`, `all_missing_column`,
/// `nan_burst`) are the probability that the fault hits a given window;
/// cell/label-level rates (`cell_corruption`, `label_noise`) are the
/// per-cell / per-label probability within every window. All rates live
/// in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed from which every injection decision derives. Decisions are
    /// keyed on `(seed, window index)`, so injection is independent of
    /// the order windows are drawn in — resuming a stream mid-way
    /// reproduces the same faults.
    pub seed: u64,
    /// Probability a window receives a NaN burst.
    pub nan_burst: f64,
    /// Per-cell probability of an extreme corrupted value.
    pub cell_corruption: f64,
    /// Per-label probability of being swapped with another label.
    pub label_noise: f64,
    /// Probability a window is dropped.
    pub drop_window: f64,
    /// Probability a window is emitted twice.
    pub duplicate_window: f64,
    /// Probability a window is truncated.
    pub truncate_window: f64,
    /// Probability a window's column count changes.
    pub schema_violation: f64,
    /// Probability one feature column goes entirely missing.
    pub all_missing_column: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none(0)
    }
}

impl FaultPlan {
    /// A plan that injects nothing (the identity wrapper).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            nan_burst: 0.0,
            cell_corruption: 0.0,
            label_noise: 0.0,
            drop_window: 0.0,
            duplicate_window: 0.0,
            truncate_window: 0.0,
            schema_violation: 0.0,
            all_missing_column: 0.0,
        }
    }

    /// A moderately hostile preset exercising every fault kind: roughly
    /// one window in ten is structurally damaged and a few percent of
    /// cells and labels are corrupted.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            nan_burst: 0.15,
            cell_corruption: 0.02,
            label_noise: 0.05,
            drop_window: 0.08,
            duplicate_window: 0.08,
            truncate_window: 0.10,
            schema_violation: 0.08,
            all_missing_column: 0.10,
        }
    }

    /// A plan injecting exactly one fault kind at the given rate —
    /// the single-axis scenarios of the chaos matrix.
    pub fn single(seed: u64, kind: FaultKind, rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::none(seed);
        match kind {
            FaultKind::NanBurst => plan.nan_burst = rate,
            FaultKind::CorruptedCells => plan.cell_corruption = rate,
            FaultKind::LabelNoise => plan.label_noise = rate,
            FaultKind::DroppedWindow => plan.drop_window = rate,
            FaultKind::DuplicatedWindow => plan.duplicate_window = rate,
            FaultKind::TruncatedWindow => plan.truncate_window = rate,
            FaultKind::SchemaViolation => plan.schema_violation = rate,
            FaultKind::AllMissingColumn => plan.all_missing_column = rate,
        }
        plan
    }

    /// Composes two plans: for every fault kind the combined plan fires
    /// when *either* would, i.e. the rates union as
    /// `1 - (1 - a)(1 - b)` (independent events), and the composed plan
    /// keeps `self`'s seed so composing with [`FaultPlan::none`] is the
    /// identity. This is how chaos scenarios stack a fault axis on top
    /// of a base plan.
    pub fn compose(&self, other: &FaultPlan) -> FaultPlan {
        let union = |a: f64, b: f64| 1.0 - (1.0 - a) * (1.0 - b);
        FaultPlan {
            seed: self.seed,
            nan_burst: union(self.nan_burst, other.nan_burst),
            cell_corruption: union(self.cell_corruption, other.cell_corruption),
            label_noise: union(self.label_noise, other.label_noise),
            drop_window: union(self.drop_window, other.drop_window),
            duplicate_window: union(self.duplicate_window, other.duplicate_window),
            truncate_window: union(self.truncate_window, other.truncate_window),
            schema_violation: union(self.schema_violation, other.schema_violation),
            all_missing_column: union(self.all_missing_column, other.all_missing_column),
        }
    }

    /// True when no fault can ever fire.
    pub fn is_clean(&self) -> bool {
        // oeb-lint: allow(float-eq) -- a fault is inactive only at a rate of exactly 0.0
        self.rates().iter().all(|&(_, r)| r == 0.0)
    }

    /// `(kind, rate)` pairs for every fault this plan controls.
    pub fn rates(&self) -> [(FaultKind, f64); 8] {
        [
            (FaultKind::DroppedWindow, self.drop_window),
            (FaultKind::DuplicatedWindow, self.duplicate_window),
            (FaultKind::TruncatedWindow, self.truncate_window),
            (FaultKind::SchemaViolation, self.schema_violation),
            (FaultKind::AllMissingColumn, self.all_missing_column),
            (FaultKind::NanBurst, self.nan_burst),
            (FaultKind::CorruptedCells, self.cell_corruption),
            (FaultKind::LabelNoise, self.label_noise),
        ]
    }

    /// Checks every rate is a probability; returns the offending fault
    /// kind and value otherwise.
    pub fn validate(&self) -> Result<(), String> {
        for (kind, rate) in self.rates() {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("{} rate {rate} outside [0, 1]", kind.name()));
            }
        }
        Ok(())
    }
}

/// One injected fault: which window, which kind, and a human-readable
/// description of what was damaged.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Source window index the fault hit.
    pub window: usize,
    /// Fault kind.
    pub kind: FaultKind,
    /// What exactly happened (rows/columns/cells affected).
    pub detail: String,
}

/// Ordered record of every fault an injector produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// Creates an empty log.
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    /// Records one event.
    pub fn push(&mut self, window: usize, kind: FaultKind, detail: impl Into<String>) {
        kind.counter().incr();
        self.events.push(FaultEvent {
            window,
            kind,
            detail: detail.into(),
        });
    }

    /// All events in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events of one kind.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_clean_and_valid() {
        let p = FaultPlan::none(7);
        assert!(p.is_clean());
        assert!(p.validate().is_ok());
        assert_eq!(p.seed, 7);
    }

    #[test]
    fn chaos_touches_every_kind_and_validates() {
        let p = FaultPlan::chaos(1);
        assert!(!p.is_clean());
        assert!(p.validate().is_ok());
        for (kind, rate) in p.rates() {
            assert!(rate > 0.0, "{} rate is zero in chaos", kind.name());
        }
    }

    #[test]
    fn single_sets_exactly_one_rate() {
        for kind in FaultKind::all() {
            let p = FaultPlan::single(3, kind, 0.4);
            assert!(p.validate().is_ok());
            for (k, rate) in p.rates() {
                if k == kind {
                    assert!((rate - 0.4).abs() < 1e-12, "{} not set", k.name());
                } else {
                    assert!(
                        rate.abs() < 1e-12,
                        "{} leaked from single({})",
                        k.name(),
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn compose_unions_rates_and_keeps_the_left_seed() {
        let a = FaultPlan::single(5, FaultKind::DroppedWindow, 0.5);
        let b = FaultPlan::single(9, FaultKind::DroppedWindow, 0.5);
        let ab = a.compose(&b);
        assert_eq!(ab.seed, 5);
        assert!((ab.drop_window - 0.75).abs() < 1e-12);
        assert!(ab.validate().is_ok());
        // Composing with the empty plan is the identity.
        assert_eq!(a.compose(&FaultPlan::none(123)), a);
        // Rates never escape [0, 1], even from saturated inputs.
        let full = FaultPlan::single(0, FaultKind::NanBurst, 1.0);
        let sat = full.compose(&FaultPlan::chaos(0));
        assert!(sat.validate().is_ok());
        assert!((sat.nan_burst - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_rates_are_rejected() {
        let mut p = FaultPlan::none(0);
        p.drop_window = 1.5;
        assert!(p.validate().unwrap_err().contains("dropped-window"));
        p.drop_window = f64::NAN;
        assert!(p.validate().is_err());
        p.drop_window = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn log_counts_by_kind() {
        let mut log = FaultLog::new();
        assert!(log.is_empty());
        log.push(0, FaultKind::NanBurst, "rows 1..3");
        log.push(2, FaultKind::NanBurst, "rows 0..1");
        log.push(2, FaultKind::LabelNoise, "3 swaps");
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(FaultKind::NanBurst), 2);
        assert_eq!(log.count(FaultKind::DroppedWindow), 0);
        assert_eq!(log.events()[2].window, 2);
    }
}
