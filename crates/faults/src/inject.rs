//! The fault injector: wraps any [`FrameSource`] and applies a
//! [`FaultPlan`] frame by frame.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use oeb_linalg::Matrix;
use oeb_tabular::StreamDataset;

use crate::frame::{DatasetFrames, FrameSource, WindowFrame};
use crate::plan::{FaultKind, FaultLog, FaultPlan};

/// Magnitude of corrupted-cell values: far outside any scaled feature
/// range, mimicking bit-flip / unit-mismatch corruption.
const CORRUPT_SCALE: f64 = 1.0e9;

/// Wraps a frame source, injecting faults per the plan.
///
/// Every injection decision is drawn from an RNG seeded on
/// `(plan.seed, window index)`, so the faults a window receives do not
/// depend on how many windows were drawn before it. Replaying the
/// stream — or resuming it mid-way — reproduces exactly the same faults.
pub struct FaultInjector<S: FrameSource> {
    inner: S,
    plan: FaultPlan,
    log: FaultLog,
    /// A duplicated frame waiting to be emitted again.
    pending: Option<WindowFrame>,
}

impl<S: FrameSource> FaultInjector<S> {
    /// Wraps `inner` with the given plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`]; validate first
    /// when the plan comes from untrusted input.
    pub fn new(inner: S, plan: FaultPlan) -> FaultInjector<S> {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        FaultInjector {
            inner,
            plan,
            log: FaultLog::new(),
            pending: None,
        }
    }

    /// The faults injected so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Consumes the injector, returning the accumulated log.
    pub fn into_log(self) -> FaultLog {
        self.log
    }

    /// Deterministic per-window RNG, independent of draw order.
    fn window_rng(&self, window: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.plan
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(window as u64),
        )
    }

    /// Applies every in-window fault to `frame`, logging each one.
    /// Structural decisions (drop/duplicate) are made by the caller with
    /// the same RNG, before this runs.
    fn damage(&mut self, frame: &mut WindowFrame, rng: &mut StdRng) {
        let w = frame.index;

        // Truncate: keep a random prefix (at least one row).
        if self.plan.truncate_window > 0.0 && rng.gen_bool(self.plan.truncate_window) {
            let rows = frame.rows();
            if rows > 1 {
                let keep = rng.gen_range(1..rows);
                frame.features = take_rows(&frame.features, keep);
                frame.targets.truncate(keep);
                self.log.push(
                    w,
                    FaultKind::TruncatedWindow,
                    format!("kept {keep} of {rows} rows"),
                );
            }
        }

        // Schema violation: add a spurious column or remove one.
        if self.plan.schema_violation > 0.0 && rng.gen_bool(self.plan.schema_violation) {
            let cols = frame.cols();
            if rng.gen_bool(0.5) || cols <= 1 {
                frame.features = add_column(&frame.features, rng);
                self.log.push(
                    w,
                    FaultKind::SchemaViolation,
                    format!("added column ({} -> {})", cols, cols + 1),
                );
            } else {
                let victim = rng.gen_range(0..cols);
                frame.features = drop_column(&frame.features, victim);
                self.log.push(
                    w,
                    FaultKind::SchemaViolation,
                    format!("removed column {victim} ({} -> {})", cols, cols - 1),
                );
            }
        }

        // One feature column entirely missing.
        if self.plan.all_missing_column > 0.0
            && frame.cols() > 0
            && rng.gen_bool(self.plan.all_missing_column)
        {
            let col = rng.gen_range(0..frame.cols());
            for r in 0..frame.rows() {
                frame.features.row_mut(r)[col] = f64::NAN;
            }
            self.log.push(
                w,
                FaultKind::AllMissingColumn,
                format!("column {col} all NaN"),
            );
        }

        // NaN burst: a contiguous block of rows loses a subset of columns.
        if self.plan.nan_burst > 0.0
            && frame.rows() > 0
            && frame.cols() > 0
            && rng.gen_bool(self.plan.nan_burst)
        {
            let rows = frame.rows();
            let start = rng.gen_range(0..rows);
            let len = rng.gen_range(1..rows - start + 1);
            let cols = frame.cols();
            let n_cols = rng.gen_range(1..cols + 1);
            let mut hit_cols: Vec<usize> = (0..cols).collect();
            // Partial Fisher–Yates: the first n_cols entries are the burst.
            for i in 0..n_cols {
                let j = rng.gen_range(i..cols);
                hit_cols.swap(i, j);
            }
            for r in start..start + len {
                for &c in &hit_cols[..n_cols] {
                    frame.features.row_mut(r)[c] = f64::NAN;
                }
            }
            self.log.push(
                w,
                FaultKind::NanBurst,
                format!("rows {start}..{} x {n_cols} cols", start + len),
            );
        }

        // Corrupted cells: per-cell chance of an extreme value.
        if self.plan.cell_corruption > 0.0 {
            let mut hit = 0usize;
            for r in 0..frame.rows() {
                let row = frame.features.row_mut(r);
                for v in row.iter_mut() {
                    if rng.gen_bool(self.plan.cell_corruption) {
                        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                        *v = sign * CORRUPT_SCALE * (1.0 + rng.gen::<f64>());
                        hit += 1;
                    }
                }
            }
            if hit > 0 {
                self.log
                    .push(w, FaultKind::CorruptedCells, format!("{hit} cells"));
            }
        }

        // Label noise: pairwise swaps keep every label valid for the task.
        if self.plan.label_noise > 0.0 && frame.targets.len() > 1 {
            let n = frame.targets.len();
            let mut swaps = 0usize;
            for i in 0..n {
                if rng.gen_bool(self.plan.label_noise) {
                    let j = rng.gen_range(0..n);
                    frame.targets.swap(i, j);
                    swaps += 1;
                }
            }
            if swaps > 0 {
                self.log
                    .push(w, FaultKind::LabelNoise, format!("{swaps} swaps"));
            }
        }
    }
}

impl<S: FrameSource> FrameSource for FaultInjector<S> {
    fn n_windows(&self) -> usize {
        self.inner.n_windows()
    }

    fn next_frame(&mut self) -> Option<WindowFrame> {
        if let Some(dup) = self.pending.take() {
            return Some(dup);
        }
        loop {
            let mut frame = self.inner.next_frame()?;
            let mut rng = self.window_rng(frame.index);

            if self.plan.drop_window > 0.0 && rng.gen_bool(self.plan.drop_window) {
                self.log
                    .push(frame.index, FaultKind::DroppedWindow, "window dropped");
                continue;
            }
            let duplicate =
                self.plan.duplicate_window > 0.0 && rng.gen_bool(self.plan.duplicate_window);

            self.damage(&mut frame, &mut rng);

            if duplicate {
                self.log.push(
                    frame.index,
                    FaultKind::DuplicatedWindow,
                    "window emitted twice",
                );
                self.pending = Some(frame.clone());
            }
            return Some(frame);
        }
    }
}

/// Runs a full dataset through an injector, collecting every surviving
/// frame and the fault log. The faulty stream a harness consumes is
/// exactly this sequence.
pub fn inject_dataset(
    dataset: &StreamDataset,
    plan: &FaultPlan,
    window_factor: f64,
) -> (Vec<WindowFrame>, FaultLog) {
    let source = DatasetFrames::new(dataset, &dataset.feature_cols(), window_factor);
    let mut injector = FaultInjector::new(source, plan.clone());
    let mut frames = Vec::new();
    while let Some(frame) = injector.next_frame() {
        frames.push(frame);
    }
    (frames, injector.into_log())
}

/// First `keep` rows of `m`.
fn take_rows(m: &Matrix, keep: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..keep).map(|r| m.row(r).to_vec()).collect();
    Matrix::from_rows(&rows)
}

/// `m` plus one extra column of noise.
fn add_column(m: &Matrix, rng: &mut StdRng) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..m.rows())
        .map(|r| {
            let mut row = m.row(r).to_vec();
            row.push(rng.gen::<f64>() * 2.0 - 1.0);
            row
        })
        .collect();
    if rows.is_empty() {
        Matrix::zeros(0, m.cols() + 1)
    } else {
        Matrix::from_rows(&rows)
    }
}

/// `m` without column `victim`.
fn drop_column(m: &Matrix, victim: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..m.rows())
        .map(|r| {
            let mut row = m.row(r).to_vec();
            row.remove(victim);
            row
        })
        .collect();
    if rows.is_empty() {
        Matrix::zeros(0, m.cols() - 1)
    } else {
        Matrix::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameVec;

    fn toy_frames(n: usize, rows: usize, cols: usize) -> Vec<WindowFrame> {
        (0..n)
            .map(|w| {
                let data: Vec<f64> = (0..rows * cols)
                    .map(|i| (w * rows * cols + i) as f64)
                    .collect();
                WindowFrame {
                    index: w,
                    features: Matrix::from_vec(rows, cols, data),
                    targets: (0..rows).map(|r| ((w + r) % 2) as f64).collect(),
                }
            })
            .collect()
    }

    fn drain<S: FrameSource>(mut src: S) -> Vec<WindowFrame> {
        let mut out = Vec::new();
        while let Some(f) = src.next_frame() {
            out.push(f);
        }
        out
    }

    /// Bit-level frame equality: `PartialEq` treats NaN != NaN, which
    /// would make any NaN-injected frame unequal to its exact replay.
    fn frames_bit_eq(a: &WindowFrame, b: &WindowFrame) -> bool {
        let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
        a.index == b.index
            && a.features.shape() == b.features.shape()
            && bits(a.features.as_slice()) == bits(b.features.as_slice())
            && bits(&a.targets) == bits(&b.targets)
    }

    fn streams_bit_eq(a: &[WindowFrame], b: &[WindowFrame]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| frames_bit_eq(x, y))
    }

    #[test]
    fn clean_plan_is_the_identity() {
        let frames = toy_frames(6, 5, 3);
        let mut inj = FaultInjector::new(FrameVec::new(frames.clone()), FaultPlan::none(9));
        let mut out = Vec::new();
        while let Some(f) = inj.next_frame() {
            out.push(f);
        }
        assert_eq!(out, frames);
        assert!(inj.log().is_empty());
    }

    #[test]
    fn injection_is_deterministic() {
        let frames = toy_frames(20, 8, 4);
        let plan = FaultPlan::chaos(42);
        let mut a = FaultInjector::new(FrameVec::new(frames.clone()), plan.clone());
        let mut b = FaultInjector::new(FrameVec::new(frames), plan);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        while let Some(f) = a.next_frame() {
            out_a.push(f);
        }
        while let Some(f) = b.next_frame() {
            out_b.push(f);
        }
        assert!(streams_bit_eq(&out_a, &out_b));
        assert_eq!(a.log(), b.log());
        assert!(!a.log().is_empty(), "chaos injected nothing in 20 windows");
    }

    #[test]
    fn injection_is_order_independent() {
        // Faults on window k must not depend on windows 0..k having been
        // drawn — that is what makes checkpoint/resume reproducible.
        let frames = toy_frames(10, 6, 3);
        let plan = FaultPlan::chaos(7);
        let full = drain(FaultInjector::new(
            FrameVec::new(frames.clone()),
            plan.clone(),
        ));
        let tail = drain(FaultInjector::new(
            FrameVec::new(frames[4..].to_vec()),
            plan,
        ));
        let full_tail: Vec<WindowFrame> = full.iter().filter(|f| f.index >= 4).cloned().collect();
        assert!(streams_bit_eq(&full_tail, &tail));
    }

    #[test]
    fn drop_rate_one_empties_the_stream() {
        let mut plan = FaultPlan::none(3);
        plan.drop_window = 1.0;
        let mut inj = FaultInjector::new(FrameVec::new(toy_frames(5, 4, 2)), plan);
        assert!(inj.next_frame().is_none());
        assert_eq!(inj.log().count(FaultKind::DroppedWindow), 5);
    }

    #[test]
    fn duplicate_rate_one_doubles_the_stream() {
        let mut plan = FaultPlan::none(3);
        plan.duplicate_window = 1.0;
        let mut inj = FaultInjector::new(FrameVec::new(toy_frames(4, 4, 2)), plan);
        let mut out = Vec::new();
        while let Some(f) = inj.next_frame() {
            out.push(f);
        }
        assert_eq!(out.len(), 8);
        let indices: Vec<usize> = out.iter().map(|f| f.index).collect();
        assert_eq!(indices, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        // The duplicate is bit-identical, faults included.
        assert_eq!(out[0], out[1]);
        assert_eq!(inj.log().count(FaultKind::DuplicatedWindow), 4);
    }

    #[test]
    fn all_missing_column_is_fully_nan() {
        let mut plan = FaultPlan::none(11);
        plan.all_missing_column = 1.0;
        let mut inj = FaultInjector::new(FrameVec::new(toy_frames(3, 5, 4)), plan);
        while let Some(f) = inj.next_frame() {
            let nan_cols = (0..f.cols())
                .filter(|&c| (0..f.rows()).all(|r| f.features.row(r)[c].is_nan()))
                .count();
            assert!(nan_cols >= 1, "window {} has no all-NaN column", f.index);
        }
        assert_eq!(inj.log().count(FaultKind::AllMissingColumn), 3);
    }

    #[test]
    fn schema_violation_changes_column_count() {
        let mut plan = FaultPlan::none(5);
        plan.schema_violation = 1.0;
        let mut inj = FaultInjector::new(FrameVec::new(toy_frames(6, 4, 3)), plan);
        let mut changed = 0;
        while let Some(f) = inj.next_frame() {
            if f.cols() != 3 {
                changed += 1;
            }
        }
        assert_eq!(changed, 6);
        assert_eq!(inj.log().count(FaultKind::SchemaViolation), 6);
    }

    #[test]
    fn truncation_keeps_features_and_targets_aligned() {
        let mut plan = FaultPlan::none(13);
        plan.truncate_window = 1.0;
        let mut inj = FaultInjector::new(FrameVec::new(toy_frames(5, 9, 2)), plan);
        while let Some(f) = inj.next_frame() {
            assert_eq!(f.rows(), f.targets.len());
            assert!(f.rows() >= 1 && f.rows() < 9);
        }
        assert_eq!(inj.log().count(FaultKind::TruncatedWindow), 5);
    }

    #[test]
    fn label_noise_preserves_the_label_multiset() {
        let mut plan = FaultPlan::none(17);
        plan.label_noise = 0.5;
        let frames = toy_frames(4, 10, 2);
        let mut inj = FaultInjector::new(FrameVec::new(frames.clone()), plan);
        let mut k = 0;
        while let Some(f) = inj.next_frame() {
            let mut before = frames[k].targets.clone();
            let mut after = f.targets.clone();
            before.sort_by(f64::total_cmp);
            after.sort_by(f64::total_cmp);
            assert_eq!(before, after, "window {k} invented a label");
            k += 1;
        }
        assert!(inj.log().count(FaultKind::LabelNoise) > 0);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_plan_is_rejected_at_construction() {
        let mut plan = FaultPlan::none(0);
        plan.nan_burst = 2.0;
        FaultInjector::new(FrameVec::new(Vec::new()), plan);
    }
}
