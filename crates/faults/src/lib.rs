//! Deterministic fault injection for relational data streams.
//!
//! Real-world streams break in ways the clean benchmark registry never
//! does: sensors emit NaN bursts, ETL jobs corrupt cells, labellers make
//! mistakes, whole batches get dropped, duplicated or cut short, and
//! upstream schema changes silently add or remove columns. This crate
//! turns any window source into a stream exhibiting exactly those
//! pathologies, under a seeded [`FaultPlan`] so every injected fault is
//! reproducible — the same plan over the same source always produces
//! bit-identical frames and the same [`FaultLog`].
//!
//! The unit of streaming is the [`WindowFrame`]: one encoded window of
//! features plus its targets. Anything that yields frames implements
//! [`FrameSource`]; [`DatasetFrames`] adapts a
//! [`StreamDataset`](oeb_tabular::StreamDataset) and [`FaultInjector`]
//! wraps any source, applying the plan frame by frame.

mod frame;
mod inject;
mod plan;

pub use frame::{DatasetFrames, FrameSource, FrameVec, SharedFrames, WindowFrame};
pub use inject::{inject_dataset, FaultInjector};
pub use plan::{FaultEvent, FaultKind, FaultLog, FaultPlan};
