//! Adaptive Random Forest — Gomes et al., Machine Learning 2017.
//!
//! An ensemble of Hoeffding trees, each trained with Poisson(6) online
//! bagging on a random feature subspace and monitored by its own ADWIN
//! drift detector on the prediction-error stream. A warning spawns a
//! background tree; a confirmed drift swaps it in. Classification only —
//! the paper reports N/A for ARF on regression streams, and so does this
//! implementation by construction.

use crate::hoeffding::{fnv_mix, HoeffdingConfig, HoeffdingTree};
use oeb_drift::{Adwin, ConceptDriftDetector};
use oeb_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;

/// ARF hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ArfConfig {
    /// Ensemble size (the paper's default is 5).
    pub n_trees: usize,
    /// Poisson rate for online bagging (standard 6.0).
    pub lambda: f64,
    /// ADWIN delta for the drift detector.
    pub drift_delta: f64,
    /// ADWIN delta for the (more sensitive) warning detector.
    pub warning_delta: f64,
    /// Base-tree configuration.
    pub tree: HoeffdingConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArfConfig {
    fn default() -> Self {
        ArfConfig {
            n_trees: 5,
            lambda: 6.0,
            drift_delta: 0.00001,
            warning_delta: 0.0001,
            tree: HoeffdingConfig::default(),
            seed: 0x617266, // "arf"
        }
    }
}

/// One ensemble member: the foreground tree, its drift and warning
/// detectors, and the background tree grown since the last warning.
pub struct ArfMember {
    tree: HoeffdingTree,
    drift: Adwin,
    warning: Adwin,
    background: Option<HoeffdingTree>,
}

impl ArfMember {
    /// Online-bagging training step: trains the foreground tree (and the
    /// background tree when present) `k` times on the sample. Consumes no
    /// randomness — `k` comes from the serial
    /// [`AdaptiveRandomForest::pre_pass_member`] — so members can train
    /// concurrently without perturbing the shared RNG stream.
    pub fn bagged_train(&mut self, x: &[f64], y: usize, k: usize) {
        for _ in 0..k {
            self.tree.learn_one(x, y);
            if let Some(bg) = &mut self.background {
                bg.learn_one(x, y);
            }
        }
    }

    /// Structural digest of the member (trees, detector state,
    /// background presence). See [`AdaptiveRandomForest::digest`].
    pub fn digest(&self) -> u64 {
        let mut h = self.tree.digest();
        h = fnv_mix(h, self.drift.mean().to_bits());
        h = fnv_mix(h, self.warning.mean().to_bits());
        match &self.background {
            Some(bg) => h = fnv_mix(h, bg.digest()),
            None => h = fnv_mix(h, 0x6e6f6e65), // "none"
        }
        h
    }
}

/// The Adaptive Random Forest classifier.
pub struct AdaptiveRandomForest {
    members: Vec<ArfMember>,
    n_features: usize,
    n_classes: usize,
    config: ArfConfig,
    rng: StdRng,
    /// Count of tree replacements triggered by drift.
    pub n_resets: usize,
    /// Vote buffer reused across [`AdaptiveRandomForest::predict`] calls.
    vote_scratch: RefCell<Vec<f64>>,
}

impl AdaptiveRandomForest {
    /// Creates an ARF for `n_features` inputs and `n_classes` labels.
    pub fn new(n_features: usize, n_classes: usize, config: ArfConfig) -> AdaptiveRandomForest {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let members = (0..config.n_trees)
            .map(|_| ArfMember {
                tree: new_subspace_tree(n_features, n_classes, &config, &mut rng),
                drift: Adwin::new(config.drift_delta),
                warning: Adwin::new(config.warning_delta),
                background: None,
            })
            .collect();
        AdaptiveRandomForest {
            members,
            n_features,
            n_classes,
            config,
            rng,
            n_resets: 0,
            vote_scratch: RefCell::new(Vec::new()),
        }
    }

    /// Accuracy-weighted vote (ARF's default voting scheme): each member
    /// votes with weight `1 - recent error rate`, the recent error rate
    /// being the mean of its ADWIN window.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut votes = self.vote_scratch.borrow_mut();
        self.predict_into(x, &mut votes)
    }

    /// [`AdaptiveRandomForest::predict`] voting into a caller-provided
    /// buffer (cleared and resized here), avoiding the per-call vote
    /// allocation of the historical path.
    pub fn predict_into(&self, x: &[f64], votes: &mut Vec<f64>) -> usize {
        votes.clear();
        votes.resize(self.n_classes, 0.0);
        for m in &self.members {
            let weight = (1.0 - m.drift.mean()).max(0.01);
            votes[m.tree.predict(x).min(self.n_classes - 1)] += weight;
        }
        let mut best = 0;
        for (c, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = c;
            }
        }
        best
    }

    /// Serial per-member randomness pre-pass for one sample: error
    /// monitoring, warning/drift handling (either of which may consume
    /// RNG to draw a background/replacement subspace) and the Poisson bag
    /// count, returned for [`ArfMember::bagged_train`].
    ///
    /// Callers must invoke this in member order for every member of a
    /// sample before any member trains on it. That is exactly the RNG
    /// consumption order of the historical fused loop: member `i`'s
    /// training touched neither the shared RNG nor member `i+1`'s state,
    /// so hoisting all pre-passes ahead of training is bit-exact.
    #[doc(hidden)]
    pub fn pre_pass_member(&mut self, m: &mut ArfMember, x: &[f64], y: usize) -> usize {
        let y = y.min(self.n_classes - 1);
        let n_features = self.n_features;
        let n_classes = self.n_classes;
        let config = self.config;
        // Monitor the member's error before training on the sample.
        // ADWIN cuts on any mean change; only a cut that leaves the
        // window at a *higher* error is a drift (cuts on improving
        // error are the tree learning, not the concept changing).
        let err = f64::from(m.tree.predict(x) != y);
        let warn_pre = m.warning.mean();
        let warning_fired = m.warning.update(err).is_drift() && m.warning.mean() > warn_pre;
        let drift_pre = m.drift.mean();
        let drift_fired = m.drift.update(err).is_drift() && m.drift.mean() > drift_pre;

        if warning_fired && m.background.is_none() {
            m.background = Some(new_subspace_tree(
                n_features,
                n_classes,
                &config,
                &mut self.rng,
            ));
        }
        if drift_fired {
            // Promote the background tree (or start fresh).
            let replacement = m.background.take().unwrap_or_else(|| {
                new_subspace_tree(n_features, n_classes, &config, &mut self.rng)
            });
            m.tree = replacement;
            m.drift.reset();
            m.warning.reset();
            self.n_resets += 1;
        }

        // Online bagging: train k ~ Poisson(lambda) times.
        poisson(config.lambda, &mut self.rng)
    }

    /// Learns one labelled sample with per-member Poisson bagging and
    /// drift monitoring.
    pub fn learn_one(&mut self, x: &[f64], y: usize) {
        let mut members = std::mem::take(&mut self.members);
        for m in &mut members {
            let k = self.pre_pass_member(m, x, y);
            m.bagged_train(x, y.min(self.n_classes - 1), k);
        }
        self.members = members;
    }

    /// Detaches the ensemble members so a caller can drive
    /// [`AdaptiveRandomForest::pre_pass_member`] /
    /// [`ArfMember::bagged_train`] itself (the lockstep-parallel window
    /// trainer). Pair with [`AdaptiveRandomForest::put_members`].
    #[doc(hidden)]
    pub fn take_members(&mut self) -> Vec<ArfMember> {
        std::mem::take(&mut self.members)
    }

    /// Reattaches members detached by [`AdaptiveRandomForest::take_members`].
    #[doc(hidden)]
    pub fn put_members(&mut self, members: Vec<ArfMember>) {
        self.members = members;
    }

    /// Order-sensitive structural digest over every member (tree
    /// structure and leaf statistics bit patterns, detector means,
    /// background presence) plus the reset count. Equal digests mean two
    /// training schedules produced bit-identical forests; used by the
    /// serial-vs-lockstep equivalence tests and `bench_train`.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325;
        for m in &self.members {
            h = fnv_mix(h, m.digest());
        }
        fnv_mix(h, self.n_resets as u64)
    }

    /// Learns a whole window sample-by-sample.
    pub fn learn_window(&mut self, xs: &Matrix, ys: &[f64]) {
        for r in 0..xs.rows() {
            self.learn_one(xs.row(r), ys[r] as usize);
        }
    }

    /// Approximate model size in bytes: all foreground and background
    /// trees plus the detector state (ADWIN buckets are small and counted
    /// at a flat estimate).
    pub fn memory_bytes(&self) -> usize {
        self.members
            .iter()
            .map(|m| {
                m.tree.memory_bytes()
                    + m.background
                        .as_ref()
                        .map(HoeffdingTree::memory_bytes)
                        .unwrap_or(0)
                    + 2 * 512
            })
            .sum()
    }

    /// Ensemble size.
    pub fn n_trees(&self) -> usize {
        self.members.len()
    }
}

fn new_subspace_tree(
    n_features: usize,
    n_classes: usize,
    config: &ArfConfig,
    rng: &mut StdRng,
) -> HoeffdingTree {
    // Random subspace of round(sqrt(d)) + 1 features, ARF's default.
    let k = ((n_features as f64).sqrt().round() as usize + 1).clamp(1, n_features);
    let mut features: Vec<usize> = (0..n_features).collect();
    features.shuffle(rng);
    features.truncate(k);
    HoeffdingTree::new(n_features, n_classes, config.tree).with_feature_subset(features)
}

/// Knuth's Poisson sampler (fine for lambda = 6).
fn poisson(lambda: f64, rng: &mut StdRng) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 64 {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(concept: usize, n: usize) -> Vec<(Vec<f64>, usize)> {
        (0..n)
            .map(|i| {
                let x0 = (i % 100) as f64;
                let x1 = ((i * 7) % 100) as f64;
                let y = match concept {
                    0 => usize::from(x0 >= 50.0),
                    _ => usize::from(x0 < 50.0),
                };
                (vec![x0, x1, (i % 3) as f64], y)
            })
            .collect()
    }

    #[test]
    fn learns_a_stationary_concept() {
        let mut arf = AdaptiveRandomForest::new(3, 2, ArfConfig::default());
        for (x, y) in stream(0, 4000) {
            arf.learn_one(&x, y);
        }
        let correct = stream(0, 300)
            .iter()
            .filter(|(x, y)| arf.predict(x) == *y)
            .count();
        assert!(correct > 260, "accuracy {correct}/300");
    }

    #[test]
    fn recovers_after_concept_flip() {
        let mut arf = AdaptiveRandomForest::new(3, 2, ArfConfig::default());
        for (x, y) in stream(0, 4000) {
            arf.learn_one(&x, y);
        }
        for (x, y) in stream(1, 6000) {
            arf.learn_one(&x, y);
        }
        assert!(arf.n_resets > 0, "no drift-triggered resets");
        let correct = stream(1, 300)
            .iter()
            .filter(|(x, y)| arf.predict(x) == *y)
            .count();
        assert!(correct > 240, "post-drift accuracy {correct}/300");
    }

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(6.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn ensemble_size_and_memory() {
        let arf = AdaptiveRandomForest::new(4, 3, ArfConfig::default());
        assert_eq!(arf.n_trees(), 5);
        assert!(arf.memory_bytes() > 0);
    }

    #[test]
    fn untrained_forest_predicts_a_valid_class() {
        let arf = AdaptiveRandomForest::new(4, 3, ArfConfig::default());
        assert!(arf.predict(&[0.0, 0.0, 0.0, 0.0]) < 3);
    }
}
