//! Adaptive Random Forest — Gomes et al., Machine Learning 2017.
//!
//! An ensemble of Hoeffding trees, each trained with Poisson(6) online
//! bagging on a random feature subspace and monitored by its own ADWIN
//! drift detector on the prediction-error stream. A warning spawns a
//! background tree; a confirmed drift swaps it in. Classification only —
//! the paper reports N/A for ARF on regression streams, and so does this
//! implementation by construction.

use crate::hoeffding::{HoeffdingConfig, HoeffdingTree};
use oeb_drift::{Adwin, ConceptDriftDetector};
use oeb_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// ARF hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ArfConfig {
    /// Ensemble size (the paper's default is 5).
    pub n_trees: usize,
    /// Poisson rate for online bagging (standard 6.0).
    pub lambda: f64,
    /// ADWIN delta for the drift detector.
    pub drift_delta: f64,
    /// ADWIN delta for the (more sensitive) warning detector.
    pub warning_delta: f64,
    /// Base-tree configuration.
    pub tree: HoeffdingConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArfConfig {
    fn default() -> Self {
        ArfConfig {
            n_trees: 5,
            lambda: 6.0,
            drift_delta: 0.00001,
            warning_delta: 0.0001,
            tree: HoeffdingConfig::default(),
            seed: 0x617266, // "arf"
        }
    }
}

struct Member {
    tree: HoeffdingTree,
    drift: Adwin,
    warning: Adwin,
    background: Option<HoeffdingTree>,
}

/// The Adaptive Random Forest classifier.
pub struct AdaptiveRandomForest {
    members: Vec<Member>,
    n_features: usize,
    n_classes: usize,
    config: ArfConfig,
    rng: StdRng,
    /// Count of tree replacements triggered by drift.
    pub n_resets: usize,
}

impl AdaptiveRandomForest {
    /// Creates an ARF for `n_features` inputs and `n_classes` labels.
    pub fn new(n_features: usize, n_classes: usize, config: ArfConfig) -> AdaptiveRandomForest {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let members = (0..config.n_trees)
            .map(|_| Member {
                tree: new_subspace_tree(n_features, n_classes, &config, &mut rng),
                drift: Adwin::new(config.drift_delta),
                warning: Adwin::new(config.warning_delta),
                background: None,
            })
            .collect();
        AdaptiveRandomForest {
            members,
            n_features,
            n_classes,
            config,
            rng,
            n_resets: 0,
        }
    }

    /// Accuracy-weighted vote (ARF's default voting scheme): each member
    /// votes with weight `1 - recent error rate`, the recent error rate
    /// being the mean of its ADWIN window.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut votes = vec![0.0f64; self.n_classes];
        for m in &self.members {
            let weight = (1.0 - m.drift.mean()).max(0.01);
            votes[m.tree.predict(x).min(self.n_classes - 1)] += weight;
        }
        let mut best = 0;
        for (c, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = c;
            }
        }
        best
    }

    /// Learns one labelled sample with per-member Poisson bagging and
    /// drift monitoring.
    pub fn learn_one(&mut self, x: &[f64], y: usize) {
        let y = y.min(self.n_classes - 1);
        let n_features = self.n_features;
        let n_classes = self.n_classes;
        let config = self.config;
        for mi in 0..self.members.len() {
            // Monitor the member's error before training on the sample.
            // ADWIN cuts on any mean change; only a cut that leaves the
            // window at a *higher* error is a drift (cuts on improving
            // error are the tree learning, not the concept changing).
            let err = f64::from(self.members[mi].tree.predict(x) != y);
            let warn_pre = self.members[mi].warning.mean();
            let warning_fired = self.members[mi].warning.update(err).is_drift()
                && self.members[mi].warning.mean() > warn_pre;
            let drift_pre = self.members[mi].drift.mean();
            let drift_fired = self.members[mi].drift.update(err).is_drift()
                && self.members[mi].drift.mean() > drift_pre;

            if warning_fired && self.members[mi].background.is_none() {
                self.members[mi].background = Some(new_subspace_tree(
                    n_features,
                    n_classes,
                    &config,
                    &mut self.rng,
                ));
            }
            if drift_fired {
                // Promote the background tree (or start fresh).
                let replacement = self.members[mi].background.take().unwrap_or_else(|| {
                    new_subspace_tree(n_features, n_classes, &config, &mut self.rng)
                });
                self.members[mi].tree = replacement;
                self.members[mi].drift.reset();
                self.members[mi].warning.reset();
                self.n_resets += 1;
            }

            // Online bagging: train k ~ Poisson(lambda) times.
            let k = poisson(config.lambda, &mut self.rng);
            for _ in 0..k {
                self.members[mi].tree.learn_one(x, y);
                if let Some(bg) = &mut self.members[mi].background {
                    bg.learn_one(x, y);
                }
            }
        }
    }

    /// Learns a whole window sample-by-sample.
    pub fn learn_window(&mut self, xs: &Matrix, ys: &[f64]) {
        for r in 0..xs.rows() {
            self.learn_one(xs.row(r), ys[r] as usize);
        }
    }

    /// Approximate model size in bytes: all foreground and background
    /// trees plus the detector state (ADWIN buckets are small and counted
    /// at a flat estimate).
    pub fn memory_bytes(&self) -> usize {
        self.members
            .iter()
            .map(|m| {
                m.tree.memory_bytes()
                    + m.background
                        .as_ref()
                        .map(HoeffdingTree::memory_bytes)
                        .unwrap_or(0)
                    + 2 * 512
            })
            .sum()
    }

    /// Ensemble size.
    pub fn n_trees(&self) -> usize {
        self.members.len()
    }
}

fn new_subspace_tree(
    n_features: usize,
    n_classes: usize,
    config: &ArfConfig,
    rng: &mut StdRng,
) -> HoeffdingTree {
    // Random subspace of round(sqrt(d)) + 1 features, ARF's default.
    let k = ((n_features as f64).sqrt().round() as usize + 1).clamp(1, n_features);
    let mut features: Vec<usize> = (0..n_features).collect();
    features.shuffle(rng);
    features.truncate(k);
    HoeffdingTree::new(n_features, n_classes, config.tree).with_feature_subset(features)
}

/// Knuth's Poisson sampler (fine for lambda = 6).
fn poisson(lambda: f64, rng: &mut StdRng) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 64 {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(concept: usize, n: usize) -> Vec<(Vec<f64>, usize)> {
        (0..n)
            .map(|i| {
                let x0 = (i % 100) as f64;
                let x1 = ((i * 7) % 100) as f64;
                let y = match concept {
                    0 => usize::from(x0 >= 50.0),
                    _ => usize::from(x0 < 50.0),
                };
                (vec![x0, x1, (i % 3) as f64], y)
            })
            .collect()
    }

    #[test]
    fn learns_a_stationary_concept() {
        let mut arf = AdaptiveRandomForest::new(3, 2, ArfConfig::default());
        for (x, y) in stream(0, 4000) {
            arf.learn_one(&x, y);
        }
        let correct = stream(0, 300)
            .iter()
            .filter(|(x, y)| arf.predict(x) == *y)
            .count();
        assert!(correct > 260, "accuracy {correct}/300");
    }

    #[test]
    fn recovers_after_concept_flip() {
        let mut arf = AdaptiveRandomForest::new(3, 2, ArfConfig::default());
        for (x, y) in stream(0, 4000) {
            arf.learn_one(&x, y);
        }
        for (x, y) in stream(1, 6000) {
            arf.learn_one(&x, y);
        }
        assert!(arf.n_resets > 0, "no drift-triggered resets");
        let correct = stream(1, 300)
            .iter()
            .filter(|(x, y)| arf.predict(x) == *y)
            .count();
        assert!(correct > 240, "post-drift accuracy {correct}/300");
    }

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(6.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn ensemble_size_and_memory() {
        let arf = AdaptiveRandomForest::new(4, 3, ArfConfig::default());
        assert_eq!(arf.n_trees(), 5);
        assert!(arf.memory_bytes() > 0);
    }

    #[test]
    fn untrained_forest_predicts_a_valid_class() {
        let arf = AdaptiveRandomForest::new(4, 3, ArfConfig::default());
        assert!(arf.predict(&[0.0, 0.0, 0.0, 0.0]) < 3);
    }
}
