//! Gradient-boosted decision trees.
//!
//! Regression boosts squared error (each round fits a tree to the current
//! residuals); classification boosts the multiclass softmax objective
//! (each round fits one regression tree per class to the negative
//! gradient). The paper sets the number of boosting rounds to 5 (§6.1)
//! and sweeps ensemble size in its Figure 19.

use crate::cart::{DecisionTree, FeaturePresort, TreeConfig, TreeTask};
use oeb_linalg::Matrix;
use oeb_nn::softmax;

/// GBDT hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GbdtConfig {
    /// Boosting rounds (paper default 5).
    pub n_rounds: usize,
    /// Shrinkage / learning rate on each tree's contribution.
    pub shrinkage: f64,
    /// Configuration of the weak learners.
    pub tree: TreeConfig,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_rounds: 5,
            shrinkage: 0.3,
            tree: TreeConfig {
                max_depth: 6,
                ..Default::default()
            },
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone)]
pub struct Gbdt {
    task: TreeTask,
    /// Initial prediction (per class for classification).
    base: Vec<f64>,
    /// `rounds x n_outputs` trees (one tree per class per round for
    /// classification; one per round for regression).
    trees: Vec<Vec<DecisionTree>>,
    shrinkage: f64,
}

impl Gbdt {
    /// Fits a boosted ensemble.
    pub fn fit(xs: &Matrix, ys: &[f64], task: TreeTask, config: &GbdtConfig) -> Gbdt {
        assert_eq!(xs.rows(), ys.len());
        assert!(xs.rows() > 0, "cannot fit GBDT on no data");
        match task {
            TreeTask::Regression => Self::fit_regression(xs, ys, config),
            TreeTask::Classification { n_classes } => {
                Self::fit_classification(xs, ys, n_classes, config)
            }
        }
    }

    fn fit_regression(xs: &Matrix, ys: &[f64], config: &GbdtConfig) -> Gbdt {
        let n = xs.rows();
        let base = ys.iter().sum::<f64>() / n as f64;
        let mut preds = vec![base; n];
        let mut trees = Vec::with_capacity(config.n_rounds);
        // Every round fits the same rows: sort the feature columns once
        // and share the ordering across all weak learners.
        let presort = FeaturePresort::new(xs);
        for round in 0..config.n_rounds {
            let residuals: Vec<f64> = ys.iter().zip(&preds).map(|(y, p)| y - p).collect();
            let mut tree_cfg = config.tree;
            tree_cfg.seed = tree_cfg.seed.wrapping_add(round as u64);
            let tree = DecisionTree::fit_with_presort(
                xs,
                &residuals,
                TreeTask::Regression,
                &tree_cfg,
                &presort,
            );
            for (r, p) in preds.iter_mut().enumerate() {
                *p += config.shrinkage * tree.predict(xs.row(r));
            }
            trees.push(vec![tree]);
        }
        Gbdt {
            task: TreeTask::Regression,
            base: vec![base],
            trees,
            shrinkage: config.shrinkage,
        }
    }

    fn fit_classification(xs: &Matrix, ys: &[f64], n_classes: usize, config: &GbdtConfig) -> Gbdt {
        let n = xs.rows();
        // Log-prior initial scores.
        let mut counts = vec![1.0f64; n_classes];
        for &y in ys {
            counts[(y as usize).min(n_classes - 1)] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        let base: Vec<f64> = counts.iter().map(|c| (c / total).ln()).collect();

        let mut scores: Vec<Vec<f64>> = vec![base.clone(); n];
        let mut trees = Vec::with_capacity(config.n_rounds);
        // `rounds x classes` weak learners all fit the same rows: one
        // shared column ordering serves every fit.
        let presort = FeaturePresort::new(xs);
        for round in 0..config.n_rounds {
            let mut round_trees = Vec::with_capacity(n_classes);
            // Negative gradient of softmax CE per class: onehot - p.
            let probs: Vec<Vec<f64>> = scores.iter().map(|s| softmax(s)).collect();
            for class in 0..n_classes {
                let grad: Vec<f64> = (0..n)
                    .map(|r| {
                        let y = (ys[r] as usize).min(n_classes - 1);
                        let onehot = if y == class { 1.0 } else { 0.0 };
                        onehot - probs[r][class]
                    })
                    .collect();
                let mut tree_cfg = config.tree;
                tree_cfg.seed = tree_cfg
                    .seed
                    .wrapping_add((round * n_classes + class) as u64);
                let tree = DecisionTree::fit_with_presort(
                    xs,
                    &grad,
                    TreeTask::Regression,
                    &tree_cfg,
                    &presort,
                );
                for (r, s) in scores.iter_mut().enumerate() {
                    s[class] += config.shrinkage * tree.predict(xs.row(r));
                }
                round_trees.push(tree);
            }
            trees.push(round_trees);
        }
        Gbdt {
            task: TreeTask::Classification { n_classes },
            base,
            trees,
            shrinkage: config.shrinkage,
        }
    }

    /// Raw scores: a single value (regression) or per-class logits.
    pub fn scores(&self, x: &[f64]) -> Vec<f64> {
        let mut out = self.base.clone();
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                out[c] += self.shrinkage * tree.predict(x);
            }
        }
        out
    }

    /// Prediction: class index (classification) or value (regression).
    pub fn predict(&self, x: &[f64]) -> f64 {
        let scores = self.scores(x);
        match self.task {
            // oeb-lint: allow(panic-in-library) -- regression ensembles score exactly one output
            TreeTask::Regression => scores[0],
            TreeTask::Classification { .. } => oeb_nn::argmax(&scores) as f64,
        }
    }

    /// The learning task.
    pub fn task(&self) -> TreeTask {
        self.task
    }

    /// Total number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.iter().map(Vec::len).sum()
    }

    /// Approximate model size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.trees
            .iter()
            .flat_map(|r| r.iter())
            .map(DecisionTree::memory_bytes)
            .sum::<usize>()
            + self.base.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boosting_beats_single_round_on_regression() {
        // A smooth nonlinear target benefits from multiple rounds.
        let rows: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 400.0]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| (r[0] * std::f64::consts::TAU).sin())
            .collect();
        let xs = Matrix::from_rows(&rows);
        let mse = |rounds: usize| {
            let model = Gbdt::fit(
                &xs,
                &ys,
                TreeTask::Regression,
                &GbdtConfig {
                    n_rounds: rounds,
                    tree: TreeConfig {
                        max_depth: 2,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            (0..xs.rows())
                .map(|r| (model.predict(xs.row(r)) - ys[r]).powi(2))
                .sum::<f64>()
                / xs.rows() as f64
        };
        assert!(
            mse(10) < mse(1),
            "10 rounds {} vs 1 round {}",
            mse(10),
            mse(1)
        );
    }

    #[test]
    fn classifies_three_classes() {
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..300).map(|i| (i / 100) as f64).collect();
        let xs = Matrix::from_rows(&rows);
        let model = Gbdt::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 3 },
            &GbdtConfig::default(),
        );
        assert_eq!(model.predict(&[50.0]), 0.0);
        assert_eq!(model.predict(&[150.0]), 1.0);
        assert_eq!(model.predict(&[250.0]), 2.0);
    }

    #[test]
    fn tree_count_matches_config() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let xs = Matrix::from_rows(&rows);
        let reg = Gbdt::fit(
            &xs,
            &ys,
            TreeTask::Regression,
            &GbdtConfig {
                n_rounds: 7,
                ..Default::default()
            },
        );
        assert_eq!(reg.n_trees(), 7);
        let clf = Gbdt::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &GbdtConfig {
                n_rounds: 4,
                ..Default::default()
            },
        );
        assert_eq!(clf.n_trees(), 8);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys = vec![5.5; 50];
        let xs = Matrix::from_rows(&rows);
        let model = Gbdt::fit(&xs, &ys, TreeTask::Regression, &GbdtConfig::default());
        assert!((model.predict(&[25.0]) - 5.5).abs() < 1e-9);
    }

    #[test]
    fn memory_accounting_positive() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let xs = Matrix::from_rows(&rows);
        let model = Gbdt::fit(&xs, &ys, TreeTask::Regression, &GbdtConfig::default());
        assert!(model.memory_bytes() > 0);
    }
}
