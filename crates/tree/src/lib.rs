//! # oeb-tree
//!
//! Tree-based stream learners for the OEBench reproduction:
//! [`cart::DecisionTree`] (CART with Gini/variance splits and
//! missing-value routing), [`gbdt::Gbdt`] (gradient boosting, squared
//! error and multiclass softmax), [`hoeffding::HoeffdingTree`]
//! (incremental VFDT with Gaussian attribute observers), and
//! [`arf::AdaptiveRandomForest`] (Poisson-bagged Hoeffding trees with
//! per-tree ADWIN drift monitoring and background-tree replacement).

// Index loops over parallel numeric buffers are clearer than iterator
// chains in these kernels.
#![allow(clippy::needless_range_loop)]

pub mod arf;
pub mod cart;
pub mod gbdt;
pub mod hoeffding;

pub use arf::{AdaptiveRandomForest, ArfConfig, ArfMember};
pub use cart::{DecisionTree, FeaturePresort, TreeConfig, TreeTask};
pub use gbdt::{Gbdt, GbdtConfig};
pub use hoeffding::{HoeffdingConfig, HoeffdingTree};
