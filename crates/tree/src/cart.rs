//! CART decision trees (classification by Gini impurity, regression by
//! variance reduction), with optional per-split feature subsampling so the
//! same implementation backs bagged ensembles.
//!
//! Candidate thresholds per feature are limited to quantile cut points,
//! which bounds fit cost at `O(n log n)` per feature without hurting
//! accuracy at benchmark scale.

use oeb_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tree learning task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeTask {
    /// Predict one of `n_classes` labels (targets are class indices).
    Classification {
        /// Number of classes.
        n_classes: usize,
    },
    /// Predict a continuous value.
    Regression,
}

/// Decision-tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Candidate thresholds per feature (quantile cuts).
    pub max_thresholds: usize,
    /// `Some(k)`: consider a random subset of `k` features per split
    /// (for random-forest-style ensembles).
    pub max_features: Option<usize>,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_leaf: 4,
            max_thresholds: 32,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class index or regression mean.
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// NaN (missing) routes to the majority side chosen at fit time.
        nan_left: bool,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn count(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.count() + right.count(),
        }
    }
}

/// Stable per-feature row orderings of a training matrix, computed once
/// and shared across every tree fitted on the same rows (a GBDT fits
/// `rounds x classes` trees per window; the orderings depend only on
/// the feature values, never on the targets).
///
/// The per-node split sweep historically stable-sorted each node's
/// `(value, target)` pairs from scratch. Node index sets are always
/// ascending (the root starts ascending and `partition` preserves
/// relative order), so stably filtering these root orderings by node
/// membership reproduces each node's historical sequence exactly —
/// values ascending, ties in ascending row order — and the sweep's
/// accumulation chains stay bit-identical.
#[derive(Debug, Clone)]
pub struct FeaturePresort {
    /// Per feature: rows with finite values, ascending by value, ties
    /// in ascending row order (stable sort of the ascending range).
    finite: Vec<Vec<u32>>,
    /// Per feature: rows with non-finite values, ascending.
    nonfinite: Vec<Vec<u32>>,
}

impl FeaturePresort {
    /// Sorts every feature column of `xs` once.
    pub fn new(xs: &Matrix) -> FeaturePresort {
        let (n, d) = (xs.rows(), xs.cols());
        let mut finite = Vec::with_capacity(d);
        let mut nonfinite = Vec::with_capacity(d);
        for f in 0..d {
            let mut fin: Vec<u32> = Vec::with_capacity(n);
            let mut non: Vec<u32> = Vec::new();
            for i in 0..n {
                if xs[(i, f)].is_finite() {
                    fin.push(i as u32);
                } else {
                    non.push(i as u32);
                }
            }
            fin.sort_by(|&a, &b| xs[(a as usize, f)].total_cmp(&xs[(b as usize, f)]));
            finite.push(fin);
            nonfinite.push(non);
        }
        FeaturePresort { finite, nonfinite }
    }
}

/// Reusable per-fit buffers: node membership marks, the assembled
/// `(value, target)` sequence, the feature subset, and the sweep's
/// aggregate registers — so the per-node/per-candidate work allocates
/// nothing.
struct BuildScratch {
    in_node: Vec<bool>,
    sorted: Vec<(f64, f64)>,
    features: Vec<usize>,
    nan: SplitAgg,
    total: SplitAgg,
    left: SplitAgg,
    right: SplitAgg,
    with_nan: SplitAgg,
}

impl BuildScratch {
    fn new(n: usize, d: usize, task: TreeTask) -> BuildScratch {
        BuildScratch {
            in_node: vec![false; n],
            sorted: Vec::with_capacity(n),
            features: Vec::with_capacity(d),
            nan: SplitAgg::new(task),
            total: SplitAgg::new(task),
            left: SplitAgg::new(task),
            right: SplitAgg::new(task),
            with_nan: SplitAgg::new(task),
        }
    }
}

/// A fitted CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    task: TreeTask,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on `(xs, ys)`.
    ///
    /// # Panics
    /// Panics on empty input or length mismatch.
    pub fn fit(xs: &Matrix, ys: &[f64], task: TreeTask, config: &TreeConfig) -> DecisionTree {
        let presort = FeaturePresort::new(xs);
        Self::fit_with_presort(xs, ys, task, config, &presort)
    }

    /// [`DecisionTree::fit`] reusing an existing [`FeaturePresort`] of
    /// `xs` — the ensemble entry point (compute the presort once per
    /// window, fit many trees against it).
    ///
    /// # Panics
    /// Panics on empty input or length mismatch.
    pub fn fit_with_presort(
        xs: &Matrix,
        ys: &[f64],
        task: TreeTask,
        config: &TreeConfig,
        presort: &FeaturePresort,
    ) -> DecisionTree {
        assert_eq!(xs.rows(), ys.len(), "feature/target length mismatch");
        assert!(xs.rows() > 0, "cannot fit a tree on no data");
        let idx: Vec<usize> = (0..xs.rows()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut scratch = BuildScratch::new(xs.rows(), xs.cols(), task);
        let root = build(
            xs,
            ys,
            &idx,
            task,
            config,
            0,
            &mut rng,
            presort,
            &mut scratch,
        );
        DecisionTree {
            root,
            task,
            n_features: xs.cols(),
        }
    }

    /// The historical per-node-sorting fit, retained as the bitwise
    /// reference for the presorted path (equivalence tests compare the
    /// two tree structures exactly).
    #[doc(hidden)]
    pub fn fit_reference(
        xs: &Matrix,
        ys: &[f64],
        task: TreeTask,
        config: &TreeConfig,
    ) -> DecisionTree {
        assert_eq!(xs.rows(), ys.len(), "feature/target length mismatch");
        assert!(xs.rows() > 0, "cannot fit a tree on no data");
        let idx: Vec<usize> = (0..xs.rows()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let root = build_reference(xs, ys, &idx, task, config, 0, &mut rng);
        DecisionTree {
            root,
            task,
            n_features: xs.cols(),
        }
    }

    /// Predicts for one sample: class index (classification) or value
    /// (regression). Missing features follow the majority route recorded
    /// at fit time.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_features);
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    nan_left,
                    left,
                    right,
                } => {
                    let v = x[*feature];
                    let go_left = if v.is_finite() {
                        v <= *threshold
                    } else {
                        *nan_left
                    };
                    node = if go_left { left } else { right };
                }
            }
        }
    }

    /// The learning task.
    pub fn task(&self) -> TreeTask {
        self.task
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.root.count()
    }

    /// Approximate model size in bytes (for the Table 6 accounting):
    /// each node stores a feature id, threshold and two child slots.
    pub fn memory_bytes(&self) -> usize {
        self.n_nodes() * 40
    }
}

fn leaf_value(ys: &[f64], idx: &[usize], task: TreeTask) -> f64 {
    match task {
        TreeTask::Classification { n_classes } => {
            let mut counts = vec![0usize; n_classes];
            for &i in idx {
                let c = (ys[i] as usize).min(n_classes - 1);
                counts[c] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(c, _)| c as f64)
                .unwrap_or(0.0)
        }
        TreeTask::Regression => {
            let sum: f64 = idx.iter().map(|&i| ys[i]).sum();
            sum / idx.len().max(1) as f64
        }
    }
}

/// Impurity of an index set: Gini (classification) or variance
/// (regression), scaled by the set size.
fn impurity(ys: &[f64], idx: &[usize], task: TreeTask) -> f64 {
    let n = idx.len() as f64;
    if idx.is_empty() {
        return 0.0;
    }
    match task {
        TreeTask::Classification { n_classes } => {
            let mut counts = vec![0.0f64; n_classes];
            for &i in idx {
                counts[(ys[i] as usize).min(n_classes - 1)] += 1.0;
            }
            let gini = 1.0 - counts.iter().map(|c| (c / n) * (c / n)).sum::<f64>();
            gini * n
        }
        TreeTask::Regression => {
            let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / n;
            idx.iter().map(|&i| (ys[i] - mean).powi(2)).sum::<f64>()
        }
    }
}

/// Incremental impurity aggregate for the split sweep: class counts for
/// Gini, (sum, sum of squares) for variance.
#[derive(Debug, Clone)]
struct SplitAgg {
    count: f64,
    /// Class counts (classification) — empty for regression.
    classes: Vec<f64>,
    sum: f64,
    sq_sum: f64,
}

impl SplitAgg {
    fn new(task: TreeTask) -> SplitAgg {
        let classes = match task {
            TreeTask::Classification { n_classes } => vec![0.0; n_classes],
            TreeTask::Regression => Vec::new(),
        };
        SplitAgg {
            count: 0.0,
            classes,
            sum: 0.0,
            sq_sum: 0.0,
        }
    }

    #[inline]
    fn add(&mut self, y: f64) {
        self.count += 1.0;
        if self.classes.is_empty() {
            self.sum += y;
            self.sq_sum += y * y;
        } else {
            let c = (y as usize).min(self.classes.len() - 1);
            self.classes[c] += 1.0;
        }
    }

    fn plus(&self, other: &SplitAgg) -> SplitAgg {
        let mut out = self.clone();
        out.count += other.count;
        out.sum += other.sum;
        out.sq_sum += other.sq_sum;
        for (a, b) in out.classes.iter_mut().zip(&other.classes) {
            *a += b;
        }
        out
    }

    fn minus(&self, other: &SplitAgg) -> SplitAgg {
        let mut out = self.clone();
        out.count -= other.count;
        out.sum -= other.sum;
        out.sq_sum -= other.sq_sum;
        for (a, b) in out.classes.iter_mut().zip(&other.classes) {
            *a -= b;
        }
        out
    }

    /// Zeroes the aggregate in place, keeping the class-count
    /// allocation.
    fn reset(&mut self) {
        self.count = 0.0;
        self.sum = 0.0;
        self.sq_sum = 0.0;
        self.classes.fill(0.0);
    }

    /// `self = a + b` without allocating — the exact operations of
    /// [`SplitAgg::plus`] into a reused register.
    fn assign_sum(&mut self, a: &SplitAgg, b: &SplitAgg) {
        self.count = a.count + b.count;
        self.sum = a.sum + b.sum;
        self.sq_sum = a.sq_sum + b.sq_sum;
        self.classes.clear();
        self.classes
            .extend(a.classes.iter().zip(&b.classes).map(|(x, y)| x + y));
    }

    /// `self = a - b` without allocating — the exact operations of
    /// [`SplitAgg::minus`] into a reused register.
    fn assign_diff(&mut self, a: &SplitAgg, b: &SplitAgg) {
        self.count = a.count - b.count;
        self.sum = a.sum - b.sum;
        self.sq_sum = a.sq_sum - b.sq_sum;
        self.classes.clear();
        self.classes
            .extend(a.classes.iter().zip(&b.classes).map(|(x, y)| x - y));
    }

    /// Size-weighted impurity: `gini * n` or the sum of squared errors.
    fn impurity(&self) -> f64 {
        if self.count <= 0.0 {
            return 0.0;
        }
        if self.classes.is_empty() {
            (self.sq_sum - self.sum * self.sum / self.count).max(0.0)
        } else {
            let gini = 1.0
                - self
                    .classes
                    .iter()
                    .map(|c| (c / self.count) * (c / self.count))
                    .sum::<f64>();
            gini * self.count
        }
    }
}

/// Builds one node from the shared presort and scratch buffers: the
/// node's per-feature `(value, target)` sequences come from stably
/// filtering the root orderings by membership (no per-node sort), and
/// the candidate sweep runs in reused aggregate registers (no per-
/// candidate clones). Chain for chain this performs the same float
/// operations in the same order as [`build_reference`], so the fitted
/// tree is bit-identical.
#[allow(clippy::too_many_arguments)]
fn build(
    xs: &Matrix,
    ys: &[f64],
    idx: &[usize],
    task: TreeTask,
    config: &TreeConfig,
    depth: usize,
    rng: &mut StdRng,
    presort: &FeaturePresort,
    scratch: &mut BuildScratch,
) -> Node {
    let parent_impurity = impurity(ys, idx, task);
    if depth >= config.max_depth
        || idx.len() < 2 * config.min_samples_leaf
        || parent_impurity <= 1e-12
    {
        return Node::Leaf {
            value: leaf_value(ys, idx, task),
        };
    }

    // Feature subset for this split — drawn exactly as the reference
    // does, so the RNG stream stays aligned.
    let d = xs.cols();
    scratch.features.clear();
    scratch.features.extend(0..d);
    if let Some(k) = config.max_features {
        scratch.features.shuffle(rng);
        scratch.features.truncate(k.clamp(1, d));
    }

    for &i in idx {
        scratch.in_node[i] = true;
    }
    let mut best: Option<(usize, f64, f64, bool)> = None; // (feat, thr, score, nan_left)
    for fi in 0..scratch.features.len() {
        let f = scratch.features[fi];
        scratch.sorted.clear();
        scratch.nan.reset();
        for &i in &presort.nonfinite[f] {
            if scratch.in_node[i as usize] {
                scratch.nan.add(ys[i as usize]);
            }
        }
        // Node rows are always ascending, so this stable filter yields
        // the node's values ascending with ties in row order — the
        // sequence the reference obtains by sorting the node afresh.
        for &i in &presort.finite[f] {
            let i = i as usize;
            if scratch.in_node[i] {
                scratch.sorted.push((xs[(i, f)], ys[i]));
            }
        }
        let n_obs = scratch.sorted.len();
        if n_obs < 2 {
            continue;
        }
        // oeb-lint: allow(panic-in-library) -- guarded by the len >= 2 check above
        if scratch.sorted[0].0 == scratch.sorted[n_obs - 1].0 {
            continue;
        }
        scratch.total.reset();
        for &(_, y) in &scratch.sorted {
            scratch.total.add(y);
        }

        let n_cand = config.max_thresholds.min(n_obs - 1);
        scratch.left.reset();
        let mut cursor = 0usize;
        let has_nan = scratch.nan.count > 0.0;
        for t in 0..n_cand {
            let pos = ((t + 1) * (n_obs - 1) / (n_cand + 1).max(1)).min(n_obs - 2);
            let thr = (scratch.sorted[pos].0 + scratch.sorted[pos + 1].0) / 2.0;
            // Advance the sweep to include every value <= thr.
            while cursor < n_obs && scratch.sorted[cursor].0 <= thr {
                let y = scratch.sorted[cursor].1;
                scratch.left.add(y);
                cursor += 1;
            }
            if cursor == 0 || cursor == n_obs {
                continue;
            }
            scratch.right.assign_diff(&scratch.total, &scratch.left);
            // Try the missing values on each side (once when there are
            // none — the reference also adds the zeroed aggregate then).
            for nan_left in if has_nan {
                &[true, false][..]
            } else {
                &[true][..]
            } {
                let (l, r) = if *nan_left {
                    scratch.with_nan.assign_sum(&scratch.left, &scratch.nan);
                    (&scratch.with_nan, &scratch.right)
                } else {
                    scratch.with_nan.assign_sum(&scratch.right, &scratch.nan);
                    (&scratch.left, &scratch.with_nan)
                };
                if (l.count as usize) < config.min_samples_leaf
                    || (r.count as usize) < config.min_samples_leaf
                {
                    continue;
                }
                let score = l.impurity() + r.impurity();
                match best {
                    Some((_, _, b, _)) if b <= score => {}
                    _ => best = Some((f, thr, score, *nan_left)),
                }
            }
        }
    }
    for &i in idx {
        scratch.in_node[i] = false;
    }

    let Some((feature, threshold, score, nan_left)) = best else {
        return Node::Leaf {
            value: leaf_value(ys, idx, task),
        };
    };
    if score >= parent_impurity - 1e-12 {
        // No impurity reduction: stop.
        return Node::Leaf {
            value: leaf_value(ys, idx, task),
        };
    }
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| {
        let v = xs[(i, feature)];
        if v.is_finite() {
            v <= threshold
        } else {
            nan_left
        }
    });
    Node::Split {
        feature,
        threshold,
        nan_left,
        left: Box::new(build(
            xs,
            ys,
            &left_idx,
            task,
            config,
            depth + 1,
            rng,
            presort,
            scratch,
        )),
        right: Box::new(build(
            xs,
            ys,
            &right_idx,
            task,
            config,
            depth + 1,
            rng,
            presort,
            scratch,
        )),
    }
}

/// The historical node builder: sorts each node's observations afresh
/// per feature and clones sweep aggregates per candidate. Retained as
/// the bitwise reference for [`build`].
fn build_reference(
    xs: &Matrix,
    ys: &[f64],
    idx: &[usize],
    task: TreeTask,
    config: &TreeConfig,
    depth: usize,
    rng: &mut StdRng,
) -> Node {
    let parent_impurity = impurity(ys, idx, task);
    if depth >= config.max_depth
        || idx.len() < 2 * config.min_samples_leaf
        || parent_impurity <= 1e-12
    {
        return Node::Leaf {
            value: leaf_value(ys, idx, task),
        };
    }

    // Feature subset for this split.
    let d = xs.cols();
    let mut features: Vec<usize> = (0..d).collect();
    if let Some(k) = config.max_features {
        features.shuffle(rng);
        features.truncate(k.clamp(1, d));
    }

    // Split search: per feature, sort the observed values once and sweep
    // prefix aggregates (class counts or sum/sum-of-squares), evaluating
    // candidate thresholds at quantile positions without materialising
    // any partitions. Missing values are aggregated wholesale and tried
    // on each side.
    let mut best: Option<(usize, f64, f64, bool)> = None; // (feat, thr, score, nan_left)
    let mut sorted: Vec<(f64, f64)> = Vec::with_capacity(idx.len());
    for &f in &features {
        sorted.clear();
        let mut nan_agg = SplitAgg::new(task);
        for &i in idx {
            let v = xs[(i, f)];
            if v.is_finite() {
                sorted.push((v, ys[i]));
            } else {
                nan_agg.add(ys[i]);
            }
        }
        if sorted.len() < 2 {
            continue;
        }
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        // oeb-lint: allow(panic-in-library) -- guarded by the len >= 2 check above
        if sorted[0].0 == sorted[sorted.len() - 1].0 {
            continue;
        }
        let mut total_agg = SplitAgg::new(task);
        for &(_, y) in &sorted {
            total_agg.add(y);
        }

        let n_obs = sorted.len();
        let n_cand = config.max_thresholds.min(n_obs - 1);
        let mut left = SplitAgg::new(task);
        let mut cursor = 0usize;
        let has_nan = nan_agg.count > 0.0;
        for t in 0..n_cand {
            let pos = ((t + 1) * (n_obs - 1) / (n_cand + 1).max(1)).min(n_obs - 2);
            let thr = (sorted[pos].0 + sorted[pos + 1].0) / 2.0;
            // Advance the sweep to include every value <= thr.
            while cursor < n_obs && sorted[cursor].0 <= thr {
                left.add(sorted[cursor].1);
                cursor += 1;
            }
            if cursor == 0 || cursor == n_obs {
                continue;
            }
            let right = total_agg.minus(&left);
            // Try the missing values on each side (once when there are
            // none — routing is then immaterial at fit time).
            for nan_left in if has_nan {
                &[true, false][..]
            } else {
                &[true][..]
            } {
                let (l, r) = if *nan_left {
                    (left.plus(&nan_agg), right.clone())
                } else {
                    (left.clone(), right.plus(&nan_agg))
                };
                if (l.count as usize) < config.min_samples_leaf
                    || (r.count as usize) < config.min_samples_leaf
                {
                    continue;
                }
                let score = l.impurity() + r.impurity();
                match best {
                    Some((_, _, b, _)) if b <= score => {}
                    _ => best = Some((f, thr, score, *nan_left)),
                }
            }
        }
    }

    let Some((feature, threshold, score, nan_left)) = best else {
        return Node::Leaf {
            value: leaf_value(ys, idx, task),
        };
    };
    if score >= parent_impurity - 1e-12 {
        // No impurity reduction: stop.
        return Node::Leaf {
            value: leaf_value(ys, idx, task),
        };
    }
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| {
        let v = xs[(i, feature)];
        if v.is_finite() {
            v <= threshold
        } else {
            nan_left
        }
    });
    Node::Split {
        feature,
        threshold,
        nan_left,
        left: Box::new(build_reference(
            xs,
            ys,
            &left_idx,
            task,
            config,
            depth + 1,
            rng,
        )),
        right: Box::new(build_reference(
            xs,
            ys,
            &right_idx,
            task,
            config,
            depth + 1,
            rng,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structural bit-equality via the Debug representation: node
    /// shapes, feature ids, thresholds and leaf values all surface in
    /// it, and f64's Debug is round-trip exact.
    fn assert_same_tree(a: &DecisionTree, b: &DecisionTree, what: &str) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}");
    }

    #[test]
    fn presorted_fit_matches_reference_bitwise() {
        let mut s = 0x5eedu64;
        let mut lcg = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        // Shapes chosen to exercise ties, constant columns, NaN routing,
        // feature subsampling (RNG alignment) and both tasks.
        for (rows, cols, n_classes, nan_col, max_features) in [
            (60, 5, 3, None, None),
            (200, 8, 4, Some(2), None),
            (31, 3, 2, Some(0), Some(2)),
            (120, 6, 5, None, Some(3)),
            (17, 4, 2, Some(1), None),
        ] {
            let data: Vec<Vec<f64>> = (0..rows)
                .map(|r| {
                    (0..cols)
                        .map(|c| {
                            if Some(c) == nan_col && r % 5 == 0 {
                                f64::NAN
                            } else if c == cols - 1 {
                                1.25 // constant column: never splittable
                            } else {
                                (lcg() * 8.0).floor() / 2.0 // heavy ties
                            }
                        })
                        .collect()
                })
                .collect();
            let xs = Matrix::from_rows(&data);
            let ys_class: Vec<f64> = data
                .iter()
                .map(|r| ((r[0].abs() * 3.0) as usize % n_classes) as f64)
                .collect();
            let ys_reg: Vec<f64> = data.iter().map(|r| r[0] * 1.5 - r[1 % cols]).collect();
            let config = TreeConfig {
                max_depth: 6,
                max_features,
                seed: 11,
                ..Default::default()
            };
            let fast = DecisionTree::fit(
                &xs,
                &ys_class,
                TreeTask::Classification { n_classes },
                &config,
            );
            let reference = DecisionTree::fit_reference(
                &xs,
                &ys_class,
                TreeTask::Classification { n_classes },
                &config,
            );
            assert_same_tree(&fast, &reference, "classification tree diverged");
            let fast = DecisionTree::fit(&xs, &ys_reg, TreeTask::Regression, &config);
            let reference =
                DecisionTree::fit_reference(&xs, &ys_reg, TreeTask::Regression, &config);
            assert_same_tree(&fast, &reference, "regression tree diverged");
        }
    }

    #[test]
    fn shared_presort_matches_per_fit_presort() {
        // The ensemble entry point: one presort, many target vectors
        // (as GBDT uses it) must equal fitting each tree standalone.
        let rows: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i % 17) as f64, ((i * 7) % 23) as f64, (i % 3) as f64])
            .collect();
        let xs = Matrix::from_rows(&rows);
        let presort = FeaturePresort::new(&xs);
        for round in 0..4u64 {
            let ys: Vec<f64> = rows
                .iter()
                .enumerate()
                .map(|(i, r)| r[0] - (i as f64 * 0.01) * round as f64)
                .collect();
            let config = TreeConfig {
                max_depth: 5,
                seed: round,
                ..Default::default()
            };
            let shared =
                DecisionTree::fit_with_presort(&xs, &ys, TreeTask::Regression, &config, &presort);
            let standalone = DecisionTree::fit(&xs, &ys, TreeTask::Regression, &config);
            assert_same_tree(&shared, &standalone, "shared presort diverged");
        }
    }

    fn step_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64, (i % 13) as f64]).collect();
        let ys: Vec<f64> = (0..200).map(|i| if i < 100 { 0.0 } else { 1.0 }).collect();
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn learns_a_step_function_classification() {
        let (xs, ys) = step_data();
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig::default(),
        );
        assert_eq!(tree.predict(&[10.0, 0.0]), 0.0);
        assert_eq!(tree.predict(&[150.0, 0.0]), 1.0);
    }

    #[test]
    fn learns_piecewise_regression() {
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 300.0]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 0.5 { 2.0 } else { -3.0 })
            .collect();
        let xs = Matrix::from_rows(&rows);
        let tree = DecisionTree::fit(&xs, &ys, TreeTask::Regression, &TreeConfig::default());
        assert!((tree.predict(&[0.2]) - 2.0).abs() < 0.1);
        assert!((tree.predict(&[0.9]) + 3.0).abs() < 0.1);
    }

    #[test]
    fn pure_node_stops_splitting() {
        let xs = Matrix::from_rows(&vec![vec![1.0]; 50]);
        let ys = vec![3.0; 50];
        let tree = DecisionTree::fit(&xs, &ys, TreeTask::Regression, &TreeConfig::default());
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict(&[1.0]), 3.0);
    }

    #[test]
    fn max_depth_is_respected() {
        let (xs, ys) = step_data();
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert!(tree.n_nodes() <= 3);
    }

    #[test]
    fn missing_values_are_routed() {
        let (xs, ys) = step_data();
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig::default(),
        );
        let p = tree.predict(&[f64::NAN, 0.0]);
        assert!(p == 0.0 || p == 1.0);
    }

    #[test]
    fn trains_on_data_containing_nan() {
        let mut rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        rows[5][0] = f64::NAN;
        rows[50][0] = f64::NAN;
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 1.0 }).collect();
        let xs = Matrix::from_rows(&rows);
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig::default(),
        );
        assert_eq!(tree.predict(&[10.0]), 0.0);
        assert_eq!(tree.predict(&[90.0]), 1.0);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let (xs, ys) = step_data();
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig {
                max_features: Some(1),
                seed: 3,
                ..Default::default()
            },
        );
        let correct = (0..xs.rows())
            .filter(|&r| tree.predict(xs.row(r)) == ys[r])
            .count();
        assert!(correct >= 150, "accuracy {correct}/200");
    }

    #[test]
    fn outlier_degrades_but_does_not_crash_regression() {
        // §5.3: the tree survives the absurd cell (unlike the NN).
        let mut rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        rows.push(vec![999_990.0]);
        let mut ys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        ys.push(999_990.0);
        let xs = Matrix::from_rows(&rows);
        let tree = DecisionTree::fit(&xs, &ys, TreeTask::Regression, &TreeConfig::default());
        let pred = tree.predict(&[50.0]);
        assert!(pred.is_finite());
        assert!(pred < 10_000.0, "prediction {pred} dominated by outlier");
    }

    #[test]
    fn memory_scales_with_nodes() {
        let (xs, ys) = step_data();
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig::default(),
        );
        assert_eq!(tree.memory_bytes(), tree.n_nodes() * 40);
    }

    #[test]
    #[should_panic(expected = "cannot fit a tree on no data")]
    fn empty_input_panics() {
        let xs = Matrix::zeros(0, 1);
        let _ = DecisionTree::fit(&xs, &[], TreeTask::Regression, &TreeConfig::default());
    }
}
