//! CART decision trees (classification by Gini impurity, regression by
//! variance reduction), with optional per-split feature subsampling so the
//! same implementation backs bagged ensembles.
//!
//! Candidate thresholds per feature are limited to quantile cut points,
//! which bounds fit cost at `O(n log n)` per feature without hurting
//! accuracy at benchmark scale.

use oeb_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tree learning task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeTask {
    /// Predict one of `n_classes` labels (targets are class indices).
    Classification {
        /// Number of classes.
        n_classes: usize,
    },
    /// Predict a continuous value.
    Regression,
}

/// Decision-tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Candidate thresholds per feature (quantile cuts).
    pub max_thresholds: usize,
    /// `Some(k)`: consider a random subset of `k` features per split
    /// (for random-forest-style ensembles).
    pub max_features: Option<usize>,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_leaf: 4,
            max_thresholds: 32,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class index or regression mean.
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// NaN (missing) routes to the majority side chosen at fit time.
        nan_left: bool,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn count(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.count() + right.count(),
        }
    }
}

/// A fitted CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    task: TreeTask,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on `(xs, ys)`.
    ///
    /// # Panics
    /// Panics on empty input or length mismatch.
    pub fn fit(xs: &Matrix, ys: &[f64], task: TreeTask, config: &TreeConfig) -> DecisionTree {
        assert_eq!(xs.rows(), ys.len(), "feature/target length mismatch");
        assert!(xs.rows() > 0, "cannot fit a tree on no data");
        let idx: Vec<usize> = (0..xs.rows()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let root = build(xs, ys, &idx, task, config, 0, &mut rng);
        DecisionTree {
            root,
            task,
            n_features: xs.cols(),
        }
    }

    /// Predicts for one sample: class index (classification) or value
    /// (regression). Missing features follow the majority route recorded
    /// at fit time.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_features);
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    nan_left,
                    left,
                    right,
                } => {
                    let v = x[*feature];
                    let go_left = if v.is_finite() {
                        v <= *threshold
                    } else {
                        *nan_left
                    };
                    node = if go_left { left } else { right };
                }
            }
        }
    }

    /// The learning task.
    pub fn task(&self) -> TreeTask {
        self.task
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.root.count()
    }

    /// Approximate model size in bytes (for the Table 6 accounting):
    /// each node stores a feature id, threshold and two child slots.
    pub fn memory_bytes(&self) -> usize {
        self.n_nodes() * 40
    }
}

fn leaf_value(ys: &[f64], idx: &[usize], task: TreeTask) -> f64 {
    match task {
        TreeTask::Classification { n_classes } => {
            let mut counts = vec![0usize; n_classes];
            for &i in idx {
                let c = (ys[i] as usize).min(n_classes - 1);
                counts[c] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(c, _)| c as f64)
                .unwrap_or(0.0)
        }
        TreeTask::Regression => {
            let sum: f64 = idx.iter().map(|&i| ys[i]).sum();
            sum / idx.len().max(1) as f64
        }
    }
}

/// Impurity of an index set: Gini (classification) or variance
/// (regression), scaled by the set size.
fn impurity(ys: &[f64], idx: &[usize], task: TreeTask) -> f64 {
    let n = idx.len() as f64;
    if idx.is_empty() {
        return 0.0;
    }
    match task {
        TreeTask::Classification { n_classes } => {
            let mut counts = vec![0.0f64; n_classes];
            for &i in idx {
                counts[(ys[i] as usize).min(n_classes - 1)] += 1.0;
            }
            let gini = 1.0 - counts.iter().map(|c| (c / n) * (c / n)).sum::<f64>();
            gini * n
        }
        TreeTask::Regression => {
            let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / n;
            idx.iter().map(|&i| (ys[i] - mean).powi(2)).sum::<f64>()
        }
    }
}

/// Incremental impurity aggregate for the split sweep: class counts for
/// Gini, (sum, sum of squares) for variance.
#[derive(Debug, Clone)]
struct SplitAgg {
    count: f64,
    /// Class counts (classification) — empty for regression.
    classes: Vec<f64>,
    sum: f64,
    sq_sum: f64,
}

impl SplitAgg {
    fn new(task: TreeTask) -> SplitAgg {
        let classes = match task {
            TreeTask::Classification { n_classes } => vec![0.0; n_classes],
            TreeTask::Regression => Vec::new(),
        };
        SplitAgg {
            count: 0.0,
            classes,
            sum: 0.0,
            sq_sum: 0.0,
        }
    }

    #[inline]
    fn add(&mut self, y: f64) {
        self.count += 1.0;
        if self.classes.is_empty() {
            self.sum += y;
            self.sq_sum += y * y;
        } else {
            let c = (y as usize).min(self.classes.len() - 1);
            self.classes[c] += 1.0;
        }
    }

    fn plus(&self, other: &SplitAgg) -> SplitAgg {
        let mut out = self.clone();
        out.count += other.count;
        out.sum += other.sum;
        out.sq_sum += other.sq_sum;
        for (a, b) in out.classes.iter_mut().zip(&other.classes) {
            *a += b;
        }
        out
    }

    fn minus(&self, other: &SplitAgg) -> SplitAgg {
        let mut out = self.clone();
        out.count -= other.count;
        out.sum -= other.sum;
        out.sq_sum -= other.sq_sum;
        for (a, b) in out.classes.iter_mut().zip(&other.classes) {
            *a -= b;
        }
        out
    }

    /// Size-weighted impurity: `gini * n` or the sum of squared errors.
    fn impurity(&self) -> f64 {
        if self.count <= 0.0 {
            return 0.0;
        }
        if self.classes.is_empty() {
            (self.sq_sum - self.sum * self.sum / self.count).max(0.0)
        } else {
            let gini = 1.0
                - self
                    .classes
                    .iter()
                    .map(|c| (c / self.count) * (c / self.count))
                    .sum::<f64>();
            gini * self.count
        }
    }
}

fn build(
    xs: &Matrix,
    ys: &[f64],
    idx: &[usize],
    task: TreeTask,
    config: &TreeConfig,
    depth: usize,
    rng: &mut StdRng,
) -> Node {
    let parent_impurity = impurity(ys, idx, task);
    if depth >= config.max_depth
        || idx.len() < 2 * config.min_samples_leaf
        || parent_impurity <= 1e-12
    {
        return Node::Leaf {
            value: leaf_value(ys, idx, task),
        };
    }

    // Feature subset for this split.
    let d = xs.cols();
    let mut features: Vec<usize> = (0..d).collect();
    if let Some(k) = config.max_features {
        features.shuffle(rng);
        features.truncate(k.clamp(1, d));
    }

    // Split search: per feature, sort the observed values once and sweep
    // prefix aggregates (class counts or sum/sum-of-squares), evaluating
    // candidate thresholds at quantile positions without materialising
    // any partitions. Missing values are aggregated wholesale and tried
    // on each side.
    let mut best: Option<(usize, f64, f64, bool)> = None; // (feat, thr, score, nan_left)
    let mut sorted: Vec<(f64, f64)> = Vec::with_capacity(idx.len());
    for &f in &features {
        sorted.clear();
        let mut nan_agg = SplitAgg::new(task);
        for &i in idx {
            let v = xs[(i, f)];
            if v.is_finite() {
                sorted.push((v, ys[i]));
            } else {
                nan_agg.add(ys[i]);
            }
        }
        if sorted.len() < 2 {
            continue;
        }
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        // oeb-lint: allow(panic-in-library) -- guarded by the len >= 2 check above
        if sorted[0].0 == sorted[sorted.len() - 1].0 {
            continue;
        }
        let mut total_agg = SplitAgg::new(task);
        for &(_, y) in &sorted {
            total_agg.add(y);
        }

        let n_obs = sorted.len();
        let n_cand = config.max_thresholds.min(n_obs - 1);
        let mut left = SplitAgg::new(task);
        let mut cursor = 0usize;
        let has_nan = nan_agg.count > 0.0;
        for t in 0..n_cand {
            let pos = ((t + 1) * (n_obs - 1) / (n_cand + 1).max(1)).min(n_obs - 2);
            let thr = (sorted[pos].0 + sorted[pos + 1].0) / 2.0;
            // Advance the sweep to include every value <= thr.
            while cursor < n_obs && sorted[cursor].0 <= thr {
                left.add(sorted[cursor].1);
                cursor += 1;
            }
            if cursor == 0 || cursor == n_obs {
                continue;
            }
            let right = total_agg.minus(&left);
            // Try the missing values on each side (once when there are
            // none — routing is then immaterial at fit time).
            for nan_left in if has_nan {
                &[true, false][..]
            } else {
                &[true][..]
            } {
                let (l, r) = if *nan_left {
                    (left.plus(&nan_agg), right.clone())
                } else {
                    (left.clone(), right.plus(&nan_agg))
                };
                if (l.count as usize) < config.min_samples_leaf
                    || (r.count as usize) < config.min_samples_leaf
                {
                    continue;
                }
                let score = l.impurity() + r.impurity();
                match best {
                    Some((_, _, b, _)) if b <= score => {}
                    _ => best = Some((f, thr, score, *nan_left)),
                }
            }
        }
    }

    let Some((feature, threshold, score, nan_left)) = best else {
        return Node::Leaf {
            value: leaf_value(ys, idx, task),
        };
    };
    if score >= parent_impurity - 1e-12 {
        // No impurity reduction: stop.
        return Node::Leaf {
            value: leaf_value(ys, idx, task),
        };
    }
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| {
        let v = xs[(i, feature)];
        if v.is_finite() {
            v <= threshold
        } else {
            nan_left
        }
    });
    Node::Split {
        feature,
        threshold,
        nan_left,
        left: Box::new(build(xs, ys, &left_idx, task, config, depth + 1, rng)),
        right: Box::new(build(xs, ys, &right_idx, task, config, depth + 1, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64, (i % 13) as f64]).collect();
        let ys: Vec<f64> = (0..200).map(|i| if i < 100 { 0.0 } else { 1.0 }).collect();
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn learns_a_step_function_classification() {
        let (xs, ys) = step_data();
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig::default(),
        );
        assert_eq!(tree.predict(&[10.0, 0.0]), 0.0);
        assert_eq!(tree.predict(&[150.0, 0.0]), 1.0);
    }

    #[test]
    fn learns_piecewise_regression() {
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 300.0]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 0.5 { 2.0 } else { -3.0 })
            .collect();
        let xs = Matrix::from_rows(&rows);
        let tree = DecisionTree::fit(&xs, &ys, TreeTask::Regression, &TreeConfig::default());
        assert!((tree.predict(&[0.2]) - 2.0).abs() < 0.1);
        assert!((tree.predict(&[0.9]) + 3.0).abs() < 0.1);
    }

    #[test]
    fn pure_node_stops_splitting() {
        let xs = Matrix::from_rows(&vec![vec![1.0]; 50]);
        let ys = vec![3.0; 50];
        let tree = DecisionTree::fit(&xs, &ys, TreeTask::Regression, &TreeConfig::default());
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict(&[1.0]), 3.0);
    }

    #[test]
    fn max_depth_is_respected() {
        let (xs, ys) = step_data();
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert!(tree.n_nodes() <= 3);
    }

    #[test]
    fn missing_values_are_routed() {
        let (xs, ys) = step_data();
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig::default(),
        );
        let p = tree.predict(&[f64::NAN, 0.0]);
        assert!(p == 0.0 || p == 1.0);
    }

    #[test]
    fn trains_on_data_containing_nan() {
        let mut rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        rows[5][0] = f64::NAN;
        rows[50][0] = f64::NAN;
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 1.0 }).collect();
        let xs = Matrix::from_rows(&rows);
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig::default(),
        );
        assert_eq!(tree.predict(&[10.0]), 0.0);
        assert_eq!(tree.predict(&[90.0]), 1.0);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let (xs, ys) = step_data();
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig {
                max_features: Some(1),
                seed: 3,
                ..Default::default()
            },
        );
        let correct = (0..xs.rows())
            .filter(|&r| tree.predict(xs.row(r)) == ys[r])
            .count();
        assert!(correct >= 150, "accuracy {correct}/200");
    }

    #[test]
    fn outlier_degrades_but_does_not_crash_regression() {
        // §5.3: the tree survives the absurd cell (unlike the NN).
        let mut rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        rows.push(vec![999_990.0]);
        let mut ys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        ys.push(999_990.0);
        let xs = Matrix::from_rows(&rows);
        let tree = DecisionTree::fit(&xs, &ys, TreeTask::Regression, &TreeConfig::default());
        let pred = tree.predict(&[50.0]);
        assert!(pred.is_finite());
        assert!(pred < 10_000.0, "prediction {pred} dominated by outlier");
    }

    #[test]
    fn memory_scales_with_nodes() {
        let (xs, ys) = step_data();
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: 2 },
            &TreeConfig::default(),
        );
        assert_eq!(tree.memory_bytes(), tree.n_nodes() * 40);
    }

    #[test]
    #[should_panic(expected = "cannot fit a tree on no data")]
    fn empty_input_panics() {
        let xs = Matrix::zeros(0, 1);
        let _ = DecisionTree::fit(&xs, &[], TreeTask::Regression, &TreeConfig::default());
    }
}
