//! Incremental Hoeffding tree (VFDT) for streaming classification —
//! Domingos & Hulten, KDD 2000 — with Gaussian numeric attribute
//! observers. This is the base learner inside the Adaptive Random Forest
//! (§4.5 of the paper).

use oeb_linalg::Matrix;
use oeb_tabular::DeltaStat;
use oeb_trace::Counter;

/// Grace-period split evaluations performed across all trees.
static SPLIT_CHECKS: Counter = Counter::new("train.hoeffding.split_checks");

/// Online Gaussian estimator (Welford).
#[derive(Debug, Clone, Default)]
struct Gaussian {
    n: f64,
    mean: f64,
    m2: f64,
}

impl Gaussian {
    fn update(&mut self, x: f64) {
        self.n += 1.0;
        let d = x - self.mean;
        self.mean += d / self.n;
        self.m2 += d * (x - self.mean);
    }

    fn std(&self) -> f64 {
        if self.n < 2.0 {
            return 0.0;
        }
        (self.m2 / self.n).max(0.0).sqrt()
    }

    /// P(X <= x) under the fitted Gaussian.
    fn cdf(&self, x: f64) -> f64 {
        cdf_with(self.mean, self.std(), x)
    }
}

/// [`Gaussian::cdf`] with the standard deviation precomputed: split
/// evaluation caches `std()` once per (feature, class) instead of
/// recomputing it for each of the eight candidate thresholds. Same
/// arithmetic, so the cached path is bit-identical.
fn cdf_with(mean: f64, s: f64, x: f64) -> f64 {
    if s <= 1e-12 {
        return if x >= mean { 1.0 } else { 0.0 };
    }
    0.5 * (1.0 + erf((x - mean) / (s * std::f64::consts::SQRT_2)))
}

/// Abramowitz–Stegun rational approximation of erf (|error| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Maintained per-leaf class-count aggregates in the [`DeltaStat`]
/// spirit: the running total, the presence count (classes with a
/// nonzero count), and the incrementally tracked majority class.
///
/// Exactness contract (each piece is asserted bitwise by
/// `leaf_totals_snapshot_matches_batch_rescan`):
/// * `total` — counts only ever change by `±1.0`, so both the running
///   total and any left-to-right re-sum are exact integer arithmetic
///   below 2^53 and produce identical bits;
/// * `majority` — maintained with the first-argmax rule (a class takes
///   over only when strictly greater, or on an exact tie with a lower
///   index), matching a full rescan;
/// * `present` — exact integer bookkeeping on zero transitions.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafTotals {
    counts: Vec<f64>,
    total: f64,
    majority: usize,
    present: usize,
}

impl LeafTotals {
    /// Empty aggregate over `n_classes` classes.
    pub fn new(n_classes: usize) -> LeafTotals {
        LeafTotals {
            counts: vec![0.0; n_classes],
            total: 0.0,
            majority: 0,
            present: 0,
        }
    }

    /// Per-class counts.
    #[inline]
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Total observations, maintained incrementally (bit-identical to
    /// re-summing the counts: exact integers below 2^53).
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Majority class (first on ties), maintained incrementally.
    #[inline]
    pub fn majority(&self) -> usize {
        self.majority
    }

    /// True when at most one class has been observed. A pure leaf's
    /// split evaluation provably returns no gain (see
    /// [`LeafStats::best_splits`]), so callers may skip it entirely.
    #[inline]
    pub fn is_pure(&self) -> bool {
        self.present <= 1
    }

    fn absorb_class(&mut self, y: usize) {
        // oeb-lint: allow(float-eq) -- counts are exact integers
        if self.counts[y] == 0.0 {
            self.present += 1;
        }
        self.counts[y] += 1.0;
        self.total += 1.0;
        // First-argmax maintenance: `y` takes the majority only when it
        // strictly exceeds the incumbent, or ties it from a lower index —
        // exactly the order a left-to-right rescan would prefer.
        if y != self.majority {
            let (cy, cm) = (self.counts[y], self.counts[self.majority]);
            if cy > cm || (cy == cm && y < self.majority) {
                self.majority = y;
            }
        }
    }

    fn retract_class(&mut self, y: usize) {
        self.counts[y] -= 1.0;
        self.total -= 1.0;
        // oeb-lint: allow(float-eq) -- counts are exact integers
        if self.counts[y] == 0.0 {
            self.present -= 1;
        }
        // Retraction can demote the incumbent in favour of any class, so
        // rescan (retraction only happens on the DeltaStat path, never in
        // the tree's hot loop).
        self.majority = rescan_majority(&self.counts);
    }
}

/// First-index argmax over the counts (the historical majority rule).
fn rescan_majority(counts: &[f64]) -> usize {
    let mut best = 0;
    for (c, &v) in counts.iter().enumerate() {
        if v > counts[best] {
            best = c;
        }
    }
    best
}

impl DeltaStat for LeafTotals {
    /// `(total, majority, present)`.
    type Output = (f64, usize, usize);

    /// Absorbs one labelled sample; `row[0]` is the class index.
    fn absorb(&mut self, row: &[f64]) {
        let y = (row.first().copied().unwrap_or(0.0) as usize).min(self.counts.len() - 1);
        self.absorb_class(y);
    }

    /// Retracts one previously absorbed sample.
    fn retract(&mut self, row: &[f64]) {
        let y = (row.first().copied().unwrap_or(0.0) as usize).min(self.counts.len() - 1);
        self.retract_class(y);
    }

    fn snapshot(&self) -> (f64, usize, usize) {
        (self.total, self.majority, self.present)
    }
}

/// Reused buffers for split evaluation: the per-class `(n, mean, std)`
/// cache of the current feature and the projected left/right count
/// vectors (the historical path allocated both per candidate threshold).
#[derive(Debug, Clone, Default)]
struct SplitScratch {
    per_class: Vec<(f64, f64, f64)>,
    left: Vec<f64>,
    right: Vec<f64>,
}

/// Statistics held at a learning leaf.
#[derive(Debug, Clone)]
struct LeafStats {
    /// Maintained class-count aggregates (counts, total, majority).
    totals: LeafTotals,
    /// Flattened Gaussian observers: `observers[feature * n_classes + class]`.
    /// One contiguous allocation per leaf instead of one per feature, and
    /// the per-sample update walks it with a constant stride.
    observers: Vec<Gaussian>,
    n_classes: usize,
    n_since_check: usize,
}

impl LeafStats {
    fn new(n_features: usize, n_classes: usize) -> LeafStats {
        LeafStats {
            totals: LeafTotals::new(n_classes),
            observers: vec![Gaussian::default(); n_features * n_classes],
            n_classes,
            n_since_check: 0,
        }
    }

    /// Fused per-sample update: class counts, majority and observer row
    /// in one pass. Bit-identical to the historical nested-Vec loop —
    /// same Welford updates on the same `(feature, class)` cells in the
    /// same order.
    fn learn(&mut self, x: &[f64], y: usize) {
        self.totals.absorb_class(y);
        for (g, &xv) in self
            .observers
            .iter_mut()
            .skip(y)
            .step_by(self.n_classes)
            .zip(x.iter())
        {
            if xv.is_finite() {
                g.update(xv);
            }
        }
        self.n_since_check += 1;
    }

    fn majority(&self) -> usize {
        self.totals.majority()
    }

    fn entropy(counts: &[f64]) -> f64 {
        let total: f64 = counts.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        counts
            .iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let p = c / total;
                -p * p.log2()
            })
            .sum()
    }

    /// Best (gain, feature, threshold) and the runner-up gain over the
    /// allowed features, using the Gaussian class-conditional
    /// approximation to form candidate splits.
    ///
    /// The runner-up is the best gain of a *different* feature — the
    /// Hoeffding test decides between split attributes, and comparing a
    /// feature against its own neighbouring thresholds would make
    /// `best - second` vanish for every informative attribute.
    ///
    /// This is the maintained-aggregate fast path; it is bit-identical
    /// to [`LeafStats::best_splits_reference`] (asserted by the in-crate
    /// equivalence tests and timed by `bench_train`) via three exact
    /// rewrites of the historical evaluation:
    /// * **pure-leaf skip** — with at most one observed class the parent
    ///   entropy is `-0.0` and every admissible child entropy term is
    ///   `nl * -0.0 = -0.0`, so every candidate gain is exactly
    ///   `-0.0 - (-0.0) = +0.0`, never `> 0.0`: the historical scan
    ///   returns `(0.0, 0, 0.0, 0.0)` bit-for-bit, which is returned
    ///   directly;
    /// * **maintained total** — exact integer bookkeeping (see
    ///   [`LeafTotals`]);
    /// * **cached std and reused buffers** — `std()` is a pure function
    ///   of the observer, so caching it per (feature, class) and reusing
    ///   zero-filled left/right vectors replays the identical arithmetic
    ///   without the per-threshold allocations.
    fn best_splits(&self, allowed: &[usize], scratch: &mut SplitScratch) -> (f64, usize, f64, f64) {
        if self.totals.is_pure() {
            return (0.0, 0, 0.0, 0.0);
        }
        let counts = self.totals.counts();
        let parent = Self::entropy(counts);
        let total = self.totals.total();
        let n_classes = self.n_classes;
        let mut best = (0.0, 0, 0.0);
        let mut second = 0.0;
        for &f in allowed {
            let obs = &self.observers[f * n_classes..(f + 1) * n_classes];
            // Cache (n, mean, std) per class; std() is recomputed once
            // instead of once per threshold.
            scratch.per_class.clear();
            scratch
                .per_class
                .extend(obs.iter().map(|g| (g.n, g.mean, g.std())));
            // Candidate thresholds spanning the per-class means ± stds.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &(n, mean, std) in &scratch.per_class {
                if n > 0.0 {
                    lo = lo.min(mean - 3.0 * std);
                    hi = hi.max(mean + 3.0 * std);
                }
            }
            if hi <= lo {
                continue;
            }
            // Best gain over this feature's candidate thresholds.
            let mut feature_best = (0.0f64, 0.0f64);
            for t in 1..=8 {
                let thr = lo + (hi - lo) * t as f64 / 9.0;
                scratch.left.clear();
                scratch.left.resize(n_classes, 0.0);
                scratch.right.clear();
                scratch.right.resize(n_classes, 0.0);
                for (c, &(n, mean, std)) in scratch.per_class.iter().enumerate() {
                    if n <= 0.0 {
                        continue;
                    }
                    let p_left = cdf_with(mean, std, thr);
                    scratch.left[c] = counts[c] * p_left;
                    scratch.right[c] = counts[c] * (1.0 - p_left);
                }
                let nl: f64 = scratch.left.iter().sum();
                let nr: f64 = scratch.right.iter().sum();
                if nl < 1.0 || nr < 1.0 {
                    continue;
                }
                let child = (nl * Self::entropy(&scratch.left)
                    + nr * Self::entropy(&scratch.right))
                    / total;
                let gain = parent - child;
                if gain > feature_best.0 {
                    feature_best = (gain, thr);
                }
            }
            if feature_best.0 > best.0 {
                second = best.0;
                best = (feature_best.0, f, feature_best.1);
            } else if feature_best.0 > second {
                second = feature_best.0;
            }
        }
        (best.0, best.1, best.2, second)
    }

    /// The historical split evaluation, retained verbatim (adapted only
    /// to the flattened observer layout, which iterates the same cells
    /// in the same order): re-sums the total, recomputes every std per
    /// threshold, and allocates fresh left/right vectors — the bitwise
    /// reference for [`LeafStats::best_splits`].
    fn best_splits_reference(&self, allowed: &[usize]) -> (f64, usize, f64, f64) {
        let counts = self.totals.counts();
        let parent = Self::entropy(counts);
        let total: f64 = counts.iter().sum();
        let n_classes = self.n_classes;
        let mut best = (0.0, 0, 0.0);
        let mut second = 0.0;
        for &f in allowed {
            let obs = &self.observers[f * n_classes..(f + 1) * n_classes];
            // Candidate thresholds spanning the per-class means ± stds.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for g in obs {
                if g.n > 0.0 {
                    lo = lo.min(g.mean - 3.0 * g.std());
                    hi = hi.max(g.mean + 3.0 * g.std());
                }
            }
            if hi <= lo {
                continue;
            }
            // Best gain over this feature's candidate thresholds.
            let mut feature_best = (0.0f64, 0.0f64);
            for t in 1..=8 {
                let thr = lo + (hi - lo) * t as f64 / 9.0;
                let mut left = vec![0.0; counts.len()];
                let mut right = vec![0.0; counts.len()];
                for (c, g) in obs.iter().enumerate() {
                    if g.n <= 0.0 {
                        continue;
                    }
                    let p_left = g.cdf(thr);
                    left[c] = counts[c] * p_left;
                    right[c] = counts[c] * (1.0 - p_left);
                }
                let nl: f64 = left.iter().sum();
                let nr: f64 = right.iter().sum();
                if nl < 1.0 || nr < 1.0 {
                    continue;
                }
                let child = (nl * Self::entropy(&left) + nr * Self::entropy(&right)) / total;
                let gain = parent - child;
                if gain > feature_best.0 {
                    feature_best = (gain, thr);
                }
            }
            if feature_best.0 > best.0 {
                second = best.0;
                best = (feature_best.0, f, feature_best.1);
            } else if feature_best.0 > second {
                second = feature_best.0;
            }
        }
        (best.0, best.1, best.2, second)
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(LeafStats),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Hoeffding-tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct HoeffdingConfig {
    /// Split-attempt period at each leaf.
    pub grace_period: usize,
    /// Hoeffding bound confidence.
    pub delta: f64,
    /// Tie threshold: split anyway when the bound shrinks below this.
    pub tie_threshold: f64,
    /// Maximum depth (leaves stop splitting beyond it).
    pub max_depth: usize,
}

impl Default for HoeffdingConfig {
    fn default() -> Self {
        HoeffdingConfig {
            grace_period: 200,
            delta: 1e-6,
            tie_threshold: 0.05,
            max_depth: 20,
        }
    }
}

/// An incremental Hoeffding tree classifier.
#[derive(Debug, Clone)]
pub struct HoeffdingTree {
    root: Node,
    n_features: usize,
    n_classes: usize,
    config: HoeffdingConfig,
    /// `Some(features)`: only consider this feature subset for splits
    /// (ARF's per-tree random subspace).
    allowed_features: Option<Vec<usize>>,
    n_nodes: usize,
    /// Split-evaluation buffers reused across grace-period checks.
    scratch: SplitScratch,
}

impl HoeffdingTree {
    /// Creates an empty tree.
    pub fn new(n_features: usize, n_classes: usize, config: HoeffdingConfig) -> HoeffdingTree {
        HoeffdingTree {
            root: Node::Leaf(LeafStats::new(n_features, n_classes)),
            n_features,
            n_classes,
            config,
            allowed_features: None,
            n_nodes: 1,
            scratch: SplitScratch::default(),
        }
    }

    /// Restricts split candidates to a feature subset (for ARF).
    pub fn with_feature_subset(mut self, features: Vec<usize>) -> HoeffdingTree {
        self.allowed_features = Some(features);
        self
    }

    /// Number of tree nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Approximate model size in bytes: split nodes plus leaf estimator
    /// tables.
    pub fn memory_bytes(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf(stats) => stats.n_classes * 8 + stats.observers.len() * 24,
                Node::Split { left, right, .. } => 40 + walk(left) + walk(right),
            }
        }
        walk(&self.root)
    }

    /// Predicted class for a sample (majority class of its leaf).
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(stats) => return stats.majority(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x[*feature];
                    node = if v.is_finite() && v <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Learns one labelled sample, growing the tree when the Hoeffding
    /// bound certifies the best split.
    pub fn learn_one(&mut self, x: &[f64], y: usize) {
        debug_assert_eq!(x.len(), self.n_features);
        let y = y.min(self.n_classes - 1);
        let config = self.config;
        let n_classes = self.n_classes;
        let n_features = self.n_features;
        // Disjoint field borrows: the leaf walk holds `root` mutably while
        // split evaluation borrows the reusable `scratch`.
        let Self {
            root,
            scratch,
            allowed_features,
            ..
        } = self;
        let default_allowed: Vec<usize>;
        let allowed: &[usize] = match allowed_features {
            Some(f) => f,
            None => {
                default_allowed = (0..n_features).collect();
                &default_allowed
            }
        };

        let mut node = root;
        let mut depth = 0;
        let mut new_nodes = 0usize;
        loop {
            match node {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x[*feature];
                    node = if v.is_finite() && v <= *threshold {
                        left
                    } else {
                        right
                    };
                    depth += 1;
                }
                Node::Leaf(stats) => {
                    stats.learn(x, y);
                    if stats.n_since_check >= config.grace_period && depth < config.max_depth {
                        stats.n_since_check = 0;
                        SPLIT_CHECKS.incr();
                        let (best_gain, feature, threshold, second_gain) =
                            stats.best_splits(allowed, scratch);
                        let n = stats.totals.total();
                        // Hoeffding bound with range R = log2(#classes).
                        let range = (n_classes as f64).log2().max(1.0);
                        let eps = (range * range * (1.0 / config.delta).ln() / (2.0 * n)).sqrt();
                        if best_gain > 0.0
                            && (best_gain - second_gain > eps || eps < config.tie_threshold)
                        {
                            *node = Node::Split {
                                feature,
                                threshold,
                                left: Box::new(Node::Leaf(LeafStats::new(n_features, n_classes))),
                                right: Box::new(Node::Leaf(LeafStats::new(n_features, n_classes))),
                            };
                            new_nodes = 2;
                        }
                    }
                    break;
                }
            }
        }
        self.n_nodes += new_nodes;
    }

    /// Evaluates split candidates at the root leaf on the fast
    /// (maintained-aggregate) or retained reference path. Returns `None`
    /// once the root has split. Bench/test hook for timing and bitwise
    /// comparison of the two evaluators; not part of the learner API.
    #[doc(hidden)]
    pub fn root_split_eval(&mut self, reference: bool) -> Option<(f64, usize, f64, f64)> {
        let Self {
            root,
            scratch,
            allowed_features,
            ..
        } = self;
        let default_allowed: Vec<usize>;
        let allowed: &[usize] = match allowed_features {
            Some(f) => f,
            None => {
                default_allowed = (0..self.n_features).collect();
                &default_allowed
            }
        };
        match root {
            Node::Leaf(stats) => Some(if reference {
                stats.best_splits_reference(allowed)
            } else {
                SPLIT_CHECKS.incr();
                stats.best_splits(allowed, scratch)
            }),
            Node::Split { .. } => None,
        }
    }

    /// Learns a whole window sample-by-sample.
    pub fn learn_window(&mut self, xs: &Matrix, ys: &[f64]) {
        for r in 0..xs.rows() {
            self.learn_one(xs.row(r), ys[r] as usize);
        }
    }

    /// Order-sensitive structural digest: node shape, split parameters
    /// and the bit patterns of every leaf statistic (class counts,
    /// Welford observer state, grace counter). Equal digests mean two
    /// training schedules produced bit-identical trees.
    #[doc(hidden)]
    pub fn digest(&self) -> u64 {
        fn walk(node: &Node, mut h: u64) -> u64 {
            match node {
                Node::Leaf(stats) => {
                    h = fnv_mix(h, 0x6c656166); // "leaf"
                    for &c in stats.totals.counts() {
                        h = fnv_mix(h, c.to_bits());
                    }
                    h = fnv_mix(h, stats.totals.majority() as u64);
                    h = fnv_mix(h, stats.n_since_check as u64);
                    for g in &stats.observers {
                        h = fnv_mix(h, g.n.to_bits());
                        h = fnv_mix(h, g.mean.to_bits());
                        h = fnv_mix(h, g.m2.to_bits());
                    }
                    h
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    h = fnv_mix(h, 0x73706c69); // "spli"
                    h = fnv_mix(h, *feature as u64);
                    h = fnv_mix(h, threshold.to_bits());
                    walk(right, walk(left, h))
                }
            }
        }
        walk(&self.root, fnv_mix(0xcbf29ce484222325, self.n_nodes as u64))
    }
}

/// FNV-1a style mixing step shared by the structural digests here and in
/// the ARF ensemble.
pub(crate) fn fnv_mix(h: u64, v: u64) -> u64 {
    let mut h = h;
    for shift in [0u32, 32] {
        h ^= u64::from((v >> shift) as u32);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold_stream(n: usize) -> Vec<(Vec<f64>, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = usize::from(x >= 50.0);
                (vec![x, (i % 7) as f64], y)
            })
            .collect()
    }

    #[test]
    fn learns_a_threshold_concept() {
        let mut tree = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        for (x, y) in threshold_stream(5000) {
            tree.learn_one(&x, y);
        }
        assert!(tree.n_nodes() > 1, "tree never split");
        let correct = threshold_stream(200)
            .iter()
            .filter(|(x, y)| tree.predict(x) == *y)
            .count();
        assert!(correct > 180, "accuracy {correct}/200");
    }

    #[test]
    fn prediction_before_any_data_is_class_zero() {
        let tree = HoeffdingTree::new(3, 4, HoeffdingConfig::default());
        assert_eq!(tree.predict(&[1.0, 2.0, 3.0]), 0);
    }

    #[test]
    fn feature_subset_restricts_splits() {
        // Class depends only on feature 0; a tree restricted to feature 1
        // cannot do better than majority.
        let mut restricted =
            HoeffdingTree::new(2, 2, HoeffdingConfig::default()).with_feature_subset(vec![1]);
        let mut free = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        for (x, y) in threshold_stream(5000) {
            restricted.learn_one(&x, y);
            free.learn_one(&x, y);
        }
        let acc = |t: &HoeffdingTree| {
            threshold_stream(200)
                .iter()
                .filter(|(x, y)| t.predict(x) == *y)
                .count()
        };
        assert!(acc(&free) > acc(&restricted));
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-4);
    }

    #[test]
    fn gaussian_estimator_tracks_moments() {
        let mut g = Gaussian::default();
        for i in 0..1000 {
            g.update((i % 10) as f64);
        }
        assert!((g.mean - 4.5).abs() < 1e-9);
        assert!((g.std() - 2.872).abs() < 0.01);
        assert!((g.cdf(4.5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn max_depth_caps_growth() {
        let mut tree = HoeffdingTree::new(
            2,
            2,
            HoeffdingConfig {
                max_depth: 1,
                grace_period: 50,
                ..Default::default()
            },
        );
        for (x, y) in threshold_stream(10_000) {
            tree.learn_one(&x, y);
        }
        assert!(tree.n_nodes() <= 3, "nodes = {}", tree.n_nodes());
    }

    #[test]
    fn handles_nan_features() {
        let mut tree = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        for (mut x, y) in threshold_stream(1000) {
            if y == 0 {
                x[1] = f64::NAN;
            }
            tree.learn_one(&x, y);
        }
        let p = tree.predict(&[f64::NAN, f64::NAN]);
        assert!(p < 2);
    }

    /// The [`LeafTotals`] delta aggregates (total / majority / presence)
    /// must match a batch rescan of the raw counts bitwise after any
    /// absorb/retract sequence.
    #[test]
    fn leaf_totals_snapshot_matches_batch_rescan() {
        let n_classes = 5;
        let mut totals = LeafTotals::new(n_classes);
        let mut live: Vec<Vec<f64>> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for step in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let retract = !live.is_empty() && (step % 3 == 2);
            if retract {
                let idx = (state >> 33) as usize % live.len();
                let row = live.swap_remove(idx);
                totals.retract(&row);
            } else {
                let row = vec![((state >> 33) as usize % n_classes) as f64];
                totals.absorb(&row);
                live.push(row);
            }
            // Batch rescan from the surviving rows.
            let mut counts = vec![0.0f64; n_classes];
            for row in &live {
                counts[row[0] as usize] += 1.0;
            }
            let total: f64 = counts.iter().sum();
            let present = counts.iter().filter(|&&c| c > 0.0).count();
            let (t, maj, p) = totals.snapshot();
            assert_eq!(
                t.to_bits(),
                total.to_bits(),
                "total diverged at step {step}"
            );
            assert_eq!(
                maj,
                rescan_majority(&counts),
                "majority diverged at step {step}"
            );
            assert_eq!(p, present, "presence diverged at step {step}");
            for (c, (&a, &b)) in totals.counts().iter().zip(&counts).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "count {c} diverged at step {step}"
                );
            }
        }
    }

    /// The maintained-aggregate split evaluation must be bit-identical
    /// to the retained reference on leaves fed arbitrary streams —
    /// including pure leaves (fast-path early return) and leaves with
    /// NaN features (observers skipped).
    #[test]
    fn fast_split_eval_matches_reference_bitwise() {
        let mut state = 0xdeadbeefcafef00du64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for (n_features, n_classes, rows, pure) in [
            (1usize, 2usize, 0usize, false),
            (2, 2, 500, true), // single observed class: pure-leaf skip
            (3, 4, 300, false),
            (6, 3, 1200, false),
            (4, 2, 2500, false),
        ] {
            let cfg = HoeffdingConfig {
                grace_period: usize::MAX, // keep the root a leaf
                ..Default::default()
            };
            let mut tree = HoeffdingTree::new(n_features, n_classes, cfg);
            for _ in 0..rows {
                let x: Vec<f64> = (0..n_features)
                    .map(|_| match next(11) {
                        0 => f64::NAN,
                        v => v as f64 + next(100) as f64 / 100.0,
                    })
                    .collect();
                let y = if pure {
                    1
                } else {
                    next(n_classes as u64) as usize
                };
                tree.learn_one(&x, y);
            }
            let fast = tree.root_split_eval(false).unwrap();
            let reference = tree.root_split_eval(true).unwrap();
            assert_eq!(fast.0.to_bits(), reference.0.to_bits(), "best gain");
            assert_eq!(fast.1, reference.1, "split feature");
            assert_eq!(fast.2.to_bits(), reference.2.to_bits(), "threshold");
            assert_eq!(fast.3.to_bits(), reference.3.to_bits(), "runner-up gain");
        }
    }
}
