//! Incremental Hoeffding tree (VFDT) for streaming classification —
//! Domingos & Hulten, KDD 2000 — with Gaussian numeric attribute
//! observers. This is the base learner inside the Adaptive Random Forest
//! (§4.5 of the paper).

use oeb_linalg::Matrix;

/// Online Gaussian estimator (Welford).
#[derive(Debug, Clone, Default)]
struct Gaussian {
    n: f64,
    mean: f64,
    m2: f64,
}

impl Gaussian {
    fn update(&mut self, x: f64) {
        self.n += 1.0;
        let d = x - self.mean;
        self.mean += d / self.n;
        self.m2 += d * (x - self.mean);
    }

    fn std(&self) -> f64 {
        if self.n < 2.0 {
            return 0.0;
        }
        (self.m2 / self.n).max(0.0).sqrt()
    }

    /// P(X <= x) under the fitted Gaussian.
    fn cdf(&self, x: f64) -> f64 {
        let s = self.std();
        if s <= 1e-12 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        0.5 * (1.0 + erf((x - self.mean) / (s * std::f64::consts::SQRT_2)))
    }
}

/// Abramowitz–Stegun rational approximation of erf (|error| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Statistics held at a learning leaf.
#[derive(Debug, Clone)]
struct LeafStats {
    class_counts: Vec<f64>,
    /// `observers[feature][class]`.
    observers: Vec<Vec<Gaussian>>,
    n_since_check: usize,
}

impl LeafStats {
    fn new(n_features: usize, n_classes: usize) -> LeafStats {
        LeafStats {
            class_counts: vec![0.0; n_classes],
            observers: (0..n_features)
                .map(|_| (0..n_classes).map(|_| Gaussian::default()).collect())
                .collect(),
            n_since_check: 0,
        }
    }

    fn total(&self) -> f64 {
        self.class_counts.iter().sum()
    }

    fn majority(&self) -> usize {
        let mut best = 0;
        for (c, &v) in self.class_counts.iter().enumerate() {
            if v > self.class_counts[best] {
                best = c;
            }
        }
        best
    }

    fn entropy(counts: &[f64]) -> f64 {
        let total: f64 = counts.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        counts
            .iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let p = c / total;
                -p * p.log2()
            })
            .sum()
    }

    /// Best (gain, feature, threshold) and the runner-up gain over the
    /// allowed features, using the Gaussian class-conditional
    /// approximation to form candidate splits.
    ///
    /// The runner-up is the best gain of a *different* feature — the
    /// Hoeffding test decides between split attributes, and comparing a
    /// feature against its own neighbouring thresholds would make
    /// `best - second` vanish for every informative attribute.
    fn best_splits(&self, allowed: &[usize]) -> (f64, usize, f64, f64) {
        let parent = Self::entropy(&self.class_counts);
        let total = self.total();
        let mut best = (0.0, 0, 0.0);
        let mut second = 0.0;
        for &f in allowed {
            let obs = &self.observers[f];
            // Candidate thresholds spanning the per-class means ± stds.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for g in obs {
                if g.n > 0.0 {
                    lo = lo.min(g.mean - 3.0 * g.std());
                    hi = hi.max(g.mean + 3.0 * g.std());
                }
            }
            if hi <= lo {
                continue;
            }
            // Best gain over this feature's candidate thresholds.
            let mut feature_best = (0.0f64, 0.0f64);
            for t in 1..=8 {
                let thr = lo + (hi - lo) * t as f64 / 9.0;
                let mut left = vec![0.0; self.class_counts.len()];
                let mut right = vec![0.0; self.class_counts.len()];
                for (c, g) in obs.iter().enumerate() {
                    if g.n <= 0.0 {
                        continue;
                    }
                    let p_left = g.cdf(thr);
                    left[c] = self.class_counts[c] * p_left;
                    right[c] = self.class_counts[c] * (1.0 - p_left);
                }
                let nl: f64 = left.iter().sum();
                let nr: f64 = right.iter().sum();
                if nl < 1.0 || nr < 1.0 {
                    continue;
                }
                let child = (nl * Self::entropy(&left) + nr * Self::entropy(&right)) / total;
                let gain = parent - child;
                if gain > feature_best.0 {
                    feature_best = (gain, thr);
                }
            }
            if feature_best.0 > best.0 {
                second = best.0;
                best = (feature_best.0, f, feature_best.1);
            } else if feature_best.0 > second {
                second = feature_best.0;
            }
        }
        (best.0, best.1, best.2, second)
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(LeafStats),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Hoeffding-tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct HoeffdingConfig {
    /// Split-attempt period at each leaf.
    pub grace_period: usize,
    /// Hoeffding bound confidence.
    pub delta: f64,
    /// Tie threshold: split anyway when the bound shrinks below this.
    pub tie_threshold: f64,
    /// Maximum depth (leaves stop splitting beyond it).
    pub max_depth: usize,
}

impl Default for HoeffdingConfig {
    fn default() -> Self {
        HoeffdingConfig {
            grace_period: 200,
            delta: 1e-6,
            tie_threshold: 0.05,
            max_depth: 20,
        }
    }
}

/// An incremental Hoeffding tree classifier.
#[derive(Debug, Clone)]
pub struct HoeffdingTree {
    root: Node,
    n_features: usize,
    n_classes: usize,
    config: HoeffdingConfig,
    /// `Some(features)`: only consider this feature subset for splits
    /// (ARF's per-tree random subspace).
    allowed_features: Option<Vec<usize>>,
    n_nodes: usize,
}

impl HoeffdingTree {
    /// Creates an empty tree.
    pub fn new(n_features: usize, n_classes: usize, config: HoeffdingConfig) -> HoeffdingTree {
        HoeffdingTree {
            root: Node::Leaf(LeafStats::new(n_features, n_classes)),
            n_features,
            n_classes,
            config,
            allowed_features: None,
            n_nodes: 1,
        }
    }

    /// Restricts split candidates to a feature subset (for ARF).
    pub fn with_feature_subset(mut self, features: Vec<usize>) -> HoeffdingTree {
        self.allowed_features = Some(features);
        self
    }

    /// Number of tree nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Approximate model size in bytes: split nodes plus leaf estimator
    /// tables.
    pub fn memory_bytes(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf(stats) => {
                    stats.class_counts.len() * 8
                        + stats.observers.len() * stats.class_counts.len() * 24
                }
                Node::Split { left, right, .. } => 40 + walk(left) + walk(right),
            }
        }
        walk(&self.root)
    }

    /// Predicted class for a sample (majority class of its leaf).
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(stats) => return stats.majority(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x[*feature];
                    node = if v.is_finite() && v <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Learns one labelled sample, growing the tree when the Hoeffding
    /// bound certifies the best split.
    pub fn learn_one(&mut self, x: &[f64], y: usize) {
        debug_assert_eq!(x.len(), self.n_features);
        let y = y.min(self.n_classes - 1);
        let config = self.config;
        let n_classes = self.n_classes;
        let n_features = self.n_features;
        let allowed: Vec<usize> = self
            .allowed_features
            .clone()
            .unwrap_or_else(|| (0..n_features).collect());

        let mut node = &mut self.root;
        let mut depth = 0;
        let mut new_nodes = 0usize;
        loop {
            match node {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x[*feature];
                    node = if v.is_finite() && v <= *threshold {
                        left
                    } else {
                        right
                    };
                    depth += 1;
                }
                Node::Leaf(stats) => {
                    stats.class_counts[y] += 1.0;
                    for (f, &xv) in x.iter().enumerate() {
                        if xv.is_finite() {
                            stats.observers[f][y].update(xv);
                        }
                    }
                    stats.n_since_check += 1;
                    if stats.n_since_check >= config.grace_period && depth < config.max_depth {
                        stats.n_since_check = 0;
                        let (best_gain, feature, threshold, second_gain) =
                            stats.best_splits(&allowed);
                        let n = stats.total();
                        // Hoeffding bound with range R = log2(#classes).
                        let range = (n_classes as f64).log2().max(1.0);
                        let eps = (range * range * (1.0 / config.delta).ln() / (2.0 * n)).sqrt();
                        if best_gain > 0.0
                            && (best_gain - second_gain > eps || eps < config.tie_threshold)
                        {
                            *node = Node::Split {
                                feature,
                                threshold,
                                left: Box::new(Node::Leaf(LeafStats::new(n_features, n_classes))),
                                right: Box::new(Node::Leaf(LeafStats::new(n_features, n_classes))),
                            };
                            new_nodes = 2;
                        }
                    }
                    break;
                }
            }
        }
        self.n_nodes += new_nodes;
    }

    /// Learns a whole window sample-by-sample.
    pub fn learn_window(&mut self, xs: &Matrix, ys: &[f64]) {
        for r in 0..xs.rows() {
            self.learn_one(xs.row(r), ys[r] as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold_stream(n: usize) -> Vec<(Vec<f64>, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = usize::from(x >= 50.0);
                (vec![x, (i % 7) as f64], y)
            })
            .collect()
    }

    #[test]
    fn learns_a_threshold_concept() {
        let mut tree = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        for (x, y) in threshold_stream(5000) {
            tree.learn_one(&x, y);
        }
        assert!(tree.n_nodes() > 1, "tree never split");
        let correct = threshold_stream(200)
            .iter()
            .filter(|(x, y)| tree.predict(x) == *y)
            .count();
        assert!(correct > 180, "accuracy {correct}/200");
    }

    #[test]
    fn prediction_before_any_data_is_class_zero() {
        let tree = HoeffdingTree::new(3, 4, HoeffdingConfig::default());
        assert_eq!(tree.predict(&[1.0, 2.0, 3.0]), 0);
    }

    #[test]
    fn feature_subset_restricts_splits() {
        // Class depends only on feature 0; a tree restricted to feature 1
        // cannot do better than majority.
        let mut restricted =
            HoeffdingTree::new(2, 2, HoeffdingConfig::default()).with_feature_subset(vec![1]);
        let mut free = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        for (x, y) in threshold_stream(5000) {
            restricted.learn_one(&x, y);
            free.learn_one(&x, y);
        }
        let acc = |t: &HoeffdingTree| {
            threshold_stream(200)
                .iter()
                .filter(|(x, y)| t.predict(x) == *y)
                .count()
        };
        assert!(acc(&free) > acc(&restricted));
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-4);
    }

    #[test]
    fn gaussian_estimator_tracks_moments() {
        let mut g = Gaussian::default();
        for i in 0..1000 {
            g.update((i % 10) as f64);
        }
        assert!((g.mean - 4.5).abs() < 1e-9);
        assert!((g.std() - 2.872).abs() < 0.01);
        assert!((g.cdf(4.5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn max_depth_caps_growth() {
        let mut tree = HoeffdingTree::new(
            2,
            2,
            HoeffdingConfig {
                max_depth: 1,
                grace_period: 50,
                ..Default::default()
            },
        );
        for (x, y) in threshold_stream(10_000) {
            tree.learn_one(&x, y);
        }
        assert!(tree.n_nodes() <= 3, "nodes = {}", tree.n_nodes());
    }

    #[test]
    fn handles_nan_features() {
        let mut tree = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        for (mut x, y) in threshold_stream(1000) {
            if y == 0 {
                x[1] = f64::NAN;
            }
            tree.learn_one(&x, y);
        }
        let p = tree.predict(&[f64::NAN, f64::NAN]);
        assert!(p < 2);
    }
}
