//! Property-based tests for the tree learners: prediction-range bounds,
//! determinism, training-set consistency on clean data, and robustness
//! to arbitrary (including missing) inputs.

use oeb_linalg::Matrix;
use oeb_tree::{
    AdaptiveRandomForest, ArfConfig, DecisionTree, Gbdt, GbdtConfig, HoeffdingConfig,
    HoeffdingTree, TreeConfig, TreeTask,
};
use proptest::prelude::*;

fn labelled_data() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>, usize)> {
    (8usize..60, 1usize..4, 2usize..4).prop_flat_map(|(n, d, classes)| {
        prop::collection::vec(prop::collection::vec(-50.0..50.0f64, d), n).prop_map(move |rows| {
            let ys: Vec<f64> = rows
                .iter()
                .map(|r| {
                    let s: f64 = r.iter().sum();
                    ((s.abs() as usize) % classes) as f64
                })
                .collect();
            (rows, ys, classes)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dt_classification_predicts_only_seen_classes((rows, ys, classes) in labelled_data()) {
        let xs = Matrix::from_rows(&rows);
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: classes },
            &TreeConfig::default(),
        );
        for r in &rows {
            let p = tree.predict(r);
            prop_assert!(p.fract() == 0.0 && (p as usize) < classes);
        }
    }

    #[test]
    fn dt_regression_predictions_within_target_range((rows, _, _) in labelled_data()) {
        let ys: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
        let xs = Matrix::from_rows(&rows);
        let tree = DecisionTree::fit(&xs, &ys, TreeTask::Regression, &TreeConfig::default());
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for r in &rows {
            let p = tree.predict(r);
            // Leaf values are means of training targets, so predictions
            // can never escape the target range.
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
        // Arbitrary unseen points are also bounded.
        prop_assert!(tree.predict(&vec![1e6; rows[0].len()]) <= hi + 1e-9);
    }

    #[test]
    fn dt_fit_is_deterministic((rows, ys, classes) in labelled_data()) {
        let xs = Matrix::from_rows(&rows);
        let cfg = TreeConfig { seed: 9, ..Default::default() };
        let t1 = DecisionTree::fit(&xs, &ys, TreeTask::Classification { n_classes: classes }, &cfg);
        let t2 = DecisionTree::fit(&xs, &ys, TreeTask::Classification { n_classes: classes }, &cfg);
        for r in &rows {
            prop_assert_eq!(t1.predict(r), t2.predict(r));
        }
        prop_assert_eq!(t1.n_nodes(), t2.n_nodes());
    }

    #[test]
    fn dt_handles_rows_with_missing_features((rows, ys, classes) in labelled_data()) {
        let mut holey = rows.clone();
        for (i, row) in holey.iter_mut().enumerate() {
            if i % 3 == 0 {
                row[0] = f64::NAN;
            }
        }
        let xs = Matrix::from_rows(&holey);
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: classes },
            &TreeConfig::default(),
        );
        let all_nan = vec![f64::NAN; rows[0].len()];
        let p = tree.predict(&all_nan);
        prop_assert!((p as usize) < classes);
    }

    #[test]
    fn gbdt_regression_improves_on_constant_baseline((rows, _, _) in labelled_data()) {
        let ys: Vec<f64> = rows.iter().map(|r| r.iter().sum::<f64>()).collect();
        let xs = Matrix::from_rows(&rows);
        let model = Gbdt::fit(&xs, &ys, TreeTask::Regression, &GbdtConfig::default());
        let mean = oeb_linalg::mean(&ys);
        let baseline: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
        let fitted: f64 = rows
            .iter()
            .zip(&ys)
            .map(|(r, y)| (model.predict(r) - y).powi(2))
            .sum();
        prop_assert!(fitted <= baseline + 1e-6, "GBDT {fitted} worse than mean baseline {baseline}");
    }

    #[test]
    fn gbdt_classification_predicts_valid_classes((rows, ys, classes) in labelled_data()) {
        let xs = Matrix::from_rows(&rows);
        let model = Gbdt::fit(
            &xs,
            &ys,
            TreeTask::Classification { n_classes: classes },
            &GbdtConfig::default(),
        );
        for r in &rows {
            prop_assert!((model.predict(r) as usize) < classes);
        }
    }

    #[test]
    fn hoeffding_tree_predictions_always_valid(
        stream in prop::collection::vec((prop::collection::vec(-10.0..10.0f64, 3), 0usize..3), 10..200)
    ) {
        let mut tree = HoeffdingTree::new(3, 3, HoeffdingConfig {
            grace_period: 20,
            ..Default::default()
        });
        for (x, y) in &stream {
            prop_assert!(tree.predict(x) < 3);
            tree.learn_one(x, *y);
        }
        prop_assert!(tree.n_nodes() >= 1);
        prop_assert!(tree.memory_bytes() > 0);
    }

    #[test]
    fn arf_predictions_always_valid(
        stream in prop::collection::vec((prop::collection::vec(-10.0..10.0f64, 3), 0usize..2), 10..80)
    ) {
        let mut arf = AdaptiveRandomForest::new(3, 2, ArfConfig {
            n_trees: 3,
            ..Default::default()
        });
        for (x, y) in &stream {
            prop_assert!(arf.predict(x) < 2);
            arf.learn_one(x, *y);
        }
        prop_assert_eq!(arf.n_trees(), 3);
    }

    /// Tentpole contract of the presorted CART builder: on arbitrary
    /// data (ties, NaN holes, subsampled features), the presorted fit
    /// must reproduce the per-node-sorting reference tree exactly —
    /// same structure, same thresholds bit for bit.
    #[test]
    fn presorted_cart_fit_matches_reference(
        (rows, ys, classes) in labelled_data(),
        nan_period in 0usize..7,
        max_features in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
        seed in 0u64..50,
    ) {
        let rows: Vec<Vec<f64>> = rows
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                if nan_period > 1 && i % nan_period == 0 {
                    r[0] = f64::NAN;
                }
                // Quantise to force threshold ties.
                for v in &mut r {
                    *v = (*v * 0.5).round();
                }
                r
            })
            .collect();
        let xs = Matrix::from_rows(&rows);
        let config = TreeConfig {
            max_depth: 6,
            max_features,
            seed,
            ..Default::default()
        };
        for task in [TreeTask::Classification { n_classes: classes }, TreeTask::Regression] {
            let fast = DecisionTree::fit(&xs, &ys, task, &config);
            let reference = DecisionTree::fit_reference(&xs, &ys, task, &config);
            prop_assert_eq!(
                format!("{:?}", fast),
                format!("{:?}", reference),
                "presorted tree diverged for {:?}", task
            );
        }
    }
}
