//! Property-based tests for the tabular substrate: windowing partition
//! invariants, CSV round-trips over arbitrary tables, and missing-value
//! accounting.

use oeb_tabular::{
    read_table, window_ranges, write_table, Column, Field, FieldKind, Schema, Table,
};
use proptest::prelude::*;

/// Arbitrary cell text without CSV-hostile control characters we don't
/// claim to support (raw \r inside unquoted fields).
fn label() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ,\"_-]{0,12}"
}

fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..30, 1usize..5).prop_flat_map(|(rows, cols)| {
        let col = prop_oneof![
            // Numeric column with optional missing cells.
            prop::collection::vec(
                prop_oneof![
                    3 => (-1e6..1e6f64).prop_map(Some),
                    1 => Just(None)
                ],
                rows
            )
            .prop_map(|cells| Column::Numeric(
                cells.into_iter().map(|c| c.unwrap_or(f64::NAN)).collect()
            )),
            // Categorical column over a tiny dictionary.
            prop::collection::vec(
                prop_oneof![3 => (0u32..3).prop_map(Some), 1 => Just(None)],
                rows
            )
            .prop_map(Column::Categorical),
        ];
        prop::collection::vec(col, cols).prop_map(move |columns| {
            let fields: Vec<Field> = columns
                .iter()
                .enumerate()
                .map(|(i, c)| match c {
                    Column::Numeric(_) => Field::numeric(format!("n{i}")),
                    Column::Categorical(_) => Field {
                        name: format!("c{i}"),
                        kind: FieldKind::Categorical {
                            labels: vec!["l0".into(), "l1".into(), "l2".into()],
                        },
                    },
                })
                .collect();
            Table::new(Schema::new(fields), columns)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn windows_partition_rows_exactly(n in 0usize..5000, size in 1usize..500) {
        let w = window_ranges(n, size);
        if n == 0 {
            prop_assert!(w.is_empty());
        } else {
            prop_assert_eq!(w[0].start, 0);
            prop_assert_eq!(w.last().unwrap().end, n);
            let total: usize = w.iter().map(|r| r.len()).sum();
            prop_assert_eq!(total, n);
            for pair in w.windows(2) {
                prop_assert_eq!(pair[0].end, pair[1].start);
                prop_assert!(!pair[0].is_empty());
            }
            // No window exceeds 1.5x the nominal size (remainder merge cap).
            for r in &w {
                prop_assert!(r.len() < size + size / 2 + 1 || w.len() == 1);
            }
        }
    }

    #[test]
    fn missing_stats_are_consistent(t in arb_table()) {
        let s = t.missing_stats();
        prop_assert!((0.0..=1.0).contains(&s.rows_with_missing));
        prop_assert!((0.0..=1.0).contains(&s.missing_columns));
        prop_assert!((0.0..=1.0).contains(&s.empty_cells));
        // A missing cell implies both a missing row and a missing column.
        if s.empty_cells > 0.0 {
            prop_assert!(s.rows_with_missing > 0.0);
            prop_assert!(s.missing_columns > 0.0);
        }
        // Cell ratio can never exceed the row ratio (each missing cell
        // lives in a row that is counted once).
        prop_assert!(s.empty_cells <= s.rows_with_missing + 1e-12);
    }

    #[test]
    fn slicing_preserves_cells(t in arb_table(), split in 0usize..30) {
        let split = split.min(t.n_rows());
        let head = t.slice(0..split);
        let tail = t.slice(split..t.n_rows());
        prop_assert_eq!(head.n_rows() + tail.n_rows(), t.n_rows());
        let mut rebuilt = head.clone();
        rebuilt.append(&tail);
        prop_assert_eq!(rebuilt, t);
    }

    #[test]
    fn permutation_roundtrip(t in arb_table()) {
        let n = t.n_rows();
        let forward: Vec<usize> = (0..n).rev().collect();
        let back: Vec<usize> = (0..n).rev().collect();
        prop_assert_eq!(t.permute(&forward).permute(&back), t);
    }

    #[test]
    fn csv_roundtrip_of_numeric_tables(t in arb_table()) {
        // Categorical label dictionaries may compact (unused labels are
        // dropped by re-parsing), so check numeric columns cell-by-cell
        // and categorical columns by label text.
        let text = write_table(&t);
        let back = read_table(&text).expect("own output parses");
        prop_assert_eq!(back.n_rows(), t.n_rows());
        prop_assert_eq!(back.n_cols(), t.n_cols());
        for c in 0..t.n_cols() {
            for r in 0..t.n_rows() {
                prop_assert_eq!(back.is_missing(r, c), t.is_missing(r, c), "missing mismatch at {},{}", r, c);
            }
            if let (Column::Numeric(orig), Column::Numeric(rt)) = (t.column(c), back.column(c)) {
                for (a, b) in orig.iter().zip(rt) {
                    if a.is_finite() {
                        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
                    }
                }
            }
        }
    }

    #[test]
    fn csv_parser_handles_arbitrary_quoted_cells(cells in prop::collection::vec(label(), 1..6)) {
        // Build a one-row CSV with fully quoted cells; it must parse back
        // to the same texts.
        let header: Vec<String> = (0..cells.len()).map(|i| format!("h{i}")).collect();
        let quoted: Vec<String> = cells
            .iter()
            .map(|c| format!("\"{}\"", c.replace('"', "\"\"")))
            .collect();
        let text = format!("{}\n{}\n", header.join(","), quoted.join(","));
        let records = oeb_tabular::csv::parse_records(&text).expect("parses");
        prop_assert_eq!(records.len(), 2);
        for (got, want) in records[1].iter().zip(&cells) {
            prop_assert_eq!(got, want);
        }
    }
}
