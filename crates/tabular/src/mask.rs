//! Finiteness bitmask over a row-major numeric buffer.
//!
//! The imputers and window statistics repeatedly ask "which cells of this
//! window are observed?". Re-answering that with `is_finite()` per cell on
//! every pass re-reads 8 bytes per cell; a [`FiniteMask`] answers it from
//! one bit per cell, built in a single scan and then shared by every
//! subsequent pass (distance pruning, per-column donor scans, missing-rate
//! stats).
//!
//! A bit is **set** when the cell is finite, i.e. *observed*: NaN is the
//! missing sentinel throughout the pipeline, and infinities are treated as
//! unusable by the same `is_finite` predicate the imputers already apply.

/// Builds per-row bit words where a **set** bit means the cell is not
/// NaN. This is the [`Table::missing_stats`](crate::Table::missing_stats)
/// missing sentinel — unlike the mask's `is_finite`, it counts
/// infinities as observed — so delta accumulators built on these words
/// stay bit-identical to the table-level counts. `out` is cleared and
/// resized to `row.len().div_ceil(64)` words.
pub fn nan_words(row: &[f64], out: &mut Vec<u64>) {
    out.clear();
    out.resize(row.len().div_ceil(64), 0);
    for (c, x) in row.iter().enumerate() {
        if !x.is_nan() {
            out[c / 64] |= 1u64 << (c % 64);
        }
    }
}

/// Calls `f(col)` for every clear (missing) bit among the first `cols`
/// bits of `words`, in ascending column order, via a clear-bit walk
/// (`miss &= miss - 1`) so the cost is proportional to the number of
/// missing cells, not the row width.
pub fn missing_in_words(words: &[u64], cols: usize, mut f: impl FnMut(usize)) {
    for (w_idx, &w) in words.iter().enumerate() {
        if w_idx * 64 >= cols {
            break;
        }
        let bits_here = (cols - w_idx * 64).min(64);
        let live = if bits_here == 64 {
            !0u64
        } else {
            (1u64 << bits_here) - 1
        };
        let mut miss = !w & live;
        while miss != 0 {
            f(w_idx * 64 + miss.trailing_zeros() as usize);
            miss &= miss - 1;
        }
    }
}

/// One bit per cell of a row-major `rows x cols` buffer; set = finite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteMask {
    rows: usize,
    cols: usize,
    /// 64-bit words per row; rows are padded to a word boundary so each
    /// row's words can be borrowed as an independent slice.
    words_per_row: usize,
    bits: Vec<u64>,
}

impl FiniteMask {
    /// Builds the mask for a row-major buffer in one scan.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(data: &[f64], rows: usize, cols: usize) -> FiniteMask {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        let words_per_row = cols.div_ceil(64);
        let mut bits = vec![0u64; rows * words_per_row];
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let words = &mut bits[r * words_per_row..(r + 1) * words_per_row];
            for (c, x) in row.iter().enumerate() {
                if x.is_finite() {
                    words[c / 64] |= 1u64 << (c % 64);
                }
            }
        }
        FiniteMask {
            rows,
            cols,
            words_per_row,
            bits,
        }
    }

    /// Number of rows covered.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns covered.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when cell `(r, c)` holds a finite (observed) value.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        self.bits[r * self.words_per_row + c / 64] >> (c % 64) & 1 == 1
    }

    /// The bit words of row `r` (low bit of word 0 = column 0).
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        debug_assert!(r < self.rows);
        &self.bits[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Number of observed cells in row `r`.
    #[inline]
    pub fn row_count(&self, r: usize) -> usize {
        self.row_words(r)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of observed cells shared by rows `a` and `b`.
    #[inline]
    pub fn shared_count(&self, a: usize, b: usize) -> usize {
        self.row_words(a)
            .iter()
            .zip(self.row_words(b))
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// Columns of row `r` that are missing (bit clear), in ascending order.
    pub fn missing_in_row(&self, r: usize, out: &mut Vec<usize>) {
        out.clear();
        for c in 0..self.cols {
            if !self.get(r, c) {
                out.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_finite_cells() {
        let data = [1.0, f64::NAN, 3.0, f64::INFINITY, 5.0, 6.0];
        let m = FiniteMask::from_row_major(&data, 2, 3);
        assert!(m.get(0, 0));
        assert!(!m.get(0, 1)); // NaN is missing
        assert!(m.get(0, 2));
        assert!(!m.get(1, 0)); // inf counts as unobserved too
        assert_eq!(m.row_count(0), 2);
        assert_eq!(m.row_count(1), 2);
    }

    #[test]
    fn shared_count_intersects_rows() {
        let data = [1.0, f64::NAN, 3.0, 4.0, 5.0, f64::NAN];
        let m = FiniteMask::from_row_major(&data, 2, 3);
        // Row 0 observes {0, 2}, row 1 observes {0, 1}; intersection {0}.
        assert_eq!(m.shared_count(0, 1), 1);
    }

    #[test]
    fn missing_in_row_lists_clear_bits_ascending() {
        let data = [f64::NAN, 2.0, f64::NAN, 4.0];
        let m = FiniteMask::from_row_major(&data, 1, 4);
        let mut out = Vec::new();
        m.missing_in_row(0, &mut out);
        assert_eq!(out, vec![0, 2]);
    }

    #[test]
    fn wide_rows_span_multiple_words() {
        let cols = 130;
        let mut data = vec![1.0; cols];
        data[0] = f64::NAN;
        data[64] = f64::NAN;
        data[129] = f64::NAN;
        let m = FiniteMask::from_row_major(&data, 1, cols);
        assert_eq!(m.row_count(0), cols - 3);
        assert!(!m.get(0, 64));
        assert!(m.get(0, 65));
        assert_eq!(m.row_words(0).len(), 3);
    }

    #[test]
    fn nan_words_use_nan_not_finiteness() {
        let row = [1.0, f64::NAN, f64::INFINITY, 4.0];
        let mut words = Vec::new();
        nan_words(&row, &mut words);
        assert_eq!(words.len(), 1);
        // Infinity is observed under the missing-stats sentinel.
        assert_eq!(words[0] & 0b1111, 0b1101);
        let mut seen = Vec::new();
        missing_in_words(&words, 4, |c| seen.push(c));
        assert_eq!(seen, vec![1]);
    }

    #[test]
    fn missing_in_words_respects_column_bound() {
        // Padding bits past `cols` must not surface as missing columns.
        let row = vec![f64::NAN; 70];
        let mut words = Vec::new();
        nan_words(&row, &mut words);
        let mut seen = Vec::new();
        missing_in_words(&words, 70, |c| seen.push(c));
        assert_eq!(seen, (0..70).collect::<Vec<_>>());
        seen.clear();
        missing_in_words(&words, 3, |c| seen.push(c));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn empty_shapes_are_fine() {
        let m = FiniteMask::from_row_major(&[], 0, 5);
        assert_eq!(m.rows(), 0);
        let m = FiniteMask::from_row_major(&[], 3, 0);
        assert_eq!(m.row_count(2), 0);
    }
}
