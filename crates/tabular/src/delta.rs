//! Sufficient-statistics maintenance over row deltas.
//!
//! The incremental statistics pipeline treats every decomposable
//! statistic as a [`DeltaStat`]: a window slide [`absorb`]s the
//! entering rows and [`retract`]s the leaving ones, and
//! [`snapshot`] derives the statistic from the maintained state —
//! touching `O(changed rows)` instead of the whole window.
//!
//! [`absorb`]: DeltaStat::absorb
//! [`retract`]: DeltaStat::retract
//! [`snapshot`]: DeltaStat::snapshot
//!
//! This module hosts the trait and the missing-value statistic
//! ([`MissingDelta`]), which maintains row/column/cell missing counts
//! from one popcount per 64 columns per touched row (the same word
//! representation as [`FiniteMask`](crate::FiniteMask)). Other crates
//! implement the trait for their own statistics (ECDF multisets in
//! `oeb-drift`/`oeb-outlier`, shifted-sum scaler moments in
//! `oeb-preprocess`).

use crate::mask::{missing_in_words, nan_words};
use crate::table::MissingStats;

/// A statistic maintained under row insertion and exact retraction.
///
/// Implementations must be *order-insensitive up to the documented
/// exactness contract*: after any interleaving of `absorb`/`retract`
/// calls that leaves the same multiset of rows, `snapshot` returns the
/// same value (bit-identical for counting statistics; within a stated
/// epsilon for floating-moment statistics, where summation order is
/// the one reassociation allowed).
pub trait DeltaStat {
    /// The derived statistic.
    type Output;

    /// Accounts one entering row.
    fn absorb(&mut self, row: &[f64]);

    /// Removes one previously absorbed row.
    fn retract(&mut self, row: &[f64]);

    /// Derives the statistic from the maintained state.
    fn snapshot(&self) -> Self::Output;
}

/// Missing-value counts (rows / columns / cells) as a delta statistic.
///
/// `snapshot` is bit-identical to
/// [`Table::missing_stats`](crate::Table::missing_stats) over the same
/// rows, under the pipeline's missing sentinel: a cell is missing when
/// it is NaN (categorical cells surface as NaN dictionary indices
/// through `numeric_row`, so the table and row views agree).
///
/// Per touched row the cost is one NaN scan compressed into bit words
/// plus one popcount per 64 columns; per-column counts update only for
/// the missing (clear) bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingDelta {
    n_cols: usize,
    n_rows: usize,
    rows_with_missing: usize,
    cells_missing: usize,
    col_missing: Vec<usize>,
    /// Scratch word buffer, reused across rows.
    words: Vec<u64>,
}

impl MissingDelta {
    /// An empty accumulator over `n_cols` columns.
    pub fn new(n_cols: usize) -> MissingDelta {
        MissingDelta {
            n_cols,
            n_rows: 0,
            rows_with_missing: 0,
            cells_missing: 0,
            col_missing: vec![0; n_cols],
            words: Vec::new(),
        }
    }

    /// Rows currently absorbed.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Missing cells currently accounted.
    pub fn cells_missing(&self) -> usize {
        self.cells_missing
    }

    /// Columns with at least one missing cell.
    pub fn cols_with_missing(&self) -> usize {
        self.col_missing.iter().filter(|&&c| c > 0).count()
    }

    fn apply(&mut self, row: &[f64], sign: i64) {
        assert_eq!(row.len(), self.n_cols, "row width mismatch");
        let mut words = std::mem::take(&mut self.words);
        nan_words(row, &mut words);
        let missing = row.len() - words.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        if sign > 0 {
            self.n_rows += 1;
            self.cells_missing += missing;
            if missing > 0 {
                self.rows_with_missing += 1;
            }
        } else {
            assert!(self.n_rows > 0, "retracting from an empty accumulator");
            self.n_rows -= 1;
            assert!(
                self.cells_missing >= missing,
                "retracting unseen missing cells"
            );
            self.cells_missing -= missing;
            if missing > 0 {
                assert!(
                    self.rows_with_missing > 0,
                    "retracting an unseen missing row"
                );
                self.rows_with_missing -= 1;
            }
        }
        if missing > 0 {
            missing_in_words(&words, self.n_cols, |c| {
                if sign > 0 {
                    self.col_missing[c] += 1;
                } else {
                    assert!(self.col_missing[c] > 0, "column count underflow");
                    self.col_missing[c] -= 1;
                }
            });
        }
        self.words = words;
    }
}

impl DeltaStat for MissingDelta {
    type Output = MissingStats;

    fn absorb(&mut self, row: &[f64]) {
        self.apply(row, 1);
    }

    fn retract(&mut self, row: &[f64]) {
        self.apply(row, -1);
    }

    /// The three §4.3 ratios, with the identical division order and
    /// zero-shape handling as `Table::missing_stats`.
    fn snapshot(&self) -> MissingStats {
        if self.n_rows == 0 || self.n_cols == 0 {
            return MissingStats {
                rows_with_missing: 0.0,
                missing_columns: 0.0,
                empty_cells: 0.0,
            };
        }
        MissingStats {
            rows_with_missing: self.rows_with_missing as f64 / self.n_rows as f64,
            missing_columns: self.cols_with_missing() as f64 / self.n_cols as f64,
            empty_cells: self.cells_missing as f64 / (self.n_rows * self.n_cols) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::{Field, FieldKind, Schema};
    use crate::table::Table;

    fn toy_table(cells: &[&[f64]]) -> Table {
        let n_cols = cells.first().map_or(0, |r| r.len());
        let schema = Schema::new(
            (0..n_cols)
                .map(|c| Field {
                    name: format!("f{c}"),
                    kind: FieldKind::Numeric,
                })
                .collect(),
        );
        let columns = (0..n_cols)
            .map(|c| Column::Numeric(cells.iter().map(|r| r[c]).collect()))
            .collect();
        Table::new(schema, columns)
    }

    #[test]
    fn snapshot_matches_table_missing_stats_bitwise() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|r| {
                (0..7)
                    .map(|c| {
                        if (r * 7 + c) % 5 == 0 {
                            f64::NAN
                        } else {
                            (r * c) as f64
                        }
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let table = toy_table(&refs);
        let mut delta = MissingDelta::new(7);
        for r in &rows {
            delta.absorb(r);
        }
        let got = delta.snapshot();
        let expect = table.missing_stats();
        assert_eq!(
            got.rows_with_missing.to_bits(),
            expect.rows_with_missing.to_bits()
        );
        assert_eq!(
            got.missing_columns.to_bits(),
            expect.missing_columns.to_bits()
        );
        assert_eq!(got.empty_cells.to_bits(), expect.empty_cells.to_bits());
    }

    #[test]
    fn slide_equals_fresh_accumulation() {
        // Retracting a prefix and absorbing a suffix must equal building
        // the window from scratch.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|r| {
                (0..5)
                    .map(|c| if (r + c) % 4 == 0 { f64::NAN } else { r as f64 })
                    .collect()
            })
            .collect();
        let mut sliding = MissingDelta::new(5);
        for r in &rows[0..10] {
            sliding.absorb(r);
        }
        for k in 0..20 {
            // Slide by one: window is rows[k+1 .. k+11].
            sliding.retract(&rows[k]);
            sliding.absorb(&rows[k + 10]);
            let mut fresh = MissingDelta::new(5);
            for r in &rows[k + 1..k + 11] {
                fresh.absorb(r);
            }
            assert_eq!(sliding.snapshot(), fresh.snapshot(), "slide {k}");
            assert_eq!(sliding.cells_missing(), fresh.cells_missing());
        }
    }

    #[test]
    fn empty_accumulator_snapshot_is_zero() {
        let d = MissingDelta::new(4);
        let s = d.snapshot();
        assert_eq!(s.rows_with_missing, 0.0);
        assert_eq!(s.missing_columns, 0.0);
        assert_eq!(s.empty_cells, 0.0);
        let d = MissingDelta::new(0);
        assert_eq!(d.snapshot().empty_cells, 0.0);
    }

    #[test]
    fn wide_rows_span_words() {
        let mut row = vec![1.0; 130];
        row[0] = f64::NAN;
        row[64] = f64::NAN;
        row[129] = f64::NAN;
        let mut d = MissingDelta::new(130);
        d.absorb(&row);
        assert_eq!(d.cells_missing(), 3);
        assert_eq!(d.cols_with_missing(), 3);
        d.retract(&row);
        assert_eq!(d.cells_missing(), 0);
        assert_eq!(d.n_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "retracting")]
    fn retracting_unseen_rows_panics() {
        let mut d = MissingDelta::new(2);
        d.retract(&[1.0, 2.0]);
    }
}
