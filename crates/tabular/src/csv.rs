//! Minimal CSV reading/writing for tables.
//!
//! The pipeline is self-contained on synthetic streams, but users of the
//! library load their own relational streams from CSV, so the table type
//! round-trips through RFC-4180-style CSV (quoted fields, embedded commas
//! and quotes). Missing cells serialise as empty fields.

use crate::column::Column;
use crate::schema::{Field, FieldKind, Schema};
use crate::table::Table;
use std::collections::HashMap;

/// Errors produced by CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A data row had a different number of fields than the header.
    RaggedRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected from the header.
        expected: usize,
    },
    /// The input had no header row.
    Empty,
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line where the field started.
        line: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::RaggedRow {
                line,
                found,
                expected,
            } => write!(f, "line {line}: found {found} fields, expected {expected}"),
            CsvError::Empty => write!(f, "empty CSV input"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into raw string records (header + rows), handling quoted
/// fields with embedded commas, quotes, and newlines.
pub fn parse_records(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut quote_start_line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    quote_start_line = line;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote {
            line: quote_start_line,
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any || records.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(records)
}

/// Parses CSV text into a [`Table`], inferring column kinds: a column where
/// every non-empty cell parses as `f64` becomes numeric; anything else
/// becomes categorical with dictionary-encoded labels. Empty cells are
/// missing values.
pub fn read_table(text: &str) -> Result<Table, CsvError> {
    let records = parse_records(text)?;
    let header = records.first().ok_or(CsvError::Empty)?;
    let n_cols = header.len();
    for (i, rec) in records.iter().enumerate().skip(1) {
        if rec.len() != n_cols {
            return Err(CsvError::RaggedRow {
                line: i + 1,
                found: rec.len(),
                expected: n_cols,
            });
        }
    }
    let rows = &records[1..];

    let mut fields = Vec::with_capacity(n_cols);
    let mut columns = Vec::with_capacity(n_cols);
    for c in 0..n_cols {
        let numeric = rows
            .iter()
            .all(|r| r[c].is_empty() || r[c].trim().parse::<f64>().is_ok());
        if numeric {
            fields.push(Field::numeric(header[c].clone()));
            columns.push(Column::Numeric(
                rows.iter()
                    .map(|r| {
                        if r[c].is_empty() {
                            f64::NAN
                        } else {
                            // oeb-lint: allow(panic-in-library) -- every cell pre-scanned as parseable above
                            r[c].trim().parse().expect("checked numeric")
                        }
                    })
                    .collect(),
            ));
        } else {
            let mut dict: HashMap<&str, u32> = HashMap::new();
            let mut labels: Vec<String> = Vec::new();
            let mut cells = Vec::with_capacity(rows.len());
            for r in rows {
                if r[c].is_empty() {
                    cells.push(None);
                } else {
                    let idx = *dict.entry(r[c].as_str()).or_insert_with(|| {
                        labels.push(r[c].clone());
                        (labels.len() - 1) as u32
                    });
                    cells.push(Some(idx));
                }
            }
            fields.push(Field {
                name: header[c].clone(),
                kind: FieldKind::Categorical { labels },
            });
            columns.push(Column::Categorical(cells));
        }
    }
    Ok(Table::new(Schema::new(fields), columns))
}

/// Serialises a table to CSV text (header + rows), quoting fields that need
/// it. Missing cells serialise as empty fields.
pub fn write_table(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| quote(&f.name))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for r in 0..table.n_rows() {
        let mut cells = Vec::with_capacity(table.n_cols());
        for c in 0..table.n_cols() {
            let cell = match table.column(c) {
                Column::Numeric(v) => {
                    if v[r].is_nan() {
                        String::new()
                    } else {
                        format!("{}", v[r])
                    }
                }
                Column::Categorical(v) => match v[r] {
                    None => String::new(),
                    Some(idx) => match &table.schema().field(c).kind {
                        FieldKind::Categorical { labels } => quote(&labels[idx as usize]),
                        FieldKind::Numeric => unreachable!("schema/column kind match"),
                    },
                },
            };
            cells.push(cell);
        }
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let t = read_table("a,b\n1,x\n2,y\n3,x\n").unwrap();
        assert_eq!(t.n_rows(), 3);
        assert!(t.column(0).is_numeric());
        assert!(!t.column(1).is_numeric());
    }

    #[test]
    fn empty_cells_become_missing() {
        let t = read_table("a,b\n1,\n,y\n").unwrap();
        assert!(t.is_missing(0, 1));
        assert!(t.is_missing(1, 0));
        assert_eq!(t.missing_stats().empty_cells, 0.5);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let t = read_table("name,v\n\"hello, world\",1\n\"say \"\"hi\"\"\",2\n").unwrap();
        match t.column(0) {
            Column::Categorical(cells) => assert_eq!(cells.len(), 2),
            _ => panic!("expected categorical"),
        }
        let text = write_table(&t);
        let back = read_table(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn ragged_row_is_an_error() {
        let err = read_table("a,b\n1,2\n3\n").unwrap_err();
        assert!(matches!(err, CsvError::RaggedRow { line: 3, .. }));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(read_table("").unwrap_err(), CsvError::Empty);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = read_table("a\n\"oops\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
    }

    #[test]
    fn roundtrip_numeric_with_missing() {
        let t = read_table("x,y\n1.5,2\n,4\n3.25,\n").unwrap();
        let text = write_table(&t);
        let back = read_table(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn crlf_line_endings_accepted() {
        let t = read_table("a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(t.n_rows(), 2);
    }
}
