//! A labelled streaming dataset: table + designated target column + task +
//! default window size + domain, mirroring the metadata the paper documents
//! per dataset (Tables 11 and 12).

use crate::schema::Task;
use crate::table::Table;
use crate::window::window_ranges;

/// Application domain of a dataset (the paper's "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    Ecology,
    Power,
    Commerce,
    Social,
    ScienceTech,
    Others,
}

impl Domain {
    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Ecology => "Ecology",
            Domain::Power => "Power",
            Domain::Commerce => "Commerce",
            Domain::Social => "Social",
            Domain::ScienceTech => "S&T",
            Domain::Others => "Others",
        }
    }
}

/// A relational data stream with its learning task.
#[derive(Debug, Clone)]
pub struct StreamDataset {
    /// Dataset name (as used in the paper's tables).
    pub name: String,
    /// Application domain.
    pub domain: Domain,
    /// Learning task.
    pub task: Task,
    /// The ordered stream data; the row order is the temporal order.
    pub table: Table,
    /// Index of the target column within `table`.
    pub target_col: usize,
    /// Default window size in rows.
    pub default_window: usize,
}

impl StreamDataset {
    /// Creates a dataset after validating the target column against the
    /// task.
    ///
    /// # Panics
    /// Panics when `target_col` is out of range, when a classification task
    /// is paired with a numeric target column holding non-integer classes is
    /// not checked (classification targets are stored as categorical or
    /// integral numeric), or when `default_window == 0`.
    pub fn new(
        name: impl Into<String>,
        domain: Domain,
        task: Task,
        table: Table,
        target_col: usize,
        default_window: usize,
    ) -> StreamDataset {
        assert!(target_col < table.n_cols(), "target column out of range");
        assert!(default_window > 0, "default window must be positive");
        StreamDataset {
            name: name.into(),
            domain,
            task,
            table,
            target_col,
            default_window,
        }
    }

    /// Number of rows in the stream.
    pub fn n_rows(&self) -> usize {
        self.table.n_rows()
    }

    /// Number of feature columns (excluding the target).
    pub fn n_features(&self) -> usize {
        self.table.n_cols() - 1
    }

    /// Indices of the feature columns (all but the target).
    pub fn feature_cols(&self) -> Vec<usize> {
        (0..self.table.n_cols())
            .filter(|&c| c != self.target_col)
            .collect()
    }

    /// The target of row `r` as a numeric value (class index for
    /// classification, value for regression). NaN when missing.
    pub fn target_at(&self, r: usize) -> f64 {
        self.table.column(self.target_col).numeric_at(r)
    }

    /// All targets as numeric values.
    pub fn targets(&self) -> Vec<f64> {
        (0..self.n_rows()).map(|r| self.target_at(r)).collect()
    }

    /// The default windowing of this stream.
    pub fn windows(&self) -> Vec<std::ops::Range<usize>> {
        window_ranges(self.n_rows(), self.default_window)
    }

    /// Windowing at a multiple of the default size.
    pub fn windows_scaled(&self, factor: f64) -> Vec<std::ops::Range<usize>> {
        let size = crate::window::scaled_window(self.default_window, factor);
        window_ranges(self.n_rows(), size)
    }

    /// A 64-bit content fingerprint covering name, task, target column,
    /// default window and the full table content (see
    /// [`Table::fingerprint`]). Equal datasets fingerprint identically;
    /// the prepared-stream cache keys on this.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        format!("{:?}", self.task).hash(&mut h);
        self.target_col.hash(&mut h);
        self.default_window.hash(&mut h);
        self.table.fingerprint().hash(&mut h);
        h.finish()
    }

    /// Returns a copy with rows permuted (used by the paper's "no drift"
    /// shuffled baseline in §6.7).
    pub fn permuted(&self, order: &[usize]) -> StreamDataset {
        StreamDataset {
            name: format!("{} (shuffled)", self.name),
            domain: self.domain,
            task: self.task,
            table: self.table.permute(order),
            target_col: self.target_col,
            default_window: self.default_window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::{Field, Schema};

    fn tiny() -> StreamDataset {
        let schema = Schema::new(vec![
            Field::numeric("f0"),
            Field::numeric("f1"),
            Field::numeric("y"),
        ]);
        let table = Table::new(
            schema,
            vec![
                Column::Numeric((0..10).map(|i| i as f64).collect()),
                Column::Numeric((0..10).map(|i| (i * 2) as f64).collect()),
                Column::Numeric((0..10).map(|i| (i % 2) as f64).collect()),
            ],
        );
        StreamDataset::new(
            "tiny",
            Domain::Others,
            Task::Classification { n_classes: 2 },
            table,
            2,
            4,
        )
    }

    #[test]
    fn feature_cols_exclude_target() {
        let d = tiny();
        assert_eq!(d.feature_cols(), vec![0, 1]);
        assert_eq!(d.n_features(), 2);
    }

    #[test]
    fn targets_extracted() {
        let d = tiny();
        assert_eq!(d.target_at(3), 1.0);
        assert_eq!(d.targets().len(), 10);
    }

    #[test]
    fn windows_use_default_size() {
        let d = tiny();
        let w = d.windows();
        // 10 rows at window 4 -> [0..4, 4..8, 8..10] (remainder >= size/2).
        assert_eq!(w.len(), 3);
        assert_eq!(w.last().unwrap().end, 10);
    }

    #[test]
    fn permuted_keeps_shape() {
        let d = tiny();
        let order: Vec<usize> = (0..10).rev().collect();
        let p = d.permuted(&order);
        assert_eq!(p.n_rows(), 10);
        assert_eq!(p.target_at(0), d.target_at(9));
    }

    #[test]
    #[should_panic(expected = "target column out of range")]
    fn bad_target_panics() {
        let d = tiny();
        let _ = StreamDataset::new("x", Domain::Others, d.task, d.table.clone(), 99, 4);
    }
}
