//! Partitioning a stream into non-overlapping windows (§2 of the paper:
//! a stream is a sequence of windows, each processed test-then-train).

/// Splits `n_rows` into consecutive non-overlapping windows of `size` rows.
///
/// The final window keeps the remainder if it holds at least `size / 2`
/// rows; otherwise the remainder is merged into the previous window so no
/// tiny trailing window skews per-window statistics. A non-empty stream
/// shorter than one window yields a single partial window `0..n_rows`,
/// never an empty list — even when `size` is near `usize::MAX` (as
/// produced by [`scaled_window`] saturating on a huge factor).
///
/// # Panics
/// Panics when `size == 0`.
pub fn window_ranges(n_rows: usize, size: usize) -> Vec<std::ops::Range<usize>> {
    assert!(size > 0, "window size must be positive");
    if n_rows == 0 {
        return Vec::new();
    }
    let mut ranges = Vec::with_capacity(n_rows / size + 1);
    let mut start = 0;
    // `n_rows - start >= size` rather than `start + size <= n_rows`:
    // the sum overflows when `size` saturated to usize::MAX.
    while n_rows - start >= size {
        ranges.push(start..start + size);
        start += size;
    }
    let remainder = n_rows - start;
    if remainder > 0 {
        if remainder * 2 >= size || ranges.is_empty() {
            ranges.push(start..n_rows);
        } else if let Some(last) = ranges.pop() {
            // Small remainder: fold it into the final full window.
            ranges.push(last.start..n_rows);
        }
    }
    ranges
}

/// Applies a multiplicative factor to a window size (the paper's §6.4.2
/// sweep multiplies the default window size by {0.25, 0.5, 1, 2, 4}),
/// keeping the result at least 1. A non-finite or non-positive factor
/// falls back to the unscaled size rather than silently collapsing to 1
/// through the NaN-as-zero cast.
pub fn scaled_window(default_size: usize, factor: f64) -> usize {
    if !factor.is_finite() || factor <= 0.0 {
        return default_size.max(1);
    }
    ((default_size as f64 * factor).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_splits_evenly() {
        let w = window_ranges(100, 25);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], 0..25);
        assert_eq!(w[3], 75..100);
    }

    #[test]
    fn large_remainder_becomes_own_window() {
        // 100 = 3 windows of 30 + remainder 10 < 15 -> merged into last.
        let w = window_ranges(100, 30);
        assert_eq!(w.len(), 3);
        assert_eq!(w[2], 60..100);
        // 110 = 3 windows of 30 + remainder 20 >= 15 -> own window.
        let w = window_ranges(110, 30);
        assert_eq!(w.len(), 4);
        assert_eq!(w[3], 90..110);
    }

    #[test]
    fn windows_partition_the_rows() {
        for n in [1usize, 7, 64, 99, 1000] {
            for size in [1usize, 3, 10, 64] {
                let w = window_ranges(n, size);
                assert_eq!(w[0].start, 0);
                assert_eq!(w.last().unwrap().end, n);
                for pair in w.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start);
                }
            }
        }
    }

    #[test]
    fn tiny_stream_single_window() {
        let w = window_ranges(3, 100);
        assert_eq!(w, vec![0..3]);
    }

    #[test]
    fn stream_smaller_than_one_window_is_one_partial_window() {
        // Satellite regression: a non-empty stream must never produce an
        // empty range list, whatever the window size — including the
        // usize::MAX that `scaled_window` saturates to on a huge factor
        // (the old `start + size <= n_rows` loop condition overflowed).
        for n in [1usize, 2, 50, 499] {
            for size in [500usize, usize::MAX / 2, usize::MAX] {
                assert_eq!(window_ranges(n, size), vec![0..n], "n={n} size={size}");
            }
        }
    }

    #[test]
    fn scaled_window_huge_factor_still_yields_one_window() {
        // scaled_window saturates, window_ranges returns the partial
        // window: the composition never loses the stream.
        let size = scaled_window(1000, 1e300);
        assert!(size >= 1000);
        assert_eq!(window_ranges(37, size), vec![0..37]);
    }

    #[test]
    fn empty_stream_no_windows() {
        assert!(window_ranges(0, 10).is_empty());
    }

    #[test]
    fn scaled_window_clamps_to_one() {
        assert_eq!(scaled_window(100, 0.25), 25);
        assert_eq!(scaled_window(100, 4.0), 400);
        assert_eq!(scaled_window(1, 0.25), 1);
    }

    #[test]
    fn scaled_window_rejects_degenerate_factors() {
        assert_eq!(scaled_window(200, f64::NAN), 200);
        assert_eq!(scaled_window(200, f64::INFINITY), 200);
        assert_eq!(scaled_window(200, -1.0), 200);
        assert_eq!(scaled_window(200, 0.0), 200);
        assert_eq!(scaled_window(0, f64::NAN), 1);
    }
}
