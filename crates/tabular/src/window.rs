//! Partitioning a stream into non-overlapping windows (§2 of the paper:
//! a stream is a sequence of windows, each processed test-then-train).

/// Splits `n_rows` into consecutive non-overlapping windows of `size` rows.
///
/// The final window keeps the remainder if it holds at least `size / 2`
/// rows; otherwise the remainder is merged into the previous window so no
/// tiny trailing window skews per-window statistics. A non-empty stream
/// shorter than one window yields a single partial window `0..n_rows`,
/// never an empty list — even when `size` is near `usize::MAX` (as
/// produced by [`scaled_window`] saturating on a huge factor).
///
/// # Panics
/// Panics when `size == 0`.
pub fn window_ranges(n_rows: usize, size: usize) -> Vec<std::ops::Range<usize>> {
    assert!(size > 0, "window size must be positive");
    if n_rows == 0 {
        return Vec::new();
    }
    let mut ranges = Vec::with_capacity(n_rows / size + 1);
    let mut start = 0;
    // `n_rows - start >= size` rather than `start + size <= n_rows`:
    // the sum overflows when `size` saturated to usize::MAX.
    while n_rows - start >= size {
        ranges.push(start..start + size);
        start += size;
    }
    let remainder = n_rows - start;
    if remainder > 0 {
        if remainder * 2 >= size || ranges.is_empty() {
            ranges.push(start..n_rows);
        } else if let Some(last) = ranges.pop() {
            // Small remainder: fold it into the final full window.
            ranges.push(last.start..n_rows);
        }
    }
    ranges
}

/// Overlapping windows of `size` rows advancing by `stride` rows.
///
/// A stream shorter than one window yields the single partial window
/// `0..n_rows`, matching [`window_ranges`]. With `stride == size` the
/// full windows coincide with the non-overlapping partition; with
/// `stride < size` consecutive windows share `size - stride` rows, which
/// is the regime the incremental statistics pipeline exploits — a slide
/// touches only `stride` entering and `stride` leaving rows.
///
/// # Panics
/// Panics when `size == 0` or `stride == 0`.
pub fn sliding_window_ranges(
    n_rows: usize,
    size: usize,
    stride: usize,
) -> Vec<std::ops::Range<usize>> {
    assert!(size > 0, "window size must be positive");
    assert!(stride > 0, "stride must be positive");
    if n_rows == 0 {
        return Vec::new();
    }
    if n_rows < size {
        return std::iter::once(0..n_rows).collect();
    }
    let mut ranges = Vec::with_capacity((n_rows - size) / stride + 1);
    let mut start = 0;
    // Overflow-safe for sizes near usize::MAX (see `window_ranges`).
    while n_rows - start >= size {
        ranges.push(start..start + size);
        match start.checked_add(stride) {
            Some(next) => start = next,
            None => break,
        }
    }
    ranges
}

/// The row deltas of one window slide: retract `leaving`, absorb
/// `entering`, and the maintained statistic now describes the next
/// window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlideDelta {
    /// Rows in the previous window but not the next.
    pub leaving: std::ops::Range<usize>,
    /// Rows in the next window but not the previous.
    pub entering: std::ops::Range<usize>,
}

impl SlideDelta {
    /// Total rows touched by this slide.
    pub fn touched(&self) -> usize {
        self.leaving.len() + self.entering.len()
    }
}

/// The delta between two windows of a forward slide.
///
/// Overlap-aware: when the windows share rows only the symmetric
/// difference is reported; disjoint windows (e.g. the non-overlapping
/// [`window_ranges`] partition) degrade gracefully to "retract all of
/// `prev`, absorb all of `next`".
///
/// # Panics
/// Panics when `next` is not a forward slide of `prev`
/// (`next.start >= prev.start && next.end >= prev.end`).
pub fn window_slide_delta(
    prev: &std::ops::Range<usize>,
    next: &std::ops::Range<usize>,
) -> SlideDelta {
    assert!(
        next.start >= prev.start && next.end >= prev.end,
        "not a forward slide: {prev:?} -> {next:?}"
    );
    SlideDelta {
        leaving: prev.start..prev.end.min(next.start),
        entering: prev.end.max(next.start)..next.end,
    }
}

/// The slide deltas that walk a maintained statistic across `ranges`.
///
/// The first element enters the whole first window from an empty
/// accumulator (`leaving` is empty); each subsequent element is
/// [`window_slide_delta`] of the consecutive pair. Driving a
/// [`DeltaStat`](crate::DeltaStat) with retract-leaving /
/// absorb-entering per element visits every window of `ranges`.
pub fn window_slide_deltas(ranges: &[std::ops::Range<usize>]) -> Vec<SlideDelta> {
    let mut deltas = Vec::with_capacity(ranges.len());
    for (i, r) in ranges.iter().enumerate() {
        if i == 0 {
            deltas.push(SlideDelta {
                leaving: 0..0,
                entering: r.clone(),
            });
        } else {
            deltas.push(window_slide_delta(&ranges[i - 1], r));
        }
    }
    deltas
}

/// Applies a multiplicative factor to a window size (the paper's §6.4.2
/// sweep multiplies the default window size by {0.25, 0.5, 1, 2, 4}),
/// keeping the result at least 1. A non-finite or non-positive factor
/// falls back to the unscaled size rather than silently collapsing to 1
/// through the NaN-as-zero cast.
pub fn scaled_window(default_size: usize, factor: f64) -> usize {
    if !factor.is_finite() || factor <= 0.0 {
        return default_size.max(1);
    }
    ((default_size as f64 * factor).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_splits_evenly() {
        let w = window_ranges(100, 25);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], 0..25);
        assert_eq!(w[3], 75..100);
    }

    #[test]
    fn large_remainder_becomes_own_window() {
        // 100 = 3 windows of 30 + remainder 10 < 15 -> merged into last.
        let w = window_ranges(100, 30);
        assert_eq!(w.len(), 3);
        assert_eq!(w[2], 60..100);
        // 110 = 3 windows of 30 + remainder 20 >= 15 -> own window.
        let w = window_ranges(110, 30);
        assert_eq!(w.len(), 4);
        assert_eq!(w[3], 90..110);
    }

    #[test]
    fn windows_partition_the_rows() {
        for n in [1usize, 7, 64, 99, 1000] {
            for size in [1usize, 3, 10, 64] {
                let w = window_ranges(n, size);
                assert_eq!(w[0].start, 0);
                assert_eq!(w.last().unwrap().end, n);
                for pair in w.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start);
                }
            }
        }
    }

    #[test]
    fn tiny_stream_single_window() {
        let w = window_ranges(3, 100);
        assert_eq!(w, vec![0..3]);
    }

    #[test]
    fn stream_smaller_than_one_window_is_one_partial_window() {
        // Satellite regression: a non-empty stream must never produce an
        // empty range list, whatever the window size — including the
        // usize::MAX that `scaled_window` saturates to on a huge factor
        // (the old `start + size <= n_rows` loop condition overflowed).
        for n in [1usize, 2, 50, 499] {
            for size in [500usize, usize::MAX / 2, usize::MAX] {
                assert_eq!(window_ranges(n, size), vec![0..n], "n={n} size={size}");
            }
        }
    }

    #[test]
    fn scaled_window_huge_factor_still_yields_one_window() {
        // scaled_window saturates, window_ranges returns the partial
        // window: the composition never loses the stream.
        let size = scaled_window(1000, 1e300);
        assert!(size >= 1000);
        assert_eq!(window_ranges(37, size), vec![0..37]);
    }

    #[test]
    fn empty_stream_no_windows() {
        assert!(window_ranges(0, 10).is_empty());
    }

    #[test]
    fn sliding_ranges_overlap_by_size_minus_stride() {
        let w = sliding_window_ranges(100, 20, 5);
        assert_eq!(w[0], 0..20);
        assert_eq!(w[1], 5..25);
        assert_eq!(w.last().unwrap(), &(80..100));
        assert_eq!(w.len(), 17);
        // stride == size reproduces the full windows of the partition.
        assert_eq!(sliding_window_ranges(100, 25, 25), window_ranges(100, 25));
    }

    #[test]
    fn sliding_ranges_short_stream_is_one_partial_window() {
        assert_eq!(sliding_window_ranges(7, 100, 3), vec![0..7]);
        assert!(sliding_window_ranges(0, 10, 2).is_empty());
        assert_eq!(sliding_window_ranges(5, usize::MAX, 1), vec![0..5]);
    }

    #[test]
    fn slide_delta_reports_symmetric_difference() {
        let d = window_slide_delta(&(0..20), &(5..25));
        assert_eq!(d.leaving, 0..5);
        assert_eq!(d.entering, 20..25);
        assert_eq!(d.touched(), 10);
        // Disjoint windows: everything leaves, everything enters.
        let d = window_slide_delta(&(0..20), &(20..40));
        assert_eq!(d.leaving, 0..20);
        assert_eq!(d.entering, 20..40);
        // Identical windows: nothing moves.
        let d = window_slide_delta(&(5..25), &(5..25));
        assert_eq!(d.touched(), 0);
    }

    #[test]
    #[should_panic(expected = "not a forward slide")]
    fn slide_delta_rejects_backward_slides() {
        window_slide_delta(&(10..30), &(0..20));
    }

    #[test]
    fn slide_deltas_walk_every_window() {
        // Replaying the deltas against a multiset of live rows must
        // reproduce each window's exact row set.
        for (size, stride) in [(20usize, 5usize), (20, 20), (16, 16), (10, 1)] {
            let ranges = sliding_window_ranges(97, size, stride);
            let deltas = window_slide_deltas(&ranges);
            assert_eq!(deltas.len(), ranges.len());
            let mut live: Vec<usize> = Vec::new();
            for (d, r) in deltas.iter().zip(&ranges) {
                live.retain(|row| !d.leaving.contains(row));
                live.extend(d.entering.clone());
                assert_eq!(live, r.clone().collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn scaled_window_clamps_to_one() {
        assert_eq!(scaled_window(100, 0.25), 25);
        assert_eq!(scaled_window(100, 4.0), 400);
        assert_eq!(scaled_window(1, 0.25), 1);
    }

    #[test]
    fn scaled_window_rejects_degenerate_factors() {
        assert_eq!(scaled_window(200, f64::NAN), 200);
        assert_eq!(scaled_window(200, f64::INFINITY), 200);
        assert_eq!(scaled_window(200, -1.0), 200);
        assert_eq!(scaled_window(200, 0.0), 200);
        assert_eq!(scaled_window(0, f64::NAN), 1);
    }
}
