//! Schema description for relational stream tables: field names, field
//! kinds, and the machine-learning task attached to a stream.

/// The kind of values a field holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldKind {
    /// Continuous numeric values (missing encoded as `f64::NAN`).
    Numeric,
    /// Categorical values drawn from a dictionary of labels.
    Categorical {
        /// Category labels; a cell stores an index into this list.
        labels: Vec<String>,
    },
}

impl FieldKind {
    /// Number of one-hot columns this field expands to.
    pub fn encoded_width(&self) -> usize {
        match self {
            FieldKind::Numeric => 1,
            FieldKind::Categorical { labels } => labels.len(),
        }
    }

    /// True for numeric fields.
    pub fn is_numeric(&self) -> bool {
        matches!(self, FieldKind::Numeric)
    }
}

/// A named field in a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name (unique within a schema).
    pub name: String,
    /// Field kind.
    pub kind: FieldKind,
}

impl Field {
    /// Creates a numeric field.
    pub fn numeric(name: impl Into<String>) -> Field {
        Field {
            name: name.into(),
            kind: FieldKind::Numeric,
        }
    }

    /// Creates a categorical field with the given labels.
    pub fn categorical(name: impl Into<String>, labels: &[&str]) -> Field {
        Field {
            name: name.into(),
            kind: FieldKind::Categorical {
                labels: labels.iter().map(|s| s.to_string()).collect(),
            },
        }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from a list of fields.
    ///
    /// # Panics
    /// Panics if two fields share a name.
    pub fn new(fields: Vec<Field>) -> Schema {
        for i in 0..fields.len() {
            for j in (i + 1)..fields.len() {
                assert_ne!(
                    fields[i].name, fields[j].name,
                    "duplicate field name {:?}",
                    fields[i].name
                );
            }
        }
        Schema { fields }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at index `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index of the field with the given name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Total width after one-hot encoding every categorical field.
    pub fn encoded_width(&self) -> usize {
        self.fields.iter().map(|f| f.kind.encoded_width()).sum()
    }
}

/// The learning task attached to a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Predict one of `n_classes` labels.
    Classification {
        /// Number of distinct classes in the stream.
        n_classes: usize,
    },
    /// Predict a continuous target.
    Regression,
}

impl Task {
    /// True for classification tasks.
    pub fn is_classification(&self) -> bool {
        matches!(self, Task::Classification { .. })
    }

    /// Number of model outputs needed: `n_classes` or 1.
    pub fn output_width(&self) -> usize {
        match self {
            Task::Classification { n_classes } => *n_classes,
            Task::Regression => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_width_counts_onehot_columns() {
        let s = Schema::new(vec![
            Field::numeric("a"),
            Field::categorical("b", &["x", "y", "z"]),
            Field::numeric("c"),
        ]);
        assert_eq!(s.encoded_width(), 5);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn index_of_finds_fields() {
        let s = Schema::new(vec![Field::numeric("a"), Field::numeric("b")]);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zzz"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_rejected() {
        let _ = Schema::new(vec![Field::numeric("a"), Field::numeric("a")]);
    }

    #[test]
    fn task_output_width() {
        assert_eq!(Task::Classification { n_classes: 4 }.output_width(), 4);
        assert_eq!(Task::Regression.output_width(), 1);
        assert!(Task::Classification { n_classes: 2 }.is_classification());
        assert!(!Task::Regression.is_classification());
    }
}
