//! Columnar storage for stream tables.
//!
//! Numeric columns use `f64::NAN` as the missing-value sentinel (the
//! idiomatic dataframe convention, and it lets math kernels operate on the
//! raw buffer). Categorical columns store `Option<u32>` dictionary indices.

/// One column of a table.
///
/// Equality treats two `NAN` cells as equal (missing == missing), so tables
/// with missing values compare naturally in tests and round-trips.
#[derive(Debug, Clone)]
pub enum Column {
    /// Numeric values; missing cells are `f64::NAN`.
    Numeric(Vec<f64>),
    /// Categorical dictionary indices; missing cells are `None`.
    Categorical(Vec<Option<u32>>),
}

impl Column {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical(v) => v.len(),
        }
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the cell at `row` is missing.
    pub fn is_missing(&self, row: usize) -> bool {
        match self {
            Column::Numeric(v) => v[row].is_nan(),
            Column::Categorical(v) => v[row].is_none(),
        }
    }

    /// Number of missing cells.
    pub fn missing_count(&self) -> usize {
        match self {
            Column::Numeric(v) => v.iter().filter(|x| x.is_nan()).count(),
            Column::Categorical(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Fraction of missing cells; `0.0` on an empty column.
    pub fn missing_ratio(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.missing_count() as f64 / self.len() as f64
        }
    }

    /// Numeric view of the cell at `row`: the value for numeric columns, the
    /// dictionary index as `f64` for categorical, `NAN` when missing.
    pub fn numeric_at(&self, row: usize) -> f64 {
        match self {
            Column::Numeric(v) => v[row],
            Column::Categorical(v) => v[row].map(|c| c as f64).unwrap_or(f64::NAN),
        }
    }

    /// The present (non-missing) numeric values of a numeric column.
    ///
    /// # Panics
    /// Panics on categorical columns.
    pub fn present_values(&self) -> Vec<f64> {
        match self {
            Column::Numeric(v) => v.iter().copied().filter(|x| !x.is_nan()).collect(),
            Column::Categorical(_) => panic!("present_values called on a categorical column"),
        }
    }

    /// Copies the cells in `range` into a new column.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(v[range].to_vec()),
            Column::Categorical(v) => Column::Categorical(v[range].to_vec()),
        }
    }

    /// Reorders cells by the given permutation of row indices.
    pub fn permute(&self, order: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(order.iter().map(|&i| v[i]).collect()),
            Column::Categorical(v) => Column::Categorical(order.iter().map(|&i| v[i]).collect()),
        }
    }

    /// True for numeric columns.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Column::Numeric(_))
    }

    /// Folds every cell into `hasher`: numeric cells by their bit pattern
    /// (so any NaN payload hashes like the canonical NaN the equality in
    /// [`PartialEq`] treats as equal), categorical cells by their
    /// dictionary index. Used for content fingerprints of cached streams.
    pub fn hash_into(&self, hasher: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        match self {
            Column::Numeric(v) => {
                0u8.hash(hasher);
                for x in v {
                    let bits = if x.is_nan() {
                        f64::NAN.to_bits()
                    } else {
                        x.to_bits()
                    };
                    bits.hash(hasher);
                }
            }
            Column::Categorical(v) => {
                1u8.hash(hasher);
                for c in v {
                    c.hash(hasher);
                }
            }
        }
    }
}

impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Column::Numeric(a), Column::Numeric(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(x, y)| x == y || (x.is_nan() && y.is_nan()))
            }
            (Column::Categorical(a), Column::Categorical(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_cells_compare_equal() {
        let a = Column::Numeric(vec![1.0, f64::NAN]);
        let b = Column::Numeric(vec![1.0, f64::NAN]);
        let c = Column::Numeric(vec![1.0, 2.0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn missing_detection_numeric() {
        let c = Column::Numeric(vec![1.0, f64::NAN, 3.0]);
        assert!(!c.is_missing(0));
        assert!(c.is_missing(1));
        assert_eq!(c.missing_count(), 1);
        assert!((c.missing_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missing_detection_categorical() {
        let c = Column::Categorical(vec![Some(0), None, Some(2), None]);
        assert_eq!(c.missing_count(), 2);
        assert_eq!(c.missing_ratio(), 0.5);
        assert!(c.numeric_at(1).is_nan());
        assert_eq!(c.numeric_at(2), 2.0);
    }

    #[test]
    fn present_values_filters_nan() {
        let c = Column::Numeric(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(c.present_values(), vec![1.0, 3.0]);
    }

    #[test]
    fn slice_and_permute() {
        let c = Column::Numeric(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.slice(1..3), Column::Numeric(vec![20.0, 30.0]));
        assert_eq!(
            c.permute(&[3, 0, 2, 1]),
            Column::Numeric(vec![40.0, 10.0, 30.0, 20.0])
        );
    }

    #[test]
    fn empty_column_ratio_is_zero() {
        let c = Column::Numeric(vec![]);
        assert_eq!(c.missing_ratio(), 0.0);
    }
}
