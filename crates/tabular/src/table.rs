//! A relational table: a schema plus columnar data, with the missing-value
//! accounting the OEBench statistics pipeline needs (§4.3 of the paper).

use crate::column::Column;
use crate::schema::{FieldKind, Schema};

/// A column-oriented relational table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

/// Missing-value statistics over a table (or one window of it), matching the
/// three ratios documented in §4.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissingStats {
    /// Ratio of data items (rows) with at least one missing cell.
    pub rows_with_missing: f64,
    /// Ratio of columns that contain at least one missing cell.
    pub missing_columns: f64,
    /// Ratio of empty cells over all cells.
    pub empty_cells: f64,
}

impl Table {
    /// Creates a table from a schema and matching columns.
    ///
    /// # Panics
    /// Panics when the column count or kinds disagree with the schema, or
    /// when columns have different lengths.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Table {
        assert_eq!(
            schema.len(),
            columns.len(),
            "schema has {} fields but {} columns supplied",
            schema.len(),
            columns.len()
        );
        let n_rows = columns.first().map(Column::len).unwrap_or(0);
        for (i, col) in columns.iter().enumerate() {
            assert_eq!(
                col.len(),
                n_rows,
                "column {i} has {} rows, expected {n_rows}",
                col.len()
            );
            let kind_matches = matches!(
                (&schema.field(i).kind, col),
                (FieldKind::Numeric, Column::Numeric(_))
                    | (FieldKind::Categorical { .. }, Column::Categorical(_))
            );
            assert!(
                kind_matches,
                "column {i} ({}) does not match its schema kind",
                schema.field(i).name
            );
        }
        Table {
            schema,
            columns,
            n_rows,
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column at index `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Mutable column at index `i`.
    pub fn column_mut(&mut self, i: usize) -> &mut Column {
        &mut self.columns[i]
    }

    /// Column by field name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Copies the rows in `range` into a new table.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Table {
        assert!(range.end <= self.n_rows, "slice out of bounds");
        let columns = self
            .columns
            .iter()
            .map(|c| c.slice(range.clone()))
            .collect();
        Table {
            schema: self.schema.clone(),
            columns,
            n_rows: range.len(),
        }
    }

    /// Reorders rows by the given permutation.
    ///
    /// # Panics
    /// Panics when `order` is not a permutation of `0..n_rows` in length.
    pub fn permute(&self, order: &[usize]) -> Table {
        assert_eq!(order.len(), self.n_rows, "permutation length mismatch");
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.permute(order)).collect(),
            n_rows: self.n_rows,
        }
    }

    /// True when the cell `(row, col)` is missing.
    pub fn is_missing(&self, row: usize, col: usize) -> bool {
        self.columns[col].is_missing(row)
    }

    /// Missing-value statistics over the whole table.
    pub fn missing_stats(&self) -> MissingStats {
        if self.n_rows == 0 || self.columns.is_empty() {
            return MissingStats {
                rows_with_missing: 0.0,
                missing_columns: 0.0,
                empty_cells: 0.0,
            };
        }
        let mut rows_with_missing = 0usize;
        for r in 0..self.n_rows {
            if self.columns.iter().any(|c| c.is_missing(r)) {
                rows_with_missing += 1;
            }
        }
        let missing_cols = self
            .columns
            .iter()
            .filter(|c| c.missing_count() > 0)
            .count();
        let empty: usize = self.columns.iter().map(Column::missing_count).sum();
        MissingStats {
            rows_with_missing: rows_with_missing as f64 / self.n_rows as f64,
            missing_columns: missing_cols as f64 / self.columns.len() as f64,
            empty_cells: empty as f64 / (self.n_rows * self.columns.len()) as f64,
        }
    }

    /// One row viewed as raw numeric values (categoricals as dictionary
    /// indices, missing as NaN). Useful for tree models and distance-based
    /// methods that work on the unencoded representation.
    pub fn numeric_row(&self, row: usize) -> Vec<f64> {
        self.columns.iter().map(|c| c.numeric_at(row)).collect()
    }

    /// A 64-bit content fingerprint over shape, schema field names/kinds
    /// and every cell. Two equal tables fingerprint identically; distinct
    /// contents collide only with hash probability. Used as a cache key
    /// component by the prepared-stream cache, where regenerating the
    /// preprocessing costs far more than one pass over the cells.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.n_rows.hash(&mut h);
        self.columns.len().hash(&mut h);
        for field in self.schema.fields() {
            field.name.hash(&mut h);
            match &field.kind {
                FieldKind::Numeric => 0u8.hash(&mut h),
                FieldKind::Categorical { labels } => {
                    1u8.hash(&mut h);
                    labels.hash(&mut h);
                }
            }
        }
        for col in &self.columns {
            col.hash_into(&mut h);
        }
        h.finish()
    }

    /// Appends all rows of `other` (same schema) to this table.
    ///
    /// # Panics
    /// Panics when schemas differ.
    pub fn append(&mut self, other: &Table) {
        assert_eq!(self.schema, other.schema, "append schema mismatch");
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            match (dst, src) {
                (Column::Numeric(d), Column::Numeric(s)) => d.extend_from_slice(s),
                (Column::Categorical(d), Column::Categorical(s)) => d.extend_from_slice(s),
                _ => unreachable!("schema equality guarantees matching kinds"),
            }
        }
        self.n_rows += other.n_rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::numeric("x"),
            Field::categorical("c", &["a", "b"]),
        ]);
        Table::new(
            schema,
            vec![
                Column::Numeric(vec![1.0, f64::NAN, 3.0, 4.0]),
                Column::Categorical(vec![Some(0), Some(1), None, Some(0)]),
            ],
        )
    }

    #[test]
    fn construction_and_shape() {
        let t = sample();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 2);
    }

    #[test]
    fn missing_stats_counts_rows_cols_cells() {
        let t = sample();
        let s = t.missing_stats();
        assert_eq!(s.rows_with_missing, 0.5); // rows 1 and 2
        assert_eq!(s.missing_columns, 1.0); // both columns have a hole
        assert_eq!(s.empty_cells, 2.0 / 8.0);
    }

    #[test]
    fn slice_preserves_schema() {
        let t = sample();
        let s = t.slice(1..3);
        assert_eq!(s.n_rows(), 2);
        assert!(s.is_missing(0, 0));
        assert!(s.is_missing(1, 1));
    }

    #[test]
    fn permute_reorders_rows() {
        let t = sample();
        let p = t.permute(&[3, 2, 1, 0]);
        assert_eq!(p.numeric_row(0), vec![4.0, 0.0]);
        assert!(p.numeric_row(3)[0] == 1.0);
    }

    #[test]
    fn append_grows_rows() {
        let mut t = sample();
        let u = sample();
        t.append(&u);
        assert_eq!(t.n_rows(), 8);
        assert_eq!(t.numeric_row(4), t.numeric_row(0));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = sample();
        let b = sample();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample();
        if let Column::Numeric(v) = c.column_mut(0) {
            v[0] = 99.0;
        }
        assert_ne!(a.fingerprint(), c.fingerprint());
        // NaN payloads don't leak into the fingerprint: tables that
        // compare equal (missing == missing) fingerprint equal.
        let mut d = sample();
        if let Column::Numeric(v) = d.column_mut(0) {
            v[1] = f64::from_bits(f64::NAN.to_bits() ^ 1);
        }
        assert_eq!(a, d);
        assert_eq!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    #[should_panic(expected = "does not match its schema kind")]
    fn kind_mismatch_panics() {
        let schema = Schema::new(vec![Field::numeric("x")]);
        let _ = Table::new(schema, vec![Column::Categorical(vec![Some(0)])]);
    }

    #[test]
    #[should_panic(expected = "rows, expected")]
    fn ragged_columns_panic() {
        let schema = Schema::new(vec![Field::numeric("x"), Field::numeric("y")]);
        let _ = Table::new(
            schema,
            vec![Column::Numeric(vec![1.0, 2.0]), Column::Numeric(vec![1.0])],
        );
    }

    #[test]
    fn numeric_row_maps_categories_to_indices() {
        let t = sample();
        assert_eq!(t.numeric_row(0), vec![1.0, 0.0]);
        assert!(t.numeric_row(1)[0].is_nan());
    }
}
