//! # oeb-tabular
//!
//! The relational data stream substrate of the OEBench reproduction:
//! schemas, columnar tables with explicit missing-value accounting,
//! window partitioning, dataset metadata, and CSV IO.
//!
//! A stream is a [`StreamDataset`]: an ordered [`Table`] (row order =
//! temporal order) plus a designated target column, learning [`Task`],
//! default window size and application [`Domain`] — exactly the metadata
//! the paper documents per dataset in its Tables 11 and 12.

pub mod column;
pub mod csv;
pub mod dataset;
pub mod delta;
pub mod mask;
pub mod schema;
pub mod table;
pub mod window;

pub use column::Column;
pub use csv::{read_table, write_table, CsvError};
pub use dataset::{Domain, StreamDataset};
pub use delta::{DeltaStat, MissingDelta};
pub use mask::FiniteMask;
pub use schema::{Field, FieldKind, Schema, Task};
pub use table::{MissingStats, Table};
pub use window::{
    scaled_window, sliding_window_ranges, window_ranges, window_slide_delta, window_slide_deltas,
    SlideDelta,
};
