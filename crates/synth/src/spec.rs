//! Declarative specification of a synthetic relational data stream.
//!
//! Each of the paper's 55 real-world datasets is described here by the
//! open-environment phenomena it exhibits (drift pattern and level, anomaly
//! level and events, missing-value regime, task, imbalance), plus the basic
//! shape metadata from the paper's Tables 11/12. The generator in
//! [`crate::generate()`] turns a spec into a concrete [`oeb_tabular::StreamDataset`].

use oeb_tabular::{Domain, Task};

/// Qualitative level of an open-environment characteristic, matching the
/// labels the paper assigns per dataset in Tables 4 and 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    Low,
    MediumLow,
    MediumHigh,
    High,
}

impl Level {
    /// A numeric intensity in `[0, 1]` used to parameterise generators.
    pub fn intensity(&self) -> f64 {
        match self {
            Level::Low => 0.08,
            Level::MediumLow => 0.3,
            Level::MediumHigh => 0.6,
            Level::High => 1.0,
        }
    }

    /// The paper's label for this level.
    pub fn label(&self) -> &'static str {
        match self {
            Level::Low => "Low",
            Level::MediumLow => "Medium low",
            Level::MediumHigh => "Medium high",
            Level::High => "High",
        }
    }
}

/// Temporal pattern of distribution drift (§2.2 of the paper: abrupt,
/// gradual, incremental and recurrent drifts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftPattern {
    /// No systematic drift.
    Stationary,
    /// Sudden regime switches at the given stream fractions.
    Abrupt {
        /// Positions of the switches as fractions of the stream in (0, 1).
        breaks: [f64; 3],
        /// How many of `breaks` are active.
        n_breaks: usize,
    },
    /// Slow monotone evolution across the stream.
    Gradual,
    /// Many small steps (a bounded random walk of the regime).
    Incremental,
    /// Periodic oscillation (seasonal), `cycles` full periods per stream.
    Recurrent {
        /// Number of full cycles over the stream (e.g. years of data).
        cycles: f64,
    },
    /// Incremental steps that periodically return to earlier regimes
    /// (the INSECTS "incremental reoccurring" protocol).
    IncrementalReoccurring {
        /// Number of reoccurrence cycles.
        cycles: f64,
    },
}

/// How classification labels relate to features (§2.2 and Table 13 of the
/// paper distinguish X→Y problems from the rarer Y→X problems).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelMechanism {
    /// Features cause labels: fixed class priors, drifting class
    /// prototypes (covariate + concept drift, no prior drift).
    XToY,
    /// Labels cause features: a class is drawn from (possibly drifting)
    /// priors and features are generated from drifting class prototypes
    /// (prior-probability drift possible).
    YToX,
}

/// Class balance of a classification stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balance {
    /// Approximately uniform class priors.
    Balanced,
    /// Geometric priors (a few dominant classes, a long tail).
    Imbalanced,
}

/// A discrete anomalous event injected into the stream, mirroring the
/// paper's case studies (§5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnomalyEvent {
    /// A short, intense spike affecting features and target
    /// (the 2012 Beijing flood).
    Spike {
        /// Centre of the event as a stream fraction.
        at: f64,
        /// Width as a stream fraction.
        width: f64,
        /// Multiplicative magnitude applied to affected values.
        magnitude: f64,
    },
    /// A sustained shifted period (the 2014–15 Beijing haze).
    Sustained {
        /// Start fraction.
        from: f64,
        /// End fraction.
        to: f64,
        /// Additive shift in feature standard deviations.
        shift: f64,
    },
    /// A single absurd corrupted cell (the precipitation value 999,990 at
    /// row 51,278 of the Beijing PM2.5 stream).
    CorruptCell {
        /// Row position as a stream fraction.
        at: f64,
        /// Feature index receiving the corrupt value.
        feature: usize,
        /// The corrupt raw value.
        value: f64,
    },
}

/// Missing-value behaviour of one feature (§5.1: incremental/decremental
/// feature spaces appear as features whose valid-value ratio jumps between
/// 0 and 1 over windows).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FeatureAvailability {
    /// Before this stream fraction the feature does not exist
    /// (incremental feature space). `0.0` = always present.
    pub appears_at: f64,
    /// Between these fractions the feature goes dark
    /// (decremental feature space / sensor breakdown). Empty when equal.
    pub dropout: (f64, f64),
    /// Probability that any individual cell is missing (MCAR noise).
    pub mcar: f64,
}

impl FeatureAvailability {
    /// Always-present feature with the given MCAR rate.
    pub fn mcar(rate: f64) -> Self {
        FeatureAvailability {
            mcar: rate,
            ..Default::default()
        }
    }

    /// True when the feature is live at stream fraction `u`.
    pub fn live_at(&self, u: f64) -> bool {
        if u < self.appears_at {
            return false;
        }
        let (a, b) = self.dropout;
        !(b > a && u >= a && u < b)
    }
}

/// Task-specific generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskSpec {
    /// Regression on a drifting linear-plus-interaction target.
    Regression {
        /// Observation noise on the target, in target standard deviations.
        noise: f64,
    },
    /// Classification into `n_classes`.
    Classification {
        /// Number of classes.
        n_classes: usize,
        /// X→Y or Y→X generation.
        mechanism: LabelMechanism,
        /// Class balance.
        balance: Balance,
        /// Label noise: fraction of labels flipped at random.
        label_noise: f64,
    },
}

impl TaskSpec {
    /// The [`oeb_tabular::Task`] this spec induces.
    pub fn task(&self) -> Task {
        match self {
            TaskSpec::Regression { .. } => Task::Regression,
            TaskSpec::Classification { n_classes, .. } => Task::Classification {
                n_classes: *n_classes,
            },
        }
    }
}

/// Complete specification of one synthetic stream.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Dataset name, matching the paper's tables.
    pub name: String,
    /// Application domain.
    pub domain: Domain,
    /// Number of rows (already scaled; the registry applies scaling).
    pub n_rows: usize,
    /// Number of numeric feature columns.
    pub n_numeric: usize,
    /// Cardinalities of categorical feature columns (empty = none).
    pub categorical: Vec<usize>,
    /// Task parameters.
    pub task: TaskSpec,
    /// Drift pattern.
    pub drift_pattern: DriftPattern,
    /// Drift magnitude level (the paper's per-dataset "Drift" label).
    pub drift_level: Level,
    /// Anomaly level (background outlier rate).
    pub anomaly_level: Level,
    /// Anomalous events.
    pub anomaly_events: Vec<AnomalyEvent>,
    /// Missing-value level (sets default MCAR when `availability` is empty).
    pub missing_level: Level,
    /// Per-feature availability overrides (len 0, or n_numeric).
    pub availability: Vec<FeatureAvailability>,
    /// Seasonal cycles over the stream (0 = no seasonality).
    pub seasonal_cycles: f64,
    /// Default window size in rows.
    pub default_window: usize,
    /// Base RNG seed; combined with the caller's seed.
    pub seed: u64,
}

impl StreamSpec {
    /// Total feature count (numeric + categorical).
    pub fn n_features(&self) -> usize {
        self.n_numeric + self.categorical.len()
    }

    /// Returns a copy scaled to approximately `factor` of the rows,
    /// keeping at least 2 windows and scaling the window size to preserve
    /// the window count.
    pub fn scaled(&self, factor: f64) -> StreamSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut s = self.clone();
        let n = ((self.n_rows as f64) * factor).round() as usize;
        let w = ((self.default_window as f64) * factor).round() as usize;
        s.n_rows = n.max(64);
        s.default_window = w.clamp(8, s.n_rows / 2);
        s
    }

    /// The MCAR rate implied by `missing_level` when no explicit
    /// availability is given.
    pub fn default_mcar(&self) -> f64 {
        match self.missing_level {
            Level::Low => 0.001,
            Level::MediumLow => 0.02,
            Level::MediumHigh => 0.08,
            Level::High => 0.18,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_intensity_is_monotone() {
        assert!(Level::Low.intensity() < Level::MediumLow.intensity());
        assert!(Level::MediumLow.intensity() < Level::MediumHigh.intensity());
        assert!(Level::MediumHigh.intensity() < Level::High.intensity());
    }

    #[test]
    fn availability_windows() {
        let a = FeatureAvailability {
            appears_at: 0.3,
            dropout: (0.6, 0.7),
            mcar: 0.0,
        };
        assert!(!a.live_at(0.1));
        assert!(a.live_at(0.4));
        assert!(!a.live_at(0.65));
        assert!(a.live_at(0.8));
    }

    #[test]
    fn scaled_preserves_window_count_roughly() {
        let spec = StreamSpec {
            name: "t".into(),
            domain: Domain::Others,
            n_rows: 10_000,
            n_numeric: 5,
            categorical: vec![],
            task: TaskSpec::Regression { noise: 0.1 },
            drift_pattern: DriftPattern::Gradual,
            drift_level: Level::High,
            anomaly_level: Level::Low,
            anomaly_events: vec![],
            missing_level: Level::Low,
            availability: vec![],
            seasonal_cycles: 0.0,
            default_window: 500,
            seed: 1,
        };
        let small = spec.scaled(0.1);
        assert_eq!(small.n_rows, 1000);
        assert_eq!(small.default_window, 50);
        let w_before = spec.n_rows / spec.default_window;
        let w_after = small.n_rows / small.default_window;
        assert_eq!(w_before, w_after);
    }

    #[test]
    fn task_spec_to_task() {
        let c = TaskSpec::Classification {
            n_classes: 6,
            mechanism: LabelMechanism::XToY,
            balance: Balance::Balanced,
            label_noise: 0.0,
        };
        assert_eq!(c.task(), Task::Classification { n_classes: 6 });
        assert_eq!(TaskSpec::Regression { noise: 0.1 }.task(), Task::Regression);
    }
}
