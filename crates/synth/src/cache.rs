//! Process-wide memoization of [`generate`](crate::generate::generate).
//!
//! Generation is deterministic per `(spec, seed)` — the generator seeds
//! its RNG from exactly those two values — so the result can be shared
//! behind an [`Arc`] by every consumer that asks for the same pair: the
//! sweep executor fanning one dataset across ten learners, `run_seeds`
//! repeating it per seed, and the `experiments/*` drivers that used to
//! call `generate` ad hoc. The cache is bounded (FIFO) so a full-registry
//! sweep cannot pin all 55 datasets in memory at once.

use crate::generate::generate;
use crate::spec::StreamSpec;
use oeb_tabular::StreamDataset;
use oeb_trace::Counter;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

// Hit/miss/evict accounting. Lookups happen under the global cache lock,
// so the counts depend only on the key sequence, not on scheduling.
static CACHE_HIT: Counter = Counter::new("synth.cache.hit");
static CACHE_MISS: Counter = Counter::new("synth.cache.miss");
static CACHE_EVICT: Counter = Counter::new("synth.cache.evict");

struct GenCache {
    map: HashMap<(String, u64), Arc<StreamDataset>>,
    order: VecDeque<(String, u64)>,
    capacity: usize,
}

static CACHE: Mutex<Option<GenCache>> = Mutex::new(None);

/// Default number of `(spec, seed)` entries kept resident.
const DEFAULT_CAPACITY: usize = 16;

fn capacity() -> usize {
    std::env::var("OEBENCH_SYNTH_CACHE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_CAPACITY)
}

/// Memoized [`generate`]: returns a shared handle to the dataset for
/// `(spec, seed)`, generating it on first request. A capacity of zero
/// (via `OEBENCH_SYNTH_CACHE=0`) disables retention — every call
/// regenerates.
///
/// The key is the spec's full `Debug` rendering plus the seed, so any
/// field change (rows, drift pattern, window, ...) is a distinct entry.
pub fn generate_cached(spec: &StreamSpec, seed: u64) -> Arc<StreamDataset> {
    let key = (format!("{spec:?}"), seed);
    let mut guard = CACHE.lock();
    let cache = guard.get_or_insert_with(|| GenCache {
        map: HashMap::new(),
        order: VecDeque::new(),
        capacity: capacity(),
    });
    if let Some(hit) = cache.map.get(&key) {
        CACHE_HIT.incr();
        return hit.clone();
    }
    CACHE_MISS.incr();
    // Generate while holding the lock: concurrent requests for the same
    // pair would otherwise duplicate the (deterministic) work, and
    // generation is cheap relative to the downstream evaluation.
    let dataset = Arc::new(generate(spec, seed));
    if cache.capacity > 0 {
        cache.map.insert(key.clone(), dataset.clone());
        cache.order.push_back(key);
        while cache.order.len() > cache.capacity {
            if let Some(evicted) = cache.order.pop_front() {
                cache.map.remove(&evicted);
                CACHE_EVICT.incr();
            }
        }
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry_scaled;

    #[test]
    fn second_call_returns_the_same_arc() {
        let entries = registry_scaled(0.02);
        let spec = &entries[0].spec;
        let a = generate_cached(spec, 7);
        let b = generate_cached(spec, 7);
        assert!(Arc::ptr_eq(&a, &b), "same (spec, seed) should share");
        let c = generate_cached(spec, 8);
        assert!(!Arc::ptr_eq(&a, &c), "different seed is a different entry");
    }

    #[test]
    fn cached_matches_direct_generation() {
        let entries = registry_scaled(0.02);
        let spec = &entries[1].spec;
        let cached = generate_cached(spec, 3);
        let direct = generate(spec, 3);
        assert_eq!(cached.fingerprint(), direct.fingerprint());
    }
}
