//! The 55-dataset registry.
//!
//! One entry per real-world dataset the paper collects (Tables 11 and 12),
//! carrying the paper's shape metadata (`paper_rows`, `paper_features`)
//! and a [`StreamSpec`] that regenerates the dataset's open-environment
//! phenomena at a tractable benchmark scale. The drift / anomaly /
//! missing-value levels are taken from the paper's Table 9 labels; drift
//! patterns follow the Table 13 visualisation audit (air quality datasets
//! are recurrent, elections abrupt, INSECTS variants follow their named
//! protocols, and so on).

use crate::spec::{
    AnomalyEvent, Balance, DriftPattern, FeatureAvailability, LabelMechanism, Level, StreamSpec,
    TaskSpec,
};
use oeb_tabular::Domain;

/// A registry entry: the paper's metadata plus the generator spec.
#[derive(Debug, Clone)]
pub struct DatasetEntry {
    /// Generator specification at benchmark scale.
    pub spec: StreamSpec,
    /// Instance count reported in the paper's Tables 11/12.
    pub paper_rows: usize,
    /// Feature count reported in the paper's Tables 11/12.
    pub paper_features: usize,
    /// `Some(short)` for the five representative datasets of Table 3
    /// (ROOM, ELECTRICITY, INSECTS, AIR, POWER).
    pub selected: Option<&'static str>,
}

impl DatasetEntry {
    /// True for classification entries.
    pub fn is_classification(&self) -> bool {
        matches!(self.spec.task, TaskSpec::Classification { .. })
    }
}

const ABRUPT1: DriftPattern = DriftPattern::Abrupt {
    breaks: [0.5, 0.0, 0.0],
    n_breaks: 1,
};
const ABRUPT3: DriftPattern = DriftPattern::Abrupt {
    breaks: [0.25, 0.5, 0.75],
    n_breaks: 3,
};

#[allow(clippy::too_many_arguments)]
fn entry(
    name: &str,
    domain: Domain,
    paper_rows: usize,
    paper_features: usize,
    bench_rows: usize,
    n_numeric: usize,
    categorical: Vec<usize>,
    task: TaskSpec,
    pattern: DriftPattern,
    drift: Level,
    anomaly: Level,
    missing: Level,
    seasonal_cycles: f64,
    window: usize,
    seed: u64,
) -> DatasetEntry {
    DatasetEntry {
        spec: StreamSpec {
            name: name.to_string(),
            domain,
            n_rows: bench_rows,
            n_numeric,
            categorical,
            task,
            drift_pattern: pattern,
            drift_level: drift,
            anomaly_level: anomaly,
            anomaly_events: Vec::new(),
            missing_level: missing,
            availability: Vec::new(),
            seasonal_cycles,
            default_window: window,
            seed,
        },
        paper_rows,
        paper_features,
        selected: None,
    }
}

fn clf(n_classes: usize, mechanism: LabelMechanism, balance: Balance) -> TaskSpec {
    TaskSpec::Classification {
        n_classes,
        mechanism,
        balance,
        label_noise: 0.03,
    }
}

fn reg() -> TaskSpec {
    TaskSpec::Regression { noise: 0.15 }
}

/// Builds the full 55-dataset registry at benchmark scale.
///
/// Entries are deterministic: each spec has a fixed seed, and the
/// generator mixes in the caller's run seed.
pub fn registry() -> Vec<DatasetEntry> {
    use Balance::*;
    use Domain::*;
    use LabelMechanism::*;
    use Level::*;

    let mut v: Vec<DatasetEntry> = Vec::with_capacity(55);

    // ---------------- Classification (Table 11) ----------------

    let mut e = entry(
        "BitcoinHeistRansomwareAddress",
        Commerce,
        2_916_697,
        6,
        48_000,
        6,
        vec![],
        clf(27, YToX, Imbalanced),
        ABRUPT1,
        High,
        High,
        Low,
        0.0,
        1_600,
        101,
    );
    e.spec.anomaly_events = vec![AnomalyEvent::Spike {
        at: 0.55,
        width: 0.01,
        magnitude: 8.0,
    }];
    v.push(e);

    let mut e = entry(
        "Room Occupancy Estimation",
        Others,
        10_129,
        16,
        10_129,
        16,
        vec![],
        clf(4, XToY, Balanced),
        DriftPattern::Incremental,
        MediumHigh,
        High,
        Low,
        18.0,
        200,
        102,
    );
    e.selected = Some("ROOM");
    v.push(e);

    let mut e = entry(
        "Electricity Prices",
        Commerce,
        45_312,
        7,
        45_312,
        7,
        vec![],
        clf(2, XToY, Balanced),
        DriftPattern::Gradual,
        MediumHigh,
        MediumHigh,
        Low,
        10.0,
        1_344,
        103,
    );
    e.selected = Some("ELECTRICITY");
    v.push(e);

    v.push(entry(
        "Airlines",
        Commerce,
        539_383,
        6,
        50_000,
        6,
        vec![],
        clf(2, XToY, Balanced),
        DriftPattern::Gradual,
        MediumLow,
        Low,
        Low,
        4.0,
        1_650,
        104,
    ));

    v.push(entry(
        "Forest Covertype",
        ScienceTech,
        581_012,
        54,
        50_000,
        10,
        vec![4, 40],
        clf(7, XToY, Imbalanced),
        DriftPattern::Incremental,
        MediumHigh,
        MediumHigh,
        Low,
        0.0,
        1_650,
        105,
    ));

    // The 11 INSECTS protocol variants (temperature-controlled drifts).
    let insects = |name: &str,
                   paper_rows: usize,
                   bench_rows: usize,
                   n_classes: usize,
                   balance: Balance,
                   pattern: DriftPattern,
                   drift: Level,
                   anomaly: Level,
                   window: usize,
                   seed: u64| {
        entry(
            name,
            ScienceTech,
            paper_rows,
            33,
            bench_rows,
            33,
            vec![],
            clf(n_classes, XToY, balance),
            pattern,
            drift,
            anomaly,
            Low,
            0.0,
            window,
            seed,
        )
    };
    v.push(insects(
        "INSECTS-Abrupt (balanced)",
        52_848,
        30_000,
        6,
        Balanced,
        ABRUPT3,
        MediumLow,
        MediumHigh,
        600,
        106,
    ));
    v.push(insects(
        "INSECTS-Abrupt (imbalanced)",
        355_275,
        45_000,
        6,
        Imbalanced,
        ABRUPT3,
        MediumLow,
        MediumHigh,
        900,
        107,
    ));
    v.push(insects(
        "INSECTS-Incremental (balanced)",
        57_018,
        30_000,
        6,
        Balanced,
        DriftPattern::Incremental,
        MediumHigh,
        MediumLow,
        600,
        108,
    ));
    v.push(insects(
        "INSECTS-Incremental (imbalanced)",
        452_044,
        45_000,
        6,
        Imbalanced,
        DriftPattern::Incremental,
        MediumLow,
        MediumHigh,
        900,
        109,
    ));
    v.push(insects(
        "INSECTS-Incremental-abrupt-reoccurring (balanced)",
        79_986,
        35_000,
        6,
        Balanced,
        DriftPattern::IncrementalReoccurring { cycles: 3.0 },
        MediumHigh,
        High,
        700,
        110,
    ));
    v.push(insects(
        "INSECTS-Incremental-abrupt-reoccurring (imbalanced)",
        452_044,
        45_000,
        6,
        Imbalanced,
        DriftPattern::IncrementalReoccurring { cycles: 3.0 },
        MediumHigh,
        MediumHigh,
        900,
        111,
    ));
    v.push(insects(
        "INSECTS-Incremental-gradual (balanced)",
        24_150,
        24_150,
        6,
        Balanced,
        DriftPattern::Gradual,
        MediumHigh,
        MediumHigh,
        500,
        112,
    ));
    v.push(insects(
        "INSECTS-Incremental-gradual (imbalanced)",
        143_323,
        40_000,
        6,
        Imbalanced,
        DriftPattern::Gradual,
        MediumHigh,
        MediumHigh,
        800,
        113,
    ));
    let mut e = insects(
        "INSECTS-Incremental-reoccurring (balanced)",
        79_986,
        35_000,
        6,
        Balanced,
        DriftPattern::IncrementalReoccurring { cycles: 2.0 },
        MediumLow,
        MediumHigh,
        700,
        114,
    );
    e.selected = Some("INSECTS");
    v.push(e);
    v.push(insects(
        "INSECTS-Incremental-reoccurring (imbalanced)",
        452_044,
        45_000,
        6,
        Imbalanced,
        DriftPattern::IncrementalReoccurring { cycles: 2.0 },
        MediumHigh,
        MediumHigh,
        900,
        115,
    ));
    v.push(insects(
        "INSECTS-Out-of-control",
        905_145,
        50_000,
        24,
        Imbalanced,
        DriftPattern::Stationary,
        Low,
        MediumHigh,
        1_000,
        116,
    ));

    v.push(entry(
        "KDDCUP99",
        ScienceTech,
        494_021,
        41,
        50_000,
        35,
        vec![3, 10, 11],
        clf(23, XToY, Imbalanced),
        DriftPattern::Abrupt {
            breaks: [0.3, 0.7, 0.0],
            n_breaks: 2,
        },
        MediumLow,
        Low,
        Low,
        0.0,
        1_650,
        117,
    ));

    v.push(entry(
        "NOAA Weather",
        Ecology,
        18_159,
        8,
        18_159,
        8,
        vec![],
        clf(2, XToY, Balanced),
        DriftPattern::Recurrent { cycles: 8.0 },
        MediumHigh,
        MediumLow,
        Low,
        8.0,
        360,
        118,
    ));

    v.push(entry(
        "Safe Driver",
        Commerce,
        595_212,
        57,
        50_000,
        40,
        vec![5, 5, 8],
        clf(2, XToY, Imbalanced),
        DriftPattern::Stationary,
        Low,
        Low,
        Low,
        0.0,
        1_650,
        119,
    ));

    v.push(entry(
        "BLE RSSI Indoor Localization",
        Others,
        9_984,
        5,
        9_984,
        5,
        vec![],
        clf(3, YToX, Balanced),
        ABRUPT3,
        MediumHigh,
        MediumHigh,
        Low,
        0.0,
        200,
        120,
    ));

    // ---------------- Regression (Table 12) ----------------

    v.push(entry(
        "Italian City Air Quality",
        Ecology,
        9_358,
        12,
        9_358,
        12,
        vec![],
        reg(),
        DriftPattern::Recurrent { cycles: 1.0 },
        High,
        MediumHigh,
        High,
        1.0,
        720,
        121,
    ));

    v.push(entry(
        "Energy Prediction",
        Power,
        19_735,
        25,
        19_735,
        25,
        vec![],
        reg(),
        DriftPattern::Incremental,
        High,
        High,
        Low,
        4.0,
        800,
        122,
    ));

    // 12 Beijing multi-site air-quality stations, all 30-day windows over
    // 4 years of hourly data (recurrent yearly drift).
    let air_site = |site: &str, drift: Level, anomaly: Level, missing: Level, seed: u64| {
        entry(
            &format!("Beijing Multi-Site Air-Quality {site}"),
            Ecology,
            35_064,
            11,
            35_064,
            11,
            vec![],
            reg(),
            DriftPattern::Recurrent { cycles: 4.0 },
            drift,
            anomaly,
            missing,
            4.0,
            720,
            seed,
        )
    };
    v.push(air_site("Aotizhongxin", MediumLow, MediumLow, Low, 123));
    v.push(air_site("Changping", MediumLow, MediumLow, Low, 124));
    v.push(air_site("Dingling", MediumLow, MediumLow, Low, 125));
    v.push(air_site("Dongsi", MediumLow, MediumHigh, Low, 126));
    v.push(air_site("Guanyuan", MediumLow, MediumLow, Low, 127));
    v.push(air_site("Gucheng", MediumLow, MediumLow, Low, 128));
    v.push(air_site("Huairou", MediumLow, MediumLow, Low, 129));
    v.push(air_site("Nongzhanguan", MediumLow, MediumLow, Low, 130));
    let mut e = air_site("Shunyi", Low, MediumLow, High, 131);
    // The AIR case study (§5.1 / Figure 4): one sensor appears mid-stream
    // (incremental feature), another drops out for a stretch (decremental).
    e.spec.availability = vec![
        FeatureAvailability {
            appears_at: 0.4,
            dropout: (0.68, 0.74),
            mcar: 0.1,
        },
        FeatureAvailability {
            appears_at: 0.0,
            dropout: (0.55, 0.62),
            mcar: 0.15,
        },
        FeatureAvailability::mcar(0.25),
        FeatureAvailability::mcar(0.2),
        FeatureAvailability::mcar(0.15),
        FeatureAvailability::mcar(0.1),
        FeatureAvailability::mcar(0.1),
        FeatureAvailability::mcar(0.08),
        FeatureAvailability::mcar(0.08),
        FeatureAvailability::mcar(0.05),
        FeatureAvailability::mcar(0.05),
    ];
    e.selected = Some("AIR");
    v.push(e);
    v.push(air_site("Tiantan", MediumLow, MediumHigh, Low, 132));
    v.push(air_site("Wanliu", MediumLow, Low, Low, 133));
    v.push(air_site("Wanshouxigong", MediumLow, MediumLow, Low, 134));

    v.push(entry(
        "Beijing PM2.5",
        Ecology,
        43_824,
        7,
        43_824,
        7,
        vec![],
        reg(),
        DriftPattern::Recurrent { cycles: 5.0 },
        MediumHigh,
        High,
        Low,
        5.0,
        720,
        135,
    ));

    // 7 Indian city weather streams: daily data over ~32 years, high
    // missing-value ratios.
    let indian = |city: &str, drift: Level, anomaly: Level, seed: u64| {
        entry(
            &format!("Indian Cities Weather {city}"),
            Ecology,
            11_894,
            5,
            11_894,
            5,
            vec![],
            reg(),
            DriftPattern::Recurrent { cycles: 32.0 },
            drift,
            anomaly,
            High,
            32.0,
            240,
            seed,
        )
    };
    v.push(indian("Bangalore", MediumLow, MediumLow, 136));
    v.push(indian("Bhubhneshwar", Low, Low, 137));
    v.push(indian("Chennai", Low, Low, 138));
    v.push(indian("Delhi", Low, Low, 139));
    v.push(indian("Lucknow", MediumLow, Low, 140));
    v.push(indian("Mumbai", Low, Low, 141));
    v.push(indian("Rajasthan", Low, MediumLow, 142));

    v.push(entry(
        "Household Electric Consumption",
        Power,
        2_075_259,
        6,
        60_000,
        6,
        vec![],
        reg(),
        DriftPattern::Recurrent { cycles: 4.0 },
        High,
        MediumHigh,
        Low,
        4.0,
        1_250,
        143,
    ));

    v.push(entry(
        "Metro Interstate Traffic Volume",
        Commerce,
        48_204,
        7,
        48_204,
        7,
        vec![],
        reg(),
        DriftPattern::Recurrent { cycles: 6.0 },
        Low,
        MediumLow,
        Low,
        6.0,
        960,
        144,
    ));

    // The five-cities PM2.5 streams; Beijing carries the §5.3 case-study
    // events (2012 flood spike at ~42% of the stream, 2014-15 haze at
    // 80-86%, and the absurd 999,990 precipitation cell at row ~51,278).
    let pm25 = |city: &str, drift: Level, anomaly: Level, seed: u64| {
        entry(
            &format!("5 cities PM2.5 ({city})"),
            Ecology,
            52_584,
            8,
            52_584,
            8,
            vec![],
            reg(),
            DriftPattern::Recurrent { cycles: 5.0 },
            drift,
            anomaly,
            High,
            5.0,
            720,
            seed,
        )
    };
    let mut e = pm25("Beijing", MediumHigh, MediumHigh, 145);
    e.spec.anomaly_events = vec![
        AnomalyEvent::Spike {
            at: 0.42,
            // ~1 day of hourly data against a 30-day window (the flood is
            // a small fraction of its window, so 3-sigma flagging sees it).
            width: 0.001,
            magnitude: 12.0,
        },
        AnomalyEvent::Sustained {
            from: 0.80,
            to: 0.86,
            shift: 4.0,
        },
        AnomalyEvent::CorruptCell {
            at: 51_278.0 / 52_584.0,
            feature: 6,
            value: 999_990.0,
        },
    ];
    // Figure 4's evolving sensors live on this stream too.
    e.spec.availability = vec![
        FeatureAvailability {
            appears_at: 0.45,
            dropout: (0.0, 0.0),
            mcar: 0.12,
        },
        FeatureAvailability {
            appears_at: 0.0,
            dropout: (0.62, 0.7),
            mcar: 0.06,
        },
        FeatureAvailability::mcar(0.18),
        FeatureAvailability::mcar(0.15),
        FeatureAvailability::mcar(0.1),
        FeatureAvailability::mcar(0.08),
        FeatureAvailability::mcar(0.05),
        FeatureAvailability::mcar(0.05),
    ];
    v.push(e);
    v.push(pm25("Chengdu", MediumHigh, High, 146));
    v.push(pm25("Guangzhou", High, MediumLow, 147));
    v.push(pm25("Shanghai", MediumHigh, MediumLow, 148));
    v.push(pm25("Shenyang", MediumHigh, High, 149));

    let mut e = entry(
        "Power Consumption of Tetouan City",
        Power,
        52_417,
        7,
        52_417,
        7,
        vec![],
        reg(),
        DriftPattern::Gradual,
        High,
        MediumLow,
        Low,
        1.0,
        2_160,
        150,
    );
    e.selected = Some("POWER");
    v.push(e);

    v.push(entry(
        "Bike Sharing Demand",
        Commerce,
        10_886,
        7,
        10_886,
        7,
        vec![],
        reg(),
        DriftPattern::Recurrent { cycles: 2.0 },
        MediumHigh,
        MediumLow,
        Low,
        2.0,
        240,
        151,
    ));

    v.push(entry(
        "Allstate Claims Severity",
        Commerce,
        188_318,
        130,
        30_000,
        20,
        vec![8, 8, 8, 8, 8, 8, 8, 8, 8, 8],
        reg(),
        DriftPattern::Stationary,
        Low,
        Low,
        Low,
        0.0,
        800,
        152,
    ));

    v.push(entry(
        "Portugal Parliamentary Election",
        Social,
        21_843,
        28,
        21_843,
        28,
        vec![],
        reg(),
        ABRUPT3,
        MediumHigh,
        MediumHigh,
        Low,
        0.0,
        440,
        153,
    ));

    v.push(entry(
        "News Popularity",
        Social,
        93_239,
        11,
        40_000,
        11,
        vec![],
        reg(),
        DriftPattern::Gradual,
        MediumLow,
        MediumLow,
        Low,
        0.0,
        800,
        154,
    ));

    v.push(entry(
        "Taxi Trip Duration",
        Commerce,
        1_458_644,
        11,
        60_000,
        11,
        vec![],
        reg(),
        DriftPattern::Recurrent { cycles: 2.0 },
        MediumHigh,
        MediumLow,
        Low,
        2.0,
        1_200,
        155,
    ));

    debug_assert_eq!(v.len(), 55);
    v
}

/// The registry scaled by `factor` (rows and windows shrink together);
/// useful for tests and smoke runs.
pub fn registry_scaled(factor: f64) -> Vec<DatasetEntry> {
    registry()
        .into_iter()
        .map(|mut e| {
            e.spec = e.spec.scaled(factor);
            e
        })
        .collect()
}

/// Looks up a registry entry by exact name.
pub fn by_name(name: &str) -> Option<DatasetEntry> {
    registry().into_iter().find(|e| e.spec.name == name)
}

/// Looks up one of the five representative datasets by its short name
/// (ROOM, ELECTRICITY, INSECTS, AIR, POWER).
pub fn selected(short: &str) -> Option<DatasetEntry> {
    registry().into_iter().find(|e| e.selected == Some(short))
}

/// The five representative datasets in the paper's Table 3/4 order.
pub fn selected_five() -> Vec<DatasetEntry> {
    ["ROOM", "ELECTRICITY", "INSECTS", "AIR", "POWER"]
        .iter()
        // oeb-lint: allow(panic-in-library) -- the registry is a compile-time constant holding all five names
        .map(|s| selected(s).expect("registry contains all five selected datasets"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_55_datasets() {
        let r = registry();
        assert_eq!(r.len(), 55);
    }

    #[test]
    fn names_are_unique() {
        let r = registry();
        for i in 0..r.len() {
            for j in (i + 1)..r.len() {
                assert_ne!(r[i].spec.name, r[j].spec.name);
            }
        }
    }

    #[test]
    fn split_is_20_classification_35_regression() {
        let r = registry();
        let clf = r.iter().filter(|e| e.is_classification()).count();
        assert_eq!(clf, 20);
        assert_eq!(r.len() - clf, 35);
    }

    #[test]
    fn paper_size_histogram_matches_table2() {
        // Table 2 of the paper: 13 / 17 / 13 / 12 datasets per size bucket.
        let r = registry();
        let bucket = |n: usize| match n {
            5_000..=20_000 => 0,
            20_001..=50_000 => 1,
            50_001..=200_000 => 2,
            _ => 3,
        };
        let mut counts = [0usize; 4];
        for e in &r {
            counts[bucket(e.paper_rows)] += 1;
        }
        assert_eq!(counts, [13, 17, 13, 12]);
    }

    #[test]
    fn five_selected_match_table3() {
        let five = selected_five();
        assert_eq!(five[0].spec.name, "Room Occupancy Estimation");
        assert_eq!(five[1].spec.name, "Electricity Prices");
        assert_eq!(
            five[2].spec.name,
            "INSECTS-Incremental-reoccurring (balanced)"
        );
        assert_eq!(five[3].spec.name, "Beijing Multi-Site Air-Quality Shunyi");
        assert_eq!(five[4].spec.name, "Power Consumption of Tetouan City");
    }

    #[test]
    fn every_entry_has_sane_windowing() {
        for e in registry() {
            let windows = e.spec.n_rows / e.spec.default_window;
            assert!(
                (5..=120).contains(&windows),
                "{}: {} windows",
                e.spec.name,
                windows
            );
        }
    }

    #[test]
    fn availability_overrides_match_feature_count() {
        for e in registry() {
            if !e.spec.availability.is_empty() {
                assert_eq!(
                    e.spec.availability.len(),
                    e.spec.n_numeric,
                    "{}",
                    e.spec.name
                );
            }
        }
    }

    #[test]
    fn scaled_registry_shrinks() {
        let small = registry_scaled(0.05);
        for e in &small {
            assert!(e.spec.n_rows <= 3_100, "{} too big", e.spec.name);
        }
        assert_eq!(small.len(), 55);
    }

    #[test]
    fn lookups_work() {
        assert!(by_name("KDDCUP99").is_some());
        assert!(by_name("nope").is_none());
        assert!(selected("AIR").is_some());
        assert!(selected("NOPE").is_none());
    }
}
