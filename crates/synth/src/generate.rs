//! Turning a [`StreamSpec`] into a concrete [`StreamDataset`].
//!
//! The generator produces the open-environment phenomena the paper
//! measures on real datasets, on a shared latent-state backbone:
//!
//! * **covariate drift** — feature means shift along a per-feature random
//!   direction as the regime curve `m(t)` evolves;
//! * **concept drift** — the feature→target weights interpolate between
//!   regimes with the same curve;
//! * **prior-probability drift** — Y→X streams drift their class priors;
//! * **seasonality** — sinusoidal components shared between features and
//!   target reproduce the recurrent drift of the air-quality datasets;
//! * **outliers** — background heavy-tailed corruption plus the discrete
//!   events of §5.3 (flood spike, haze period, the absurd corrupt cell);
//! * **incremental/decremental features** — per-feature availability
//!   windows create columns that appear, vanish, and return (§5.1).

use crate::spec::{
    AnomalyEvent, Balance, DriftPattern, FeatureAvailability, LabelMechanism, StreamSpec, TaskSpec,
};
use oeb_tabular::{Column, Field, Schema, StreamDataset, Table};
use oeb_trace::{Counter, SpanDef};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generator throughput accounting (datasets materialised, rows emitted).
static DATASETS_GENERATED: Counter = Counter::new("synth.generated.datasets");
static ROWS_GENERATED: Counter = Counter::new("synth.generated.rows");
static GENERATE_SPAN: SpanDef = SpanDef::new("synth.generate");

/// Generates the dataset described by `spec`, mixing `seed` into the
/// spec's own seed so repeated-experiment seeds (the paper repeats every
/// run three times) produce distinct but reproducible streams.
pub fn generate(spec: &StreamSpec, seed: u64) -> StreamDataset {
    let _span = GENERATE_SPAN.start();
    DATASETS_GENERATED.incr();
    ROWS_GENERATED.add(spec.n_rows as u64);
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ seed);
    let n = spec.n_rows;
    let d = spec.n_numeric;

    let regime = regime_curve(spec, n, &mut rng);

    // Latent per-feature parameters.
    let drift_mag = 2.0 * spec.drift_level.intensity();
    let base: Vec<f64> = (0..d).map(|_| normal(&mut rng) * 1.5).collect();
    let season_amp: Vec<f64> = (0..d)
        .map(|_| {
            if spec.seasonal_cycles > 0.0 {
                0.3 + rng.gen::<f64>() * 0.9
            } else {
                0.0
            }
        })
        .collect();
    let season_phase: Vec<f64> = (0..d)
        .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
        .collect();
    let drift_dir: Vec<f64> = (0..d).map(|_| normal(&mut rng)).collect();
    let noise_sigma: Vec<f64> = (0..d).map(|_| 0.15 + rng.gen::<f64>() * 0.25).collect();

    // Generate features and target according to the task mechanism.
    let mut features = vec![vec![0.0f64; n]; d];
    let mut targets = vec![0.0f64; n];

    match &spec.task {
        TaskSpec::Regression { noise } => {
            generate_x_to_y(
                spec,
                n,
                d,
                &regime,
                drift_mag,
                &base,
                &season_amp,
                &season_phase,
                &drift_dir,
                &noise_sigma,
                &mut features,
                &mut targets,
                &mut rng,
            );
            // Damp the component of the target that is linear in the
            // regime: real-world targets (power demand, PM2.5) drift by a
            // moderate fraction of their within-window variability, while
            // the raw drifting score is dominated by the regime. Removing
            // 70% of the linear-in-m trend keeps visible target drift
            // without letting it swamp the first-window scale.
            let m_mean = oeb_linalg::mean(&regime);
            let y_mean = oeb_linalg::mean(&targets);
            let mut cov = 0.0;
            let mut var_m = 0.0;
            for (y, m) in targets.iter().zip(&regime) {
                cov += (y - y_mean) * (m - m_mean);
                var_m += (m - m_mean) * (m - m_mean);
            }
            if var_m > 1e-12 {
                let beta = cov / var_m;
                for (y, m) in targets.iter_mut().zip(&regime) {
                    *y -= 0.7 * beta * (m - m_mean);
                }
            }
            // Add observation noise proportional to the remaining spread,
            // then standardise so the stream-level target scale is O(1)
            // (real targets have bounded ranges; without this a
            // first-window scaler would see absurd late-stream values and
            // every learner would diverge, which real data does not do).
            let spread = oeb_linalg::std_dev(&targets).max(1e-9);
            for t in targets.iter_mut() {
                *t += normal(&mut rng) * noise * spread;
            }
            let mean = oeb_linalg::mean(&targets);
            let std = oeb_linalg::std_dev(&targets).max(1e-9);
            for t in targets.iter_mut() {
                *t = (*t - mean) / std;
            }
        }
        TaskSpec::Classification {
            n_classes,
            mechanism,
            balance,
            label_noise,
        } => {
            let priors = class_priors(*n_classes, *balance);
            // Both mechanisms generate clustered class-conditional
            // distributions (drifting prototypes); they differ in where
            // the drift bites: X→Y streams have fixed priors (covariate +
            // concept drift only), Y→X streams additionally drift their
            // class priors (prior-probability drift, §2.2).
            let prior_drift = matches!(mechanism, LabelMechanism::YToX);
            generate_prototype_classes(
                spec,
                n,
                d,
                *n_classes,
                &priors,
                prior_drift,
                &regime,
                drift_mag,
                &season_amp,
                &season_phase,
                &noise_sigma,
                &mut features,
                &mut targets,
                &mut rng,
            );
            if *label_noise > 0.0 {
                for t in targets.iter_mut() {
                    if rng.gen::<f64>() < *label_noise {
                        *t = rng.gen_range(0..*n_classes) as f64;
                    }
                }
            }
        }
    }

    inject_background_outliers(spec, &mut features, &mut targets, &mut rng);
    inject_events(spec, &mut features, &mut targets);

    // Categorical features derived from fresh latent scores so they carry
    // their own drift signal.
    let categorical_cols = generate_categoricals(spec, n, &regime, drift_mag, &mut rng);

    apply_missing(spec, &mut features, &mut rng);

    build_dataset(spec, features, categorical_cols, targets)
}

/// Standard normal via Box-Muller.
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The regime-mix curve `m(t) in [0, 1]` encoding the drift pattern.
fn regime_curve<R: Rng>(spec: &StreamSpec, n: usize, rng: &mut R) -> Vec<f64> {
    match spec.drift_pattern {
        DriftPattern::Stationary => vec![0.0; n],
        DriftPattern::Gradual => (0..n).map(|t| t as f64 / n.max(1) as f64).collect(),
        DriftPattern::Abrupt { breaks, n_breaks } => {
            let active = &breaks[..n_breaks.min(3)];
            (0..n)
                .map(|t| {
                    let u = t as f64 / n.max(1) as f64;
                    let idx = active.iter().filter(|&&b| u >= b).count();
                    if n_breaks == 0 {
                        0.0
                    } else {
                        idx as f64 / n_breaks as f64
                    }
                })
                .collect()
        }
        DriftPattern::Incremental => {
            // Bounded random walk, min-max normalised.
            let mut walk = Vec::with_capacity(n);
            let mut state = 0.0f64;
            let step = 1.0 / (n as f64).sqrt();
            for _ in 0..n {
                state += normal(rng) * step;
                walk.push(state);
            }
            normalise_01(&mut walk);
            walk
        }
        DriftPattern::Recurrent { cycles } => (0..n)
            .map(|t| {
                let u = t as f64 / n.max(1) as f64;
                0.5 * (1.0 - (std::f64::consts::TAU * cycles * u).cos())
            })
            .collect(),
        DriftPattern::IncrementalReoccurring { cycles } => {
            let mut walk = Vec::with_capacity(n);
            let mut state = 0.0f64;
            let step = 1.0 / (n as f64).sqrt();
            for t in 0..n {
                state += normal(rng) * step;
                let u = t as f64 / n.max(1) as f64;
                walk.push(
                    state * 0.4 + 0.6 * 0.5 * (1.0 - (std::f64::consts::TAU * cycles * u).cos()),
                );
            }
            normalise_01(&mut walk);
            walk
        }
    }
}

fn normalise_01(xs: &mut [f64]) {
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    for x in xs {
        *x = (*x - lo) / span;
    }
}

/// X→Y backbone: drifting features, drifting linear-plus-interaction score
/// stored into `targets`.
#[allow(clippy::too_many_arguments)]
fn generate_x_to_y<R: Rng>(
    spec: &StreamSpec,
    n: usize,
    d: usize,
    regime: &[f64],
    drift_mag: f64,
    base: &[f64],
    season_amp: &[f64],
    season_phase: &[f64],
    drift_dir: &[f64],
    noise_sigma: &[f64],
    features: &mut [Vec<f64>],
    targets: &mut [f64],
    rng: &mut R,
) {
    let scale = 1.0 / (d as f64).sqrt();
    let w0: Vec<f64> = (0..d).map(|_| normal(rng) * scale).collect();
    let dw: Vec<f64> = (0..d).map(|_| normal(rng) * scale).collect();
    let concept_mag = 2.0 * spec.drift_level.intensity();

    // AR(1) latent smoothing per feature makes consecutive rows correlated,
    // as sensor streams are.
    let mut ar_state = vec![0.0f64; d];
    let rho = 0.9;

    for t in 0..n {
        let u = t as f64 / n.max(1) as f64;
        let m = regime[t];
        let season = std::f64::consts::TAU * spec.seasonal_cycles * u;
        let mut score = 0.0;
        for j in 0..d {
            ar_state[j] = rho * ar_state[j] + noise_sigma[j] * normal(rng);
            let x = base[j]
                + season_amp[j] * (season + season_phase[j]).sin()
                + drift_mag * drift_dir[j] * m
                + ar_state[j];
            features[j][t] = x;
            score += (w0[j] + concept_mag * m * dw[j]) * x;
        }
        // A mild interaction term so trees and NNs are both exercised.
        if d >= 2 {
            // oeb-lint: allow(panic-in-library) -- guarded by d >= 2
            score += 0.3 * (features[0][t] * features[1][t]).tanh();
        }
        targets[t] = score;
    }
}

/// Classification backbone: class drawn from (possibly drifting) priors,
/// features generated from drifting class prototypes plus a shared
/// covariate shift and seasonal component.
///
/// The prototype scale is calibrated so pairwise class separation is
/// ~2.4 noise standard deviations regardless of dimensionality — a Bayes
/// error around 10% per adjacent class pair, in line with the error
/// levels the paper reports on its real classification streams.
#[allow(clippy::too_many_arguments)]
fn generate_prototype_classes<R: Rng>(
    spec: &StreamSpec,
    n: usize,
    d: usize,
    n_classes: usize,
    priors: &[f64],
    prior_drift: bool,
    regime: &[f64],
    drift_mag: f64,
    season_amp: &[f64],
    season_phase: &[f64],
    noise_sigma: &[f64],
    features: &mut [Vec<f64>],
    targets: &mut [f64],
    rng: &mut R,
) {
    // Per-dimension noise the learner must see through.
    let noise_bar: f64 = noise_sigma.iter().sum::<f64>() / d.max(1) as f64;
    let sigma_eff = 2.0 * noise_bar;
    // Real relational streams concentrate class signal in a few
    // discriminative features (the rest are context/noise); spreading it
    // uniformly over all d dims would leave no per-feature marginal
    // signal for axis-aligned learners at realistic d. Use k informative
    // dims carrying the whole separation.
    let k_informative = (d / 4).clamp(2.min(d), d);
    // Heterogeneous feature strength, as in real relational streams: the
    // informative features carry different amounts of signal (one
    // dominant sensor, a few helpers), which is also what lets
    // greedy/Hoeffding split selection tell them apart.
    let mut strength = vec![0.0f64; d];
    {
        let mut order: Vec<usize> = (0..d).collect();
        order.shuffle(rng);
        for (rank, &j) in order.iter().take(k_informative).enumerate() {
            strength[j] = 1.5f64 / (1.0 + rank as f64) + 0.25;
        }
    }
    let total_strength_sq: f64 = strength.iter().map(|s| s * s).sum();
    // E[pairwise prototype distance] with per-dim scale s_j is
    // sqrt(2 * sum s_j^2) * proto_unit; target 2.4 effective sigmas.
    let proto_unit = 2.4 * sigma_eff / (2.0 * total_strength_sq).sqrt();

    let mut proto: Vec<Vec<f64>> = (0..n_classes)
        .map(|_| {
            (0..d)
                .map(|j| normal(rng) * proto_unit * strength[j])
                .collect()
        })
        .collect();
    // Rescale so the realised mean pairwise distance equals the target —
    // otherwise low-dimensional draws make task difficulty a lottery.
    if n_classes >= 2 {
        let mut dist_sum = 0.0;
        let mut pairs = 0.0;
        for a in 0..n_classes {
            for b in (a + 1)..n_classes {
                dist_sum += proto[a]
                    .iter()
                    .zip(&proto[b])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                pairs += 1.0;
            }
        }
        let realised = dist_sum / pairs;
        if realised > 1e-9 {
            let correction = 2.4 * sigma_eff / realised;
            for p in &mut proto {
                for v in p.iter_mut() {
                    *v *= correction;
                }
            }
        }
    }
    // Prototype drift directions at the same scale, so a High-drift
    // stream moves each class by roughly one class-separation unit.
    let dproto: Vec<Vec<f64>> = (0..n_classes)
        .map(|_| {
            (0..d)
                .map(|j| normal(rng) * proto_unit * strength[j])
                .collect()
        })
        .collect();
    // Shared covariate shift (moves all classes together, visible to the
    // data-drift detectors) — lives on every dimension.
    let shared_dir: Vec<f64> = (0..d).map(|_| normal(rng) * proto_unit).collect();

    for t in 0..n {
        let u = t as f64 / n.max(1) as f64;
        let m = regime[t];
        let c = if prior_drift {
            // Prior-probability drift: rotate the prior mass with the
            // regime.
            let mut p: Vec<f64> = priors
                .iter()
                .enumerate()
                .map(|(cls, &pr)| {
                    let wave =
                        1.0 + drift_mag * 0.4 * (m * std::f64::consts::TAU + cls as f64).sin();
                    pr * wave.max(0.05)
                })
                .collect();
            let total: f64 = p.iter().sum();
            for v in &mut p {
                *v /= total;
            }
            sample_class(&p, rng)
        } else {
            sample_class(priors, rng)
        };
        targets[t] = c as f64;
        let season = std::f64::consts::TAU * spec.seasonal_cycles * u;
        for j in 0..d {
            features[j][t] = proto[c][j]
                + drift_mag * m * (dproto[c][j] + shared_dir[j])
                + 2.0 * proto_unit * season_amp[j] * (season + season_phase[j]).sin()
                + noise_sigma[j] * 2.0 * normal(rng);
        }
    }
}

fn sample_class<R: Rng>(priors: &[f64], rng: &mut R) -> usize {
    let mut target = rng.gen::<f64>();
    for (c, &p) in priors.iter().enumerate() {
        if target <= p {
            return c;
        }
        target -= p;
    }
    priors.len() - 1
}

/// Class priors: uniform or geometric (imbalanced).
fn class_priors(n_classes: usize, balance: Balance) -> Vec<f64> {
    match balance {
        Balance::Balanced => vec![1.0 / n_classes as f64; n_classes],
        Balance::Imbalanced => {
            let raw: Vec<f64> = (0..n_classes).map(|c| 0.55f64.powi(c as i32)).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|p| p / total).collect()
        }
    }
}

/// Background heavy-tailed corruption at a rate set by the anomaly level.
fn inject_background_outliers<R: Rng>(
    spec: &StreamSpec,
    features: &mut [Vec<f64>],
    targets: &mut [f64],
    rng: &mut R,
) {
    let rate = 0.012 * spec.anomaly_level.intensity();
    if rate <= 0.0 || features.is_empty() {
        return;
    }
    let n = targets.len();
    let d = features.len();
    let is_regression = matches!(spec.task, TaskSpec::Regression { .. });
    for t in 0..n {
        if rng.gen::<f64>() >= rate {
            continue;
        }
        let hits = 1 + rng.gen_range(0..d.min(3));
        for _ in 0..hits {
            let j = rng.gen_range(0..d);
            // Real sensor glitches land a handful of sigma out (a PM2.5
            // haze reading sits ~8 sigma from the mean), not arbitrarily
            // far — the truly absurd values are modelled as discrete
            // events (CorruptCell).
            let factor = 2.5 + rng.gen::<f64>() * 2.5;
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            features[j][t] = features[j][t] * factor + sign * factor;
        }
        if is_regression && rng.gen::<f64>() < 0.5 {
            // Mild target corruption: real sensor targets are noisy, not
            // arbitrarily scaled — the violent distortions live in the
            // feature space and the discrete events.
            targets[t] *= 1.5 + rng.gen::<f64>();
        }
    }
}

/// Applies the discrete anomaly events of §5.3.
fn inject_events(spec: &StreamSpec, features: &mut [Vec<f64>], targets: &mut [f64]) {
    let n = targets.len();
    if n == 0 || features.is_empty() {
        return;
    }
    let d = features.len();
    let is_regression = matches!(spec.task, TaskSpec::Regression { .. });
    for event in &spec.anomaly_events {
        match *event {
            AnomalyEvent::Spike {
                at,
                width,
                magnitude,
            } => {
                let lo = (((at - width / 2.0).max(0.0)) * n as f64) as usize;
                let hi = (((at + width / 2.0).min(1.0)) * n as f64) as usize;
                for t in lo..hi.min(n) {
                    for feat in features.iter_mut().take((d / 2).max(1)) {
                        feat[t] = feat[t].abs() * magnitude + magnitude;
                    }
                    if is_regression {
                        targets[t] = targets[t].abs() * magnitude;
                    }
                }
            }
            AnomalyEvent::Sustained { from, to, shift } => {
                let lo = ((from.max(0.0)) * n as f64) as usize;
                let hi = ((to.min(1.0)) * n as f64) as usize;
                for t in lo..hi.min(n) {
                    for feat in features.iter_mut().take((d / 2).max(1)) {
                        feat[t] += shift;
                    }
                    if is_regression {
                        targets[t] += shift;
                    }
                }
            }
            AnomalyEvent::CorruptCell { at, feature, value } => {
                let t = ((at.clamp(0.0, 1.0)) * (n - 1) as f64) as usize;
                if feature < d {
                    features[feature][t] = value;
                }
            }
        }
    }
}

/// Derives dictionary-encoded categorical columns from latent drifting
/// scores.
fn generate_categoricals<R: Rng>(
    spec: &StreamSpec,
    n: usize,
    regime: &[f64],
    drift_mag: f64,
    rng: &mut R,
) -> Vec<(usize, Vec<Option<u32>>)> {
    spec.categorical
        .iter()
        .map(|&card| {
            let card = card.max(2);
            let dir = normal(rng);
            let mut scores: Vec<f64> = (0..n)
                .map(|t| normal(rng) + drift_mag * dir * regime[t])
                .collect();
            // Bucket into `card` equal-mass bins.
            let mut sorted = scores.clone();
            sorted.sort_by(f64::total_cmp);
            let cuts: Vec<f64> = (1..card)
                .map(|c| sorted[(c * n / card).min(n - 1)])
                .collect();
            let mcar = spec.default_mcar();
            let cells: Vec<Option<u32>> = scores
                .iter_mut()
                .map(|s| {
                    if rng.gen::<f64>() < mcar {
                        None
                    } else {
                        Some(cuts.iter().filter(|&&c| *s > c).count() as u32)
                    }
                })
                .collect();
            (card, cells)
        })
        .collect()
}

/// Applies availability windows and MCAR masking to numeric features.
fn apply_missing<R: Rng>(spec: &StreamSpec, features: &mut [Vec<f64>], rng: &mut R) {
    let n = features.first().map(|f| f.len()).unwrap_or(0);
    let default_mcar = spec.default_mcar();
    for (j, feat) in features.iter_mut().enumerate() {
        let avail = spec
            .availability
            .get(j)
            .copied()
            .unwrap_or(FeatureAvailability::mcar(default_mcar));
        for (t, x) in feat.iter_mut().enumerate() {
            let u = t as f64 / n.max(1) as f64;
            if !avail.live_at(u) || rng.gen::<f64>() < avail.mcar {
                *x = f64::NAN;
            }
        }
    }
}

/// Assembles the final table and dataset.
fn build_dataset(
    spec: &StreamSpec,
    features: Vec<Vec<f64>>,
    categoricals: Vec<(usize, Vec<Option<u32>>)>,
    targets: Vec<f64>,
) -> StreamDataset {
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (j, feat) in features.into_iter().enumerate() {
        fields.push(Field::numeric(format!("num_{j}")));
        columns.push(Column::Numeric(feat));
    }
    for (j, (card, cells)) in categoricals.into_iter().enumerate() {
        let labels: Vec<String> = (0..card).map(|c| format!("v{c}")).collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        fields.push(Field::categorical(format!("cat_{j}"), &label_refs));
        columns.push(Column::Categorical(cells));
    }
    fields.push(Field::numeric("target"));
    columns.push(Column::Numeric(targets));

    let target_col = fields.len() - 1;
    let table = Table::new(Schema::new(fields), columns);
    StreamDataset::new(
        spec.name.clone(),
        spec.domain,
        spec.task.task(),
        table,
        target_col,
        spec.default_window,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Level;
    use oeb_tabular::Domain;

    fn base_spec() -> StreamSpec {
        StreamSpec {
            name: "test".into(),
            domain: Domain::Others,
            n_rows: 2000,
            n_numeric: 6,
            categorical: vec![],
            task: TaskSpec::Regression { noise: 0.1 },
            drift_pattern: DriftPattern::Gradual,
            drift_level: Level::MediumHigh,
            anomaly_level: Level::Low,
            anomaly_events: vec![],
            missing_level: Level::Low,
            availability: vec![],
            seasonal_cycles: 0.0,
            default_window: 200,
            seed: 7,
        }
    }

    #[test]
    fn shape_matches_spec() {
        let d = generate(&base_spec(), 0);
        assert_eq!(d.n_rows(), 2000);
        assert_eq!(d.n_features(), 6);
        assert_eq!(d.target_col, 6);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&base_spec(), 3);
        let b = generate(&base_spec(), 3);
        assert_eq!(a.table, b.table);
        let c = generate(&base_spec(), 4);
        assert_ne!(a.table, c.table);
    }

    #[test]
    fn gradual_drift_shifts_feature_means() {
        let mut spec = base_spec();
        spec.drift_level = Level::High;
        let d = generate(&spec, 0);
        // Compare the first and last quarter means of each feature; at
        // least one must shift substantially.
        let n = d.n_rows();
        let mut max_shift = 0.0f64;
        for j in 0..d.n_features() {
            let col = d.table.column(j).present_values();
            let early = oeb_linalg::mean(&col[..n / 4]);
            let late = oeb_linalg::mean(&col[3 * n / 4..]);
            max_shift = max_shift.max((late - early).abs());
        }
        assert!(max_shift > 0.5, "max shift {max_shift}");
    }

    #[test]
    fn stationary_stream_has_stable_means() {
        let mut spec = base_spec();
        spec.drift_pattern = DriftPattern::Stationary;
        spec.drift_level = Level::Low;
        let d = generate(&spec, 0);
        let n = d.n_rows();
        for j in 0..d.n_features() {
            let col = d.table.column(j).present_values();
            let early = oeb_linalg::mean(&col[..n / 4]);
            let late = oeb_linalg::mean(&col[3 * n / 4..]);
            assert!(
                (late - early).abs() < 0.6,
                "feature {j} drifted in a stationary stream"
            );
        }
    }

    #[test]
    fn classification_labels_are_valid_and_balanced() {
        let mut spec = base_spec();
        spec.task = TaskSpec::Classification {
            n_classes: 4,
            mechanism: LabelMechanism::XToY,
            balance: Balance::Balanced,
            label_noise: 0.0,
        };
        let d = generate(&spec, 0);
        let mut counts = [0usize; 4];
        for t in d.targets() {
            let c = t as usize;
            assert!(t.fract() == 0.0 && c < 4, "label {t} invalid");
            counts[c] += 1;
        }
        for &c in &counts {
            assert!(c > 300, "balanced class too small: {counts:?}");
        }
    }

    #[test]
    fn imbalanced_priors_skew_labels() {
        let mut spec = base_spec();
        spec.n_rows = 4000;
        spec.task = TaskSpec::Classification {
            n_classes: 5,
            mechanism: LabelMechanism::YToX,
            balance: Balance::Imbalanced,
            label_noise: 0.0,
        };
        let d = generate(&spec, 0);
        let mut counts = [0usize; 5];
        for t in d.targets() {
            counts[t as usize] += 1;
        }
        assert!(counts[0] > counts[4] * 2, "{counts:?}");
    }

    #[test]
    fn high_missing_level_produces_missing_cells() {
        let mut spec = base_spec();
        spec.missing_level = Level::High;
        let d = generate(&spec, 0);
        let stats = d.table.missing_stats();
        assert!(stats.empty_cells > 0.1, "{stats:?}");
        // The target column stays complete.
        assert_eq!(d.table.column(d.target_col).missing_count(), 0);
    }

    #[test]
    fn availability_windows_create_feature_evolution() {
        let mut spec = base_spec();
        spec.availability = vec![
            FeatureAvailability {
                appears_at: 0.5,
                dropout: (0.0, 0.0),
                mcar: 0.0,
            };
            6
        ];
        let d = generate(&spec, 0);
        let col = match d.table.column(0) {
            Column::Numeric(v) => v,
            _ => unreachable!(),
        };
        assert!(col[..900].iter().all(|x| x.is_nan()));
        assert!(col[1100..].iter().all(|x| x.is_finite()));
    }

    #[test]
    fn corrupt_cell_event_lands() {
        let mut spec = base_spec();
        spec.anomaly_events = vec![AnomalyEvent::CorruptCell {
            at: 0.975,
            feature: 2,
            value: 999_990.0,
        }];
        let d = generate(&spec, 0);
        let col = match d.table.column(2) {
            Column::Numeric(v) => v,
            _ => unreachable!(),
        };
        assert!(col.contains(&999_990.0));
    }

    #[test]
    fn spike_event_magnifies_values() {
        let mut spec = base_spec();
        spec.anomaly_events = vec![AnomalyEvent::Spike {
            at: 0.5,
            width: 0.02,
            magnitude: 10.0,
        }];
        let d = generate(&spec, 0);
        let col = d.table.column(0).present_values();
        let peak = col[980..1020].iter().copied().fold(0.0f64, f64::max);
        let normal_max = col[..900].iter().copied().fold(0.0f64, f64::max);
        assert!(
            peak > 3.0 * normal_max.max(1.0),
            "peak {peak} vs {normal_max}"
        );
    }

    #[test]
    fn categorical_columns_generated() {
        let mut spec = base_spec();
        spec.categorical = vec![3, 5];
        let d = generate(&spec, 0);
        assert_eq!(d.n_features(), 8);
        match d.table.column(6) {
            Column::Categorical(cells) => {
                assert!(cells.iter().flatten().all(|&c| c < 3));
            }
            _ => panic!("expected categorical column"),
        }
    }

    #[test]
    fn recurrent_pattern_oscillates() {
        let mut spec = base_spec();
        // One full cycle: the regime leaves its start, peaks mid-stream,
        // and returns by the end.
        spec.drift_pattern = DriftPattern::Recurrent { cycles: 1.0 };
        spec.drift_level = Level::High;
        spec.seasonal_cycles = 0.0;
        let d = generate(&spec, 0);
        // The regime returns near its start, so first and last windows are
        // more similar than first and middle for the drifting features.
        let n = d.n_rows();
        let mut agree = 0;
        for j in 0..d.n_features() {
            let col = d.table.column(j).present_values();
            let first = oeb_linalg::mean(&col[..n / 8]);
            let mid = oeb_linalg::mean(&col[n / 2 - n / 16..n / 2 + n / 16]);
            let last = oeb_linalg::mean(&col[7 * n / 8..]);
            if (first - last).abs() < (first - mid).abs() {
                agree += 1;
            }
        }
        assert!(agree >= 3, "only {agree}/6 features show recurrence");
    }
}
