//! # oeb-synth
//!
//! Synthetic relational data streams reproducing the open-environment
//! phenomena of the 55 real-world datasets studied by the paper:
//! distribution drifts (abrupt / gradual / incremental / recurrent),
//! outliers and anomalous events, incremental/decremental feature spaces,
//! missing values, and class imbalance.
//!
//! The [`mod@registry`] module carries one entry per paper dataset (shape
//! metadata from the paper's Tables 11/12, open-environment levels from
//! Table 9, drift patterns from the Table 13 audit); [`generate()`](fn@generate) turns a
//! [`StreamSpec`] into a concrete [`oeb_tabular::StreamDataset`].

pub mod cache;
pub mod generate;
pub mod registry;
pub mod spec;

pub use cache::generate_cached;
pub use generate::generate;
pub use registry::{by_name, registry, registry_scaled, selected, selected_five, DatasetEntry};
pub use spec::{
    AnomalyEvent, Balance, DriftPattern, FeatureAvailability, LabelMechanism, Level, StreamSpec,
    TaskSpec,
};
