//! Property-based tests for the stream generator: every generated
//! dataset honours its spec (shape, task, label validity, target
//! completeness, determinism) across arbitrary spec parameters.

use oeb_synth::{
    generate, Balance, DriftPattern, FeatureAvailability, LabelMechanism, Level, StreamSpec,
    TaskSpec,
};
use oeb_tabular::Domain;
use proptest::prelude::*;

fn arb_level() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Low),
        Just(Level::MediumLow),
        Just(Level::MediumHigh),
        Just(Level::High),
    ]
}

fn arb_pattern() -> impl Strategy<Value = DriftPattern> {
    prop_oneof![
        Just(DriftPattern::Stationary),
        Just(DriftPattern::Gradual),
        Just(DriftPattern::Incremental),
        (1.0..6.0f64).prop_map(|c| DriftPattern::Recurrent { cycles: c }),
        (1.0..4.0f64).prop_map(|c| DriftPattern::IncrementalReoccurring { cycles: c }),
        (0.1..0.9f64).prop_map(|b| DriftPattern::Abrupt {
            breaks: [b, 0.0, 0.0],
            n_breaks: 1
        }),
    ]
}

fn arb_task() -> impl Strategy<Value = TaskSpec> {
    prop_oneof![
        (0.01..0.5f64).prop_map(|noise| TaskSpec::Regression { noise }),
        (2usize..6, any::<bool>(), any::<bool>()).prop_map(|(n, y2x, imb)| {
            TaskSpec::Classification {
                n_classes: n,
                mechanism: if y2x {
                    LabelMechanism::YToX
                } else {
                    LabelMechanism::XToY
                },
                balance: if imb {
                    Balance::Imbalanced
                } else {
                    Balance::Balanced
                },
                label_noise: 0.02,
            }
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = StreamSpec> {
    (
        200usize..1500,
        2usize..8,
        prop::collection::vec(2usize..5, 0..3),
        arb_task(),
        arb_pattern(),
        arb_level(),
        arb_level(),
        arb_level(),
        0u64..1000,
    )
        .prop_map(
            |(n_rows, n_numeric, categorical, task, pattern, drift, anomaly, missing, seed)| {
                StreamSpec {
                    name: "prop".into(),
                    domain: Domain::Others,
                    n_rows,
                    n_numeric,
                    categorical,
                    task,
                    drift_pattern: pattern,
                    drift_level: drift,
                    anomaly_level: anomaly,
                    anomaly_events: vec![],
                    missing_level: missing,
                    availability: vec![],
                    seasonal_cycles: 0.0,
                    default_window: (n_rows / 10).max(8),
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_shape_matches_spec(spec in arb_spec()) {
        let d = generate(&spec, 0);
        prop_assert_eq!(d.n_rows(), spec.n_rows);
        prop_assert_eq!(d.n_features(), spec.n_features());
        prop_assert_eq!(d.target_col, d.table.n_cols() - 1);
        prop_assert_eq!(d.task, spec.task.task());
    }

    #[test]
    fn targets_are_complete_and_valid(spec in arb_spec()) {
        let d = generate(&spec, 1);
        prop_assert_eq!(d.table.column(d.target_col).missing_count(), 0);
        match spec.task {
            TaskSpec::Classification { n_classes, .. } => {
                for t in d.targets() {
                    prop_assert!(t.fract() == 0.0, "non-integer label {t}");
                    prop_assert!((t as usize) < n_classes, "label {t} out of range");
                }
            }
            TaskSpec::Regression { .. } => {
                prop_assert!(d.targets().iter().all(|t| t.is_finite()));
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic(spec in arb_spec(), seed in 0u64..100) {
        let a = generate(&spec, seed);
        let b = generate(&spec, seed);
        prop_assert_eq!(a.table, b.table);
    }

    #[test]
    fn missing_levels_order_cell_ratios(spec in arb_spec()) {
        let mut low = spec.clone();
        low.missing_level = Level::Low;
        let mut high = spec;
        high.missing_level = Level::High;
        let rl = generate(&low, 0).table.missing_stats().empty_cells;
        let rh = generate(&high, 0).table.missing_stats().empty_cells;
        prop_assert!(rh >= rl, "high-missing {rh} < low-missing {rl}");
    }

    #[test]
    fn availability_windows_are_honoured(spec in arb_spec(), appears in 0.2..0.8f64) {
        let mut spec = spec;
        spec.categorical.clear();
        spec.availability = (0..spec.n_numeric)
            .map(|_| FeatureAvailability { appears_at: appears, dropout: (0.0, 0.0), mcar: 0.0 })
            .collect();
        let d = generate(&spec, 0);
        let n = d.n_rows();
        let first_live = ((appears * n as f64).ceil() as usize).min(n - 1);
        // Strictly before the activation row, every availability-governed
        // feature cell is missing.
        for r in 0..first_live.saturating_sub(1) {
            for c in 0..spec.n_numeric {
                prop_assert!(d.table.is_missing(r, c), "cell ({r},{c}) live before activation");
            }
        }
        // After activation (with mcar 0) everything is observed.
        for r in (first_live + 1)..n {
            for c in 0..spec.n_numeric {
                prop_assert!(!d.table.is_missing(r, c), "cell ({r},{c}) missing after activation");
            }
        }
    }
}
