//! Property-based tests for the outlier detectors: score sanity over
//! arbitrary data, tail monotonicity for ECOD, score bounds for IForest,
//! and the 3-sigma flagging rule.

use oeb_linalg::Matrix;
use oeb_outlier::{anomaly_ratio, flag_by_sigma, Ecod, IForestConfig, IsolationForest};
use proptest::prelude::*;

fn data_matrix() -> impl Strategy<Value = Matrix> {
    (8usize..60, 1usize..4).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(-100.0..100.0f64, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ecod_scores_are_finite_nonnegative(m in data_matrix()) {
        let model = Ecod::fit(&m);
        for s in model.score_all(&m) {
            prop_assert!(s.is_finite());
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn ecod_right_tail_monotonicity(m in data_matrix(), probe in -50.0..50.0f64) {
        // Moving a 1-D probe further right of the data's maximum can only
        // increase (never decrease) the score.
        let col = Matrix::from_vec(m.rows(), 1, m.col(0));
        let model = Ecod::fit(&col);
        let hi = m.col(0).into_iter().fold(f64::NEG_INFINITY, f64::max);
        let near = model.score(&[hi + probe.abs()]);
        let far = model.score(&[hi + probe.abs() + 100.0]);
        prop_assert!(far >= near - 1e-9, "far {far} < near {near}");
    }

    #[test]
    fn iforest_scores_in_unit_interval(m in data_matrix()) {
        let forest = IsolationForest::fit(
            &m,
            &IForestConfig { n_trees: 15, subsample: 32, seed: 3 },
        );
        for s in forest.score_all(&m) {
            prop_assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn iforest_far_point_scores_at_least_median(m in data_matrix()) {
        // Tiny samples make isolation depths noisy, so require a modest
        // sample and allow a small tolerance on the invariant.
        prop_assume!(m.rows() >= 20);
        let forest = IsolationForest::fit(
            &m,
            &IForestConfig { n_trees: 50, subsample: 64, seed: 5 },
        );
        let scores = forest.score_all(&m);
        let median = oeb_linalg::quantile(&scores, 0.5);
        let far = vec![1e5; m.cols()];
        prop_assert!(forest.score(&far) >= median - 0.05);
    }

    #[test]
    fn sigma_flags_respect_threshold_semantics(scores in prop::collection::vec(0.0..10.0f64, 1..100), k in 0.5..4.0f64) {
        let flags = flag_by_sigma(&scores, k);
        let mean = oeb_linalg::mean(&scores);
        let std = oeb_linalg::std_dev(&scores);
        for (i, &f) in flags.iter().enumerate() {
            prop_assert_eq!(f, scores[i] > mean + k * std);
        }
        let ratio = anomaly_ratio(&scores);
        prop_assert!((0.0..=1.0).contains(&ratio));
        // With 3 sigma, by Chebyshev at most 1/9 of mass can be flagged.
        prop_assert!(ratio <= 1.0 / 9.0 + 1e-9, "ratio {ratio} violates Chebyshev");
    }
}
