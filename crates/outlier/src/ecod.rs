//! ECOD — Empirical-Cumulative-distribution-based Outlier Detection,
//! Li et al., TKDE 2022.
//!
//! ECOD is parameter-free: for every dimension it estimates left- and
//! right-tail probabilities from the empirical CDF, aggregates the
//! negative log tail probabilities across dimensions (choosing the tail
//! per-dimension by the data's skewness for the "auto" variant), and
//! scores each sample by the largest of the three aggregates. Higher
//! scores mean more outlying.

use oeb_linalg::{skewness, Matrix};

/// A fitted ECOD model.
#[derive(Debug, Clone)]
pub struct Ecod {
    /// Sorted finite values per dimension (the ECDF support).
    sorted: Vec<Vec<f64>>,
    /// Per-dimension skewness of the training data.
    skew: Vec<f64>,
}

impl Ecod {
    /// Fits ECOD on a training matrix (rows = samples). Non-finite cells
    /// are ignored per-dimension.
    pub fn fit(data: &Matrix) -> Ecod {
        let d = data.cols();
        let mut sorted = Vec::with_capacity(d);
        let mut skew = Vec::with_capacity(d);
        for c in 0..d {
            let mut col: Vec<f64> = data.col(c).into_iter().filter(|x| x.is_finite()).collect();
            col.sort_by(f64::total_cmp);
            skew.push(skewness(&col));
            sorted.push(col);
        }
        Ecod { sorted, skew }
    }

    /// Assembles a fitted model from pre-sorted per-dimension samples
    /// (ascending under `total_cmp`, finite values only) — the delta
    /// pipeline's snapshot path. Skewness is derived from each sorted
    /// column exactly as [`Ecod::fit`] does.
    pub fn from_sorted_columns(sorted: Vec<Vec<f64>>) -> Ecod {
        let skew = sorted.iter().map(|col| skewness(col)).collect();
        Ecod { sorted, skew }
    }

    /// Left-tail empirical probability `P(X <= x)` with the +1 smoothing
    /// ECOD uses so probabilities never hit zero.
    fn left_tail(&self, c: usize, x: f64) -> f64 {
        let col = &self.sorted[c];
        if col.is_empty() {
            return 1.0;
        }
        let rank = col.partition_point(|&v| v <= x);
        (rank as f64 + 1.0) / (col.len() as f64 + 2.0)
    }

    /// Right-tail empirical probability `P(X >= x)`.
    fn right_tail(&self, c: usize, x: f64) -> f64 {
        let col = &self.sorted[c];
        if col.is_empty() {
            return 1.0;
        }
        let below = col.partition_point(|&v| v < x);
        let geq = col.len() - below;
        (geq as f64 + 1.0) / (col.len() as f64 + 2.0)
    }

    /// Outlier score of a single sample (higher = more outlying).
    /// Missing (non-finite) cells contribute nothing.
    pub fn score(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.sorted.len(), "dimension mismatch");
        let mut s_left = 0.0;
        let mut s_right = 0.0;
        let mut s_auto = 0.0;
        for (c, &x) in row.iter().enumerate() {
            if !x.is_finite() {
                continue;
            }
            let l = -self.left_tail(c, x).ln();
            let r = -self.right_tail(c, x).ln();
            s_left += l;
            s_right += r;
            s_auto += if self.skew[c] < 0.0 { l } else { r };
        }
        s_left.max(s_right).max(s_auto)
    }

    /// Scores every row of a matrix.
    pub fn score_all(&self, data: &Matrix) -> Vec<f64> {
        (0..data.rows()).map(|r| self.score(data.row(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data() -> Matrix {
        // Dense cluster near the origin.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let a = i as f64 * 0.03;
                vec![a.sin() * 0.5, a.cos() * 0.5]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn outlier_scores_higher_than_inliers() {
        let data = ring_data();
        let model = Ecod::fit(&data);
        let inlier = model.score(&[0.1, 0.2]);
        let outlier = model.score(&[8.0, -7.0]);
        assert!(
            outlier > inlier * 2.0,
            "outlier {outlier} vs inlier {inlier}"
        );
    }

    #[test]
    fn score_increases_with_tail_distance() {
        let data = ring_data();
        let model = Ecod::fit(&data);
        let near = model.score(&[1.0, 0.0]);
        let far = model.score(&[3.0, 0.0]);
        let very_far = model.score(&[10.0, 0.0]);
        assert!(near <= far && far <= very_far, "{near} {far} {very_far}");
    }

    #[test]
    fn both_tails_are_detected() {
        let data = ring_data();
        let model = Ecod::fit(&data);
        let base = model.score(&[0.0, 0.0]);
        assert!(model.score(&[5.0, 0.0]) > base);
        assert!(model.score(&[-5.0, 0.0]) > base);
    }

    #[test]
    fn missing_cells_are_skipped() {
        let data = ring_data();
        let model = Ecod::fit(&data);
        let s = model.score(&[f64::NAN, 0.3]);
        assert!(s.is_finite());
    }

    #[test]
    fn handles_training_data_with_nan_columns() {
        let data = Matrix::from_rows(&[
            vec![1.0, f64::NAN],
            vec![2.0, f64::NAN],
            vec![3.0, f64::NAN],
        ]);
        let model = Ecod::fit(&data);
        assert!(model.score(&[2.0, 5.0]).is_finite());
    }

    #[test]
    fn scores_are_deterministic() {
        let data = ring_data();
        let m1 = Ecod::fit(&data);
        let m2 = Ecod::fit(&data);
        assert_eq!(m1.score_all(&data), m2.score_all(&data));
    }
}
