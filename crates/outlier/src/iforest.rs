//! Isolation Forest — Liu, Ting & Zhou, ICDM 2008.
//!
//! Anomalies are isolated by fewer random axis-aligned splits than normal
//! points. Each tree is built on a random subsample; the anomaly score is
//! `2^(-E[h(x)] / c(psi))` where `h` is the path length and `c` the
//! average unsuccessful-search length of a BST.

use oeb_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A node of an isolation tree.
#[derive(Debug, Clone)]
enum Node {
    /// External node covering `size` training samples.
    Leaf { size: usize },
    /// Internal split.
    Split {
        dim: usize,
        at: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Average path length of an unsuccessful BST search over `n` items —
/// the normalising constant `c(n)` from the paper.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.577_215_664_901_532_9) - 2.0 * (n - 1.0) / n
}

/// Configuration for [`IsolationForest::fit`].
#[derive(Debug, Clone, Copy)]
pub struct IForestConfig {
    /// Number of trees (paper default 100).
    pub n_trees: usize,
    /// Subsample size per tree (paper default 256).
    pub subsample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IForestConfig {
    fn default() -> Self {
        IForestConfig {
            n_trees: 100,
            subsample: 256,
            seed: 0x69666f72, // "ifor"
        }
    }
}

/// A fitted isolation forest.
#[derive(Debug, Clone)]
pub struct IsolationForest {
    trees: Vec<Node>,
    /// Normalising constant for the subsample size used.
    c_psi: f64,
}

impl IsolationForest {
    /// Fits a forest on `data` (rows = samples). Non-finite cells compare
    /// as "right of every split", which keeps them isolatable without
    /// poisoning split selection.
    pub fn fit(data: &Matrix, config: &IForestConfig) -> IsolationForest {
        assert!(data.rows() > 0, "cannot fit on an empty matrix");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let psi = config.subsample.min(data.rows());
        let max_depth = (psi as f64).log2().ceil() as usize + 1;
        let trees = (0..config.n_trees)
            .map(|_| {
                let sample: Vec<usize> = (0..psi).map(|_| rng.gen_range(0..data.rows())).collect();
                build_tree(data, &sample, 0, max_depth, &mut rng)
            })
            .collect();
        IsolationForest {
            trees,
            c_psi: c_factor(psi),
        }
    }

    /// Path length of a sample in one tree, with the subtree-size
    /// adjustment at external nodes.
    fn path_length(node: &Node, row: &[f64]) -> f64 {
        let mut depth = 0.0;
        let mut node = node;
        loop {
            match node {
                Node::Leaf { size } => return depth + c_factor(*size),
                Node::Split {
                    dim,
                    at,
                    left,
                    right,
                } => {
                    let x = row[*dim];
                    node = if x.is_finite() && x < *at {
                        left
                    } else {
                        right
                    };
                    depth += 1.0;
                }
            }
        }
    }

    /// Anomaly score in `(0, 1)`: near 1 = anomalous, near 0.5 or below =
    /// normal.
    pub fn score(&self, row: &[f64]) -> f64 {
        if self.c_psi <= 0.0 {
            return 0.5;
        }
        let mean_path: f64 = self
            .trees
            .iter()
            .map(|t| Self::path_length(t, row))
            .sum::<f64>()
            / self.trees.len().max(1) as f64;
        2f64.powf(-mean_path / self.c_psi)
    }

    /// Scores every row of a matrix.
    pub fn score_all(&self, data: &Matrix) -> Vec<f64> {
        (0..data.rows()).map(|r| self.score(data.row(r))).collect()
    }
}

/// Index of the highest-scoring row, NaN-tolerantly: NaN scores are
/// skipped rather than compared (a NaN score means the detector saw a
/// fully degenerate row, not a record-setting outlier), and equal
/// scores break toward the last occurrence (`max_by` semantics).
/// Returns `None` when no finite score exists.
pub fn top_score_index(scores: &[f64]) -> Option<usize> {
    scores
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_nan())
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

fn build_tree(
    data: &Matrix,
    idx: &[usize],
    depth: usize,
    max_depth: usize,
    rng: &mut StdRng,
) -> Node {
    if idx.len() <= 1 || depth >= max_depth {
        return Node::Leaf { size: idx.len() };
    }
    // Pick a random dimension with spread; give up after a few attempts.
    for _ in 0..8 {
        let dim = rng.gen_range(0..data.cols());
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &r in idx {
            let x = data[(r, dim)];
            if x.is_finite() {
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
        if hi <= lo {
            continue;
        }
        let at = lo + rng.gen::<f64>() * (hi - lo);
        let (left, right): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&r| data[(r, dim)].is_finite() && data[(r, dim)] < at);
        if left.is_empty() || right.is_empty() {
            continue;
        }
        return Node::Split {
            dim,
            at,
            left: Box::new(build_tree(data, &left, depth + 1, max_depth, rng)),
            right: Box::new(build_tree(data, &right, depth + 1, max_depth, rng)),
        };
    }
    Node::Leaf { size: idx.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                let a = i as f64 * 0.021;
                vec![a.sin(), a.cos(), (a * 1.3).sin()]
            })
            .collect();
        rows.push(vec![50.0, -40.0, 60.0]);
        Matrix::from_rows(&rows)
    }

    #[test]
    fn isolated_point_scores_highest() {
        let data = cluster_with_outlier();
        let forest = IsolationForest::fit(&data, &IForestConfig::default());
        let scores = forest.score_all(&data);
        let argmax = top_score_index(&scores).expect("scores are finite");
        assert_eq!(argmax, 300, "outlier row should score highest");
        assert!(scores[300] > 0.6, "outlier score {}", scores[300]);
    }

    /// Regression: the old argmax used `partial_cmp(..).unwrap()` and
    /// panicked the moment a NaN score appeared (e.g. a fully-degenerate
    /// row under fault injection). NaN must be skipped, not fatal.
    #[test]
    fn top_score_index_tolerates_nan() {
        assert_eq!(top_score_index(&[0.2, f64::NAN, 0.9, 0.4]), Some(2));
        assert_eq!(top_score_index(&[f64::NAN, 0.1]), Some(1));
        assert_eq!(top_score_index(&[f64::NAN, f64::NAN]), None);
        assert_eq!(top_score_index(&[]), None);
    }

    #[test]
    fn normal_points_score_moderately() {
        let data = cluster_with_outlier();
        let forest = IsolationForest::fit(&data, &IForestConfig::default());
        let s = forest.score(&[0.5, 0.5, 0.5]);
        assert!(s < 0.6, "inlier score {s}");
    }

    #[test]
    fn c_factor_growth() {
        assert_eq!(c_factor(1), 0.0);
        assert!(c_factor(256) > c_factor(16));
        // c(n) ~ 2 ln(n-1) + 2*gamma - 2: spot check around n=256.
        assert!((c_factor(256) - 10.24).abs() < 0.3, "{}", c_factor(256));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = cluster_with_outlier();
        let cfg = IForestConfig {
            seed: 42,
            ..Default::default()
        };
        let f1 = IsolationForest::fit(&data, &cfg);
        let f2 = IsolationForest::fit(&data, &cfg);
        assert_eq!(f1.score_all(&data), f2.score_all(&data));
    }

    #[test]
    fn handles_nan_cells() {
        let data = cluster_with_outlier();
        let forest = IsolationForest::fit(&data, &IForestConfig::default());
        let s = forest.score(&[f64::NAN, 0.0, 0.0]);
        assert!(s.is_finite());
    }

    #[test]
    fn constant_data_scores_uniformly() {
        let data = Matrix::from_rows(&vec![vec![3.0, 3.0]; 100]);
        let forest = IsolationForest::fit(&data, &IForestConfig::default());
        let scores = forest.score_all(&data);
        let first = scores[0];
        assert!(scores.iter().all(|&s| (s - first).abs() < 1e-9));
    }
}
