//! Window-level outlier flagging.
//!
//! The paper flags a sample as an outlier when its detector score exceeds
//! three standard deviations above the window's mean score (§4.3), then
//! records the average and maximum anomaly ratios across windows.

/// Flags scores exceeding `mean + k * std` of the score vector.
pub fn flag_by_sigma(scores: &[f64], k: f64) -> Vec<bool> {
    if scores.is_empty() {
        return Vec::new();
    }
    let mean = oeb_linalg::mean(scores);
    let std = oeb_linalg::std_dev(scores);
    let threshold = mean + k * std;
    scores.iter().map(|&s| s > threshold).collect()
}

/// Fraction of flagged samples under the paper's 3-sigma rule.
pub fn anomaly_ratio(scores: &[f64]) -> f64 {
    let flags = flag_by_sigma(scores, 3.0);
    if flags.is_empty() {
        return 0.0;
    }
    flags.iter().filter(|&&f| f).count() as f64 / flags.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_only_the_extreme_scores() {
        let mut scores = vec![1.0; 100];
        scores[7] = 100.0;
        let flags = flag_by_sigma(&scores, 3.0);
        assert!(flags[7]);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
    }

    #[test]
    fn uniform_scores_flag_nothing() {
        let scores = vec![2.0; 50];
        assert!(flag_by_sigma(&scores, 3.0).iter().all(|&f| !f));
        assert_eq!(anomaly_ratio(&scores), 0.0);
    }

    #[test]
    fn ratio_counts_flags() {
        let mut scores = vec![0.0; 98];
        scores.extend([50.0, 60.0]);
        let r = anomaly_ratio(&scores);
        assert!((r - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_scores() {
        assert!(flag_by_sigma(&[], 3.0).is_empty());
        assert_eq!(anomaly_ratio(&[]), 0.0);
    }
}
