//! Incremental ECOD: the per-dimension tail ECDFs as maintained
//! multisets.
//!
//! [`Ecod::fit`](crate::Ecod::fit) re-sorts every column on every fit —
//! `O(n log n · d)` per window even when only a handful of rows changed.
//! [`EcodDelta`] keeps one [`EcdfMultiset`] per dimension and implements
//! [`DeltaStat`], so a window slide costs `O(changed · d · log u)` and
//! [`snapshot`](DeltaStat::snapshot) expands the counts into a fitted
//! [`Ecod`] model.
//!
//! ## Exactness contract
//!
//! Scores from the snapshot are **bit-identical** to a batch fit on the
//! same rows. The multiset canonicalises `-0.0` to `+0.0`, but every
//! quantity ECOD derives is invariant under that folding: the
//! `partition_point` tail ranks use IEEE `<=`/`<` (which treat the two
//! zeros as equal), and skewness of the canonicalised column matches
//! the raw column because a `-0.0` term can only flip the sign bit of
//! an exactly-zero accumulator, which cannot change any comparison or
//! non-zero downstream value.

use crate::ecod::Ecod;
use oeb_linalg::{EcdfMultiset, EcdfUniverse};
use oeb_tabular::DeltaStat;
use std::sync::Arc;

/// Maintained per-dimension ECDFs yielding fitted [`Ecod`] models.
#[derive(Debug, Clone)]
pub struct EcodDelta {
    cols: Vec<EcdfMultiset>,
}

impl EcodDelta {
    /// An empty accumulator with one value universe per dimension.
    pub fn new(universes: &[Arc<EcdfUniverse>]) -> EcodDelta {
        EcodDelta {
            cols: universes
                .iter()
                .map(|u| EcdfMultiset::new(Arc::clone(u)))
                .collect(),
        }
    }

    /// Number of dimensions tracked.
    pub fn n_dims(&self) -> usize {
        self.cols.len()
    }

    /// Rows currently absorbed into dimension `c` (non-finite cells are
    /// never stored, mirroring the batch fit's per-dimension filter).
    pub fn len_of(&self, c: usize) -> usize {
        self.cols[c].len()
    }
}

impl DeltaStat for EcodDelta {
    type Output = Ecod;

    fn absorb(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols.len(), "dimension mismatch");
        for (c, &x) in row.iter().enumerate() {
            self.cols[c].insert(x);
        }
    }

    fn retract(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols.len(), "dimension mismatch");
        for (c, &x) in row.iter().enumerate() {
            self.cols[c].remove(x);
        }
    }

    fn snapshot(&self) -> Ecod {
        Ecod::from_sorted_columns(self.cols.iter().map(|m| m.to_sorted_vec()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_linalg::Matrix;

    /// Messy deterministic rows: NaN/inf pollution, ±0.0, repeats.
    fn messy_rows(n: usize, d: usize, seed: &mut u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|k| {
                (0..d)
                    .map(|_| {
                        *seed = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        match *seed % 19 {
                            0 => f64::NAN,
                            1 => f64::INFINITY,
                            2 => -0.0,
                            3 => 0.0,
                            4 => (k % 4) as f64,
                            _ => ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn universes_of(rows: &[Vec<f64>], d: usize) -> Vec<Arc<EcdfUniverse>> {
        (0..d)
            .map(|c| {
                Arc::new(EcdfUniverse::from_values(
                    rows.iter().map(|r| r[c]).collect::<Vec<_>>(),
                ))
            })
            .collect()
    }

    #[test]
    fn snapshot_scores_match_batch_fit_bitwise() {
        let mut seed = 71u64;
        let rows = messy_rows(160, 4, &mut seed);
        let universes = universes_of(&rows, 4);
        let mut delta = EcodDelta::new(&universes);
        for r in &rows {
            delta.absorb(r);
        }
        let batch = Ecod::fit(&Matrix::from_rows(&rows));
        let snap = delta.snapshot();
        let probes = messy_rows(30, 4, &mut seed);
        for p in &probes {
            let (a, b) = (snap.score(p), batch.score(p));
            assert!(
                a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                "score {a} vs {b} for {p:?}"
            );
        }
    }

    #[test]
    fn slide_matches_fresh_fit() {
        let mut seed = 73u64;
        let rows = messy_rows(120, 3, &mut seed);
        let universes = universes_of(&rows, 3);
        let mut delta = EcodDelta::new(&universes);
        for r in &rows[0..40] {
            delta.absorb(r);
        }
        let probes = messy_rows(10, 3, &mut seed);
        for k in (0..60).step_by(12) {
            for r in &rows[k..k + 12] {
                delta.retract(r);
            }
            for r in &rows[k + 40..k + 52] {
                delta.absorb(r);
            }
            // Window is now rows[k+12 .. k+52].
            let batch = Ecod::fit(&Matrix::from_rows(&rows[k + 12..k + 52]));
            let snap = delta.snapshot();
            for p in &probes {
                let (a, b) = (snap.score(p), batch.score(p));
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "slide {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn empty_accumulator_snapshot_is_usable() {
        let universes = universes_of(&[vec![1.0, 2.0]], 2);
        let delta = EcodDelta::new(&universes);
        assert_eq!(delta.n_dims(), 2);
        assert_eq!(delta.len_of(0), 0);
        let model = delta.snapshot();
        assert!(model.score(&[1.0, 2.0]).is_finite());
    }
}
