//! # oeb-outlier
//!
//! The two outlier detectors the paper selects from ADBench (§4.3):
//! [`ecod::Ecod`] (empirical-CDF tail probabilities, parameter-free) and
//! [`iforest::IsolationForest`] (random-split isolation trees), plus the
//! paper's 3-sigma window-level flagging rule in [`flag`].

pub mod delta;
pub mod ecod;
pub mod flag;
pub mod iforest;

pub use delta::EcodDelta;
pub use ecod::Ecod;
pub use flag::{anomaly_ratio, flag_by_sigma};
pub use iforest::{top_score_index, IForestConfig, IsolationForest};
