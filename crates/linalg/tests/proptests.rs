//! Property-based tests for the linear-algebra kernels: algebraic
//! identities that must hold for arbitrary well-formed inputs.

use oeb_linalg::{
    five_number, hellinger, kernels, kl_divergence, ks_p_value, ks_statistic, quantile,
    ridge_regression, solve, symmetric_eigen, Histogram, Matrix, Pca,
};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    prop_oneof![-100.0..100.0f64, -1.0..1.0f64]
}

/// Values for the bit-identity suites: mixes exact zeros in so the
/// GEMM sparsity skip is exercised, not just the dense path.
fn kernel_f64() -> impl Strategy<Value = f64> {
    prop_oneof![3 => -100.0..100.0f64, 1 => Just(0.0), 1 => Just(-0.0)]
}

/// GEMM shapes biased towards the awkward cases: empty products,
/// scalars, and tall/skinny panels that straddle the register blocks.
fn gemm_shape() -> impl Strategy<Value = (usize, usize, usize)> {
    prop_oneof![
        // Degenerate: any dimension may be zero.
        (0..3usize, 0..3usize, 0..3usize),
        // 1x1 and other tiny products.
        (1..3usize, 1..3usize, 1..3usize),
        // Tall/skinny: long k against narrow m/n.
        (1..4usize, 30..70usize, 1..4usize),
        // Wide outputs crossing the 4-wide register tile edge.
        (1..10usize, 1..10usize, 1..14usize),
        // General small blocks.
        (1..12usize, 1..12usize, 1..12usize),
    ]
}

fn gemm_operands() -> impl Strategy<Value = (Matrix, Matrix)> {
    gemm_shape().prop_flat_map(|(m, k, n)| {
        (
            prop::collection::vec(kernel_f64(), m * k),
            prop::collection::vec(kernel_f64(), k * n),
        )
            .prop_map(move |(a, b)| (Matrix::from_vec(m, k, a), Matrix::from_vec(k, n, b)))
    })
}

fn assert_bits_eq(lhs: &Matrix, rhs: &Matrix) {
    prop_assert_eq!(lhs.shape(), rhs.shape());
    for (i, (x, y)) in lhs.as_slice().iter().zip(rhs.as_slice()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "element {} differs: {} vs {}",
            i,
            x,
            y
        );
    }
}

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(small_f64(), r * c).prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(m in matrix(1..8, 1..8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_neutral(m in matrix(1..8, 1..8)) {
        let id = Matrix::identity(m.cols());
        let prod = m.matmul(&id);
        for (a, b) in prod.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(1..6, 1..6), b_data in prop::collection::vec(small_f64(), 36)) {
        // (A B)^T == B^T A^T for compatible shapes.
        let b = Matrix::from_vec(a.cols(), 6usize.min(36 / a.cols().max(1)).max(1),
            b_data[..a.cols() * 6usize.min(36 / a.cols().max(1)).max(1)].to_vec());
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn covariance_is_symmetric_psd_diagonal(m in matrix(2..20, 1..6)) {
        let cov = m.covariance();
        for i in 0..cov.rows() {
            prop_assert!(cov[(i, i)] >= -1e-9, "negative variance on diagonal");
            for j in 0..cov.cols() {
                prop_assert!((cov[(i, j)] - cov[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eigen_preserves_trace_and_orthonormality(m in matrix(2..6, 2..6)) {
        // Symmetrise the random matrix first.
        let mt = m.transpose();
        let mut sym = Matrix::zeros(m.rows().min(m.cols()), m.rows().min(m.cols()));
        let n = sym.rows();
        for i in 0..n {
            for j in 0..n {
                sym[(i, j)] = (m[(i, j)] + mt[(i, j)]) / 2.0;
            }
        }
        let e = symmetric_eigen(&sym);
        let trace: f64 = (0..n).map(|i| sym[(i, i)]).sum();
        let eig_sum: f64 = e.values.iter().sum();
        prop_assert!((trace - eig_sum).abs() < 1e-6 * (1.0 + trace.abs()));
        for i in 0..n {
            let v = e.vectors.col(i);
            let norm: f64 = v.iter().map(|x| x * x).sum();
            prop_assert!((norm - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn pca_projection_is_centred(m in matrix(3..20, 2..6)) {
        let pca = Pca::fit(&m, 2);
        let proj = pca.transform(&m);
        for mean in proj.col_means() {
            prop_assert!(mean.abs() < 1e-6);
        }
        // Explained ratios are a sub-distribution.
        let total: f64 = pca.explained_ratio.iter().sum();
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&total));
    }

    #[test]
    fn solve_inverts_products(v in prop::collection::vec(-10.0..10.0f64, 2..5)) {
        // Build a well-conditioned SPD matrix A = B^T B + I and check
        // solve(A, A x) == x.
        let n = v.len();
        let b = Matrix::from_vec(n, n, (0..n * n).map(|i| ((i * 37 + 11) % 19) as f64 / 19.0).collect());
        let mut a = b.transpose().matmul(&b);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let rhs = a.matvec(&v);
        let x = solve(&a, &rhs).expect("SPD + I is nonsingular");
        for (xi, vi) in x.iter().zip(&v) {
            prop_assert!((xi - vi).abs() < 1e-6);
        }
    }

    #[test]
    fn ridge_residual_is_orthogonalish(ys in prop::collection::vec(-10.0..10.0f64, 8..20)) {
        let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64, 1.0]).collect();
        let x = Matrix::from_rows(&rows);
        let w = ridge_regression(&x, &ys, 1e-9).expect("regularised");
        // The fitted line minimises MSE: perturbing w must not help.
        let mse = |w0: f64, w1: f64| -> f64 {
            ys.iter()
                .enumerate()
                .map(|(i, y)| (w0 * i as f64 + w1 - y).powi(2))
                .sum()
        };
        let base = mse(w[0], w[1]);
        prop_assert!(base <= mse(w[0] + 0.1, w[1]) + 1e-6);
        prop_assert!(base <= mse(w[0], w[1] + 0.1) + 1e-6);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(xs in prop::collection::vec(-1000.0..1000.0f64, 1..50)) {
        let f = five_number(&xs);
        prop_assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(f.min, lo);
        prop_assert_eq!(f.max, hi);
        prop_assert!(quantile(&xs, 0.5) >= lo && quantile(&xs, 0.5) <= hi);
    }

    #[test]
    fn histogram_mass_conserved(xs in prop::collection::vec(-50.0..50.0f64, 1..100)) {
        let h = Histogram::from_data(&xs, 10);
        prop_assert_eq!(h.total, xs.len());
        let p = h.probabilities();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hellinger_bounds_and_symmetry(
        p in prop::collection::vec(0.0..1.0f64, 5),
        q in prop::collection::vec(0.0..1.0f64, 5),
    ) {
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum::<f64>().max(1e-12);
            v.iter().map(|x| x / s).collect()
        };
        let (p, q) = (norm(&p), norm(&q));
        let d = hellinger(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
        prop_assert!((d - hellinger(&q, &p)).abs() < 1e-12);
        prop_assert!(hellinger(&p, &p) < 1e-9);
    }

    #[test]
    fn kl_is_nonnegative(
        p in prop::collection::vec(0.0..1.0f64, 6),
        q in prop::collection::vec(0.0..1.0f64, 6),
    ) {
        prop_assert!(kl_divergence(&p, &q) >= -1e-9);
    }

    #[test]
    fn ks_statistic_bounds_and_identity(xs in prop::collection::vec(-10.0..10.0f64, 2..40)) {
        prop_assert!(ks_statistic(&xs, &xs) < 1e-12);
        let shifted: Vec<f64> = xs.iter().map(|x| x + 100.0).collect();
        let d = ks_statistic(&xs, &shifted);
        prop_assert!((d - 1.0).abs() < 1e-12);
        prop_assert!(ks_p_value(d, xs.len(), xs.len()) <= 1.0);
    }
}

// Bit-identity suites for the compute kernels: the blocked GEMM and the
// unrolled slice kernels must reproduce the scalar reference *bitwise*,
// not just within a tolerance — reordering within one output element's
// k-accumulation would silently change rounding and break the
// reproducibility guarantees downstream (sweep determinism, golden
// artifacts).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn blocked_gemm_is_bit_identical_to_scalar((a, b) in gemm_operands()) {
        let mut scalar = Matrix::zeros(a.rows(), b.cols());
        let mut blocked = Matrix::zeros(a.rows(), b.cols());
        kernels::matmul_scalar_into(&a, &b, &mut scalar);
        // Call the blocked path directly: the dispatcher would route
        // these small shapes to the scalar kernel, and the whole point
        // is to exercise panel packing and tile edges on them.
        kernels::matmul_blocked_into(&a, &b, &mut blocked);
        assert_bits_eq(&scalar, &blocked);
    }

    #[test]
    fn dispatching_matmul_matches_operator((a, b) in gemm_operands()) {
        let via_operator = a.matmul(&b);
        let mut via_into = Matrix::zeros(a.rows(), b.cols());
        kernels::matmul_into(&a, &b, &mut via_into);
        assert_bits_eq(&via_operator, &via_into);
    }

    #[test]
    fn dot_is_bit_identical_to_sum_chain(
        pair in prop::collection::vec((kernel_f64(), kernel_f64()), 0..40)
    ) {
        let xs: Vec<f64> = pair.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pair.iter().map(|p| p.1).collect();
        let naive: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        prop_assert_eq!(kernels::dot(&xs, &ys).to_bits(), naive.to_bits());
        // Seeded variant must match an accumulator loop started at init.
        let mut seeded = 7.25;
        for (x, y) in xs.iter().zip(&ys) {
            seeded += x * y;
        }
        prop_assert_eq!(kernels::dot_from(7.25, &xs, &ys).to_bits(), seeded.to_bits());
    }

    #[test]
    fn axpy_is_bit_identical_to_scalar_loop(
        a in kernel_f64(),
        pair in prop::collection::vec((kernel_f64(), kernel_f64()), 0..40)
    ) {
        let xs: Vec<f64> = pair.iter().map(|p| p.0).collect();
        let mut ys: Vec<f64> = pair.iter().map(|p| p.1).collect();
        let mut naive = ys.clone();
        for (yi, x) in naive.iter_mut().zip(&xs) {
            *yi += a * x;
        }
        kernels::axpy(a, &xs, &mut ys);
        for (x, y) in ys.iter().zip(&naive) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn scale_add_is_bit_identical_to_scalar_loop(
        s in kernel_f64(),
        pair in prop::collection::vec((kernel_f64(), kernel_f64()), 0..40)
    ) {
        let xs: Vec<f64> = pair.iter().map(|p| p.0).collect();
        let mut ys: Vec<f64> = pair.iter().map(|p| p.1).collect();
        let mut naive = ys.clone();
        for (yi, x) in naive.iter_mut().zip(&xs) {
            *yi = s * *yi + x;
        }
        kernels::scale_add(s, &xs, &mut ys);
        for (x, y) in ys.iter().zip(&naive) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sum_and_sq_dist_are_bit_identical_to_iterator_chains(
        pair in prop::collection::vec((kernel_f64(), kernel_f64()), 0..40)
    ) {
        let xs: Vec<f64> = pair.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pair.iter().map(|p| p.1).collect();
        let naive_sum: f64 = xs.iter().sum();
        prop_assert_eq!(kernels::sum(&xs).to_bits(), naive_sum.to_bits());
        let naive_dist: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        prop_assert_eq!(kernels::sq_dist(&xs, &ys).to_bits(), naive_dist.to_bits());
    }

    #[test]
    fn matmul_is_bit_identical_across_four_threads((a, b) in gemm_operands()) {
        let mut sequential = Matrix::zeros(a.rows(), b.cols());
        kernels::matmul_into(&a, &b, &mut sequential);
        let results: Vec<Matrix> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Matrix::zeros(a.rows(), b.cols());
                        kernels::matmul_into(&a, &b, &mut out);
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in &results {
            assert_bits_eq(&sequential, out);
        }
    }
}
