//! Property-based tests for the linear-algebra kernels: algebraic
//! identities that must hold for arbitrary well-formed inputs.

use oeb_linalg::{
    five_number, hellinger, kl_divergence, ks_p_value, ks_statistic, quantile, ridge_regression,
    solve, symmetric_eigen, Histogram, Matrix, Pca,
};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    prop_oneof![-100.0..100.0f64, -1.0..1.0f64]
}

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(small_f64(), r * c).prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(m in matrix(1..8, 1..8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_neutral(m in matrix(1..8, 1..8)) {
        let id = Matrix::identity(m.cols());
        let prod = m.matmul(&id);
        for (a, b) in prod.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(1..6, 1..6), b_data in prop::collection::vec(small_f64(), 36)) {
        // (A B)^T == B^T A^T for compatible shapes.
        let b = Matrix::from_vec(a.cols(), 6usize.min(36 / a.cols().max(1)).max(1),
            b_data[..a.cols() * 6usize.min(36 / a.cols().max(1)).max(1)].to_vec());
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn covariance_is_symmetric_psd_diagonal(m in matrix(2..20, 1..6)) {
        let cov = m.covariance();
        for i in 0..cov.rows() {
            prop_assert!(cov[(i, i)] >= -1e-9, "negative variance on diagonal");
            for j in 0..cov.cols() {
                prop_assert!((cov[(i, j)] - cov[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eigen_preserves_trace_and_orthonormality(m in matrix(2..6, 2..6)) {
        // Symmetrise the random matrix first.
        let mt = m.transpose();
        let mut sym = Matrix::zeros(m.rows().min(m.cols()), m.rows().min(m.cols()));
        let n = sym.rows();
        for i in 0..n {
            for j in 0..n {
                sym[(i, j)] = (m[(i, j)] + mt[(i, j)]) / 2.0;
            }
        }
        let e = symmetric_eigen(&sym);
        let trace: f64 = (0..n).map(|i| sym[(i, i)]).sum();
        let eig_sum: f64 = e.values.iter().sum();
        prop_assert!((trace - eig_sum).abs() < 1e-6 * (1.0 + trace.abs()));
        for i in 0..n {
            let v = e.vectors.col(i);
            let norm: f64 = v.iter().map(|x| x * x).sum();
            prop_assert!((norm - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn pca_projection_is_centred(m in matrix(3..20, 2..6)) {
        let pca = Pca::fit(&m, 2);
        let proj = pca.transform(&m);
        for mean in proj.col_means() {
            prop_assert!(mean.abs() < 1e-6);
        }
        // Explained ratios are a sub-distribution.
        let total: f64 = pca.explained_ratio.iter().sum();
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&total));
    }

    #[test]
    fn solve_inverts_products(v in prop::collection::vec(-10.0..10.0f64, 2..5)) {
        // Build a well-conditioned SPD matrix A = B^T B + I and check
        // solve(A, A x) == x.
        let n = v.len();
        let b = Matrix::from_vec(n, n, (0..n * n).map(|i| ((i * 37 + 11) % 19) as f64 / 19.0).collect());
        let mut a = b.transpose().matmul(&b);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let rhs = a.matvec(&v);
        let x = solve(&a, &rhs).expect("SPD + I is nonsingular");
        for (xi, vi) in x.iter().zip(&v) {
            prop_assert!((xi - vi).abs() < 1e-6);
        }
    }

    #[test]
    fn ridge_residual_is_orthogonalish(ys in prop::collection::vec(-10.0..10.0f64, 8..20)) {
        let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64, 1.0]).collect();
        let x = Matrix::from_rows(&rows);
        let w = ridge_regression(&x, &ys, 1e-9).expect("regularised");
        // The fitted line minimises MSE: perturbing w must not help.
        let mse = |w0: f64, w1: f64| -> f64 {
            ys.iter()
                .enumerate()
                .map(|(i, y)| (w0 * i as f64 + w1 - y).powi(2))
                .sum()
        };
        let base = mse(w[0], w[1]);
        prop_assert!(base <= mse(w[0] + 0.1, w[1]) + 1e-6);
        prop_assert!(base <= mse(w[0], w[1] + 0.1) + 1e-6);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(xs in prop::collection::vec(-1000.0..1000.0f64, 1..50)) {
        let f = five_number(&xs);
        prop_assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(f.min, lo);
        prop_assert_eq!(f.max, hi);
        prop_assert!(quantile(&xs, 0.5) >= lo && quantile(&xs, 0.5) <= hi);
    }

    #[test]
    fn histogram_mass_conserved(xs in prop::collection::vec(-50.0..50.0f64, 1..100)) {
        let h = Histogram::from_data(&xs, 10);
        prop_assert_eq!(h.total, xs.len());
        let p = h.probabilities();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hellinger_bounds_and_symmetry(
        p in prop::collection::vec(0.0..1.0f64, 5),
        q in prop::collection::vec(0.0..1.0f64, 5),
    ) {
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum::<f64>().max(1e-12);
            v.iter().map(|x| x / s).collect()
        };
        let (p, q) = (norm(&p), norm(&q));
        let d = hellinger(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
        prop_assert!((d - hellinger(&q, &p)).abs() < 1e-12);
        prop_assert!(hellinger(&p, &p) < 1e-9);
    }

    #[test]
    fn kl_is_nonnegative(
        p in prop::collection::vec(0.0..1.0f64, 6),
        q in prop::collection::vec(0.0..1.0f64, 6),
    ) {
        prop_assert!(kl_divergence(&p, &q) >= -1e-9);
    }

    #[test]
    fn ks_statistic_bounds_and_identity(xs in prop::collection::vec(-10.0..10.0f64, 2..40)) {
        prop_assert!(ks_statistic(&xs, &xs) < 1e-12);
        let shifted: Vec<f64> = xs.iter().map(|x| x + 100.0).collect();
        let d = ks_statistic(&xs, &shifted);
        prop_assert!((d - 1.0).abs() < 1e-12);
        prop_assert!(ks_p_value(d, xs.len(), xs.len()) <= 1.0);
    }
}
