//! Dense linear system solving via Gaussian elimination with partial
//! pivoting, plus a ridge-regression least-squares helper used by the
//! regression imputer and the PERM concept-drift probe.

use crate::kernels;
use crate::matrix::Matrix;

/// Solves `a * x = b` for square `a` using Gaussian elimination with
/// partial pivoting. Returns `None` when the system is singular (pivot
/// below 1e-12).
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "solve requires a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = a.rows();
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = m[(col, col)].abs();
        for r in (col + 1)..n {
            let v = m[(r, col)].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if pivot != col {
            let (a_row, b_row) = m.rows_pair_mut(col, pivot);
            a_row.swap_with_slice(b_row);
            rhs.swap(col, pivot);
        }
        // Eliminate below. `y -= f * x` is `y += (-f) * x` bit-for-bit
        // (negation is exact), so the fused axpy kernel preserves the
        // historical update chain.
        let diag = m[(col, col)];
        for r in (col + 1)..n {
            let factor = m[(r, col)] / diag;
            // oeb-lint: allow(float-eq) -- exact-zero skip: elimination is a no-op only at 0.0
            if factor == 0.0 {
                continue;
            }
            let (prow, trow) = m.rows_pair_mut(col, r);
            kernels::axpy(-factor, &prow[col..], &mut trow[col..]);
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution: the sequential subtraction chain from rhs[col].
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let s = kernels::dot_sub_from(rhs[col], &m.row(col)[col + 1..], &x[col + 1..]);
        x[col] = s / m[(col, col)];
    }
    Some(x)
}

/// Ridge least squares: finds `w` minimising `||X w - y||^2 + lambda ||w||^2`
/// via the normal equations. `X` has one sample per row; an intercept column
/// is *not* added automatically.
///
/// Returns `None` only if the regularised system is singular, which cannot
/// happen for `lambda > 0`.
pub fn ridge_regression(x: &Matrix, y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    assert_eq!(x.rows(), y.len(), "sample count mismatch");
    let xt = x.transpose();
    let mut gram = xt.matmul(x);
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    let xty = xt.matvec(y);
    solve(&gram, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ridge_recovers_linear_coefficients() {
        // y = 3a - 2b, plenty of samples, tiny lambda.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let w = ridge_regression(&x, &y, 1e-9).unwrap();
        assert!((w[0] - 3.0).abs() < 1e-6);
        assert!((w[1] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let small = ridge_regression(&x, &y, 1e-9).unwrap()[0];
        let big = ridge_regression(&x, &y, 1e6).unwrap()[0];
        assert!(big.abs() < small.abs());
    }
}
