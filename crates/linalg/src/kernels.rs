//! Compute kernels: a register-blocked GEMM with packed B panels and
//! fused slice primitives (`dot` / `axpy` / `scale_add`), all
//! **bit-identical** to the naive scalar loops they replace.
//!
//! Bit-identity is the load-bearing invariant of this module. Every
//! output element's floating-point accumulation happens in exactly the
//! same order as the scalar reference: blocking reorders *which*
//! elements are computed when, never the k-order within one element,
//! and the fused slice kernels unroll with a **single** accumulator so
//! the addition chain is unchanged. The determinism proptests and every
//! golden artifact therefore see the same bits at 2-4x the throughput.
//!
//! The GEMM follows the classic Goto blocking scheme scaled down to
//! this crate's needs:
//!
//! * B is packed into `KC x NC` row-major panels so the microkernel
//!   streams contiguous memory regardless of B's width;
//! * the microkernel holds an `MR x NR` tile of output accumulators in
//!   registers across the whole k-block, turning the scalar path's
//!   per-k load/store of the output row into register traffic;
//! * k-blocks resume from the partially accumulated output value, so
//!   splitting k preserves the sequential addition chain.
//!
//! The scalar reference's exact-zero skip (`a == 0.0` contributes
//! nothing) is *observable* under IEEE-754 only against non-finite B
//! values (`0.0 * inf = NaN`); panels that pack any non-finite value
//! therefore take a guarded tile that replicates the skip exactly,
//! while all-finite panels take a branch-free tile whose dropped skip
//! is provably a bitwise no-op (see [`micro_block`] — the accumulator
//! chain can never hold `-0.0`, so adding `±0.0` never changes bits).

use crate::matrix::Matrix;
use oeb_trace::Counter;

/// Dispatch accounting: which GEMM path each `matmul_into` call took.
/// Purely shape-driven, so the counts are schedule-invariant.
static DISPATCH_SCALAR: Counter = Counter::new("gemm.dispatch.scalar");
static DISPATCH_BLOCKED: Counter = Counter::new("gemm.dispatch.blocked");
static MATVEC_CALLS: Counter = Counter::new("gemm.matvec.calls");

/// Rows of A per register tile.
const MR: usize = 4;
/// Columns of B per register tile (two 256-bit vectors of f64).
const NR: usize = 8;
/// Columns of B packed per panel (one cache-resident stripe).
const NC: usize = 128;
/// Depth of one packed panel; bounds panel memory to `KC * NC * 8` bytes.
const KC: usize = 256;
/// Problem sizes below this many multiply-adds stay on the scalar path,
/// where panel packing would cost more than it saves.
const BLOCKED_MIN_MULADDS: usize = 16 * 16 * 16;

// ---------------------------------------------------------------------
// Fused slice kernels.

/// Dot product with a 4-wide unrolled single-accumulator loop.
///
/// Operates over the common prefix when lengths differ (the same
/// truncation the naive `zip` loop performed).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    // -0.0 is the identity `iter::Sum<f64>` folds from (it preserves the
    // sign of a -0.0 first term, +0.0 does not), so starting there keeps
    // this bit-identical to the historical `.zip().map().sum()` chain.
    dot_from(-0.0, a, b)
}

/// `init + sum_i a[i] * b[i]`, accumulated left to right from `init`.
///
/// The explicit starting value lets callers fuse a bias or prior sum
/// into the chain without changing the addition order (`z = b; z += ...`
/// is *not* the same chain as `b + dot(..)`).
#[inline]
pub fn dot_from(init: f64, a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = init;
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (qa, qb) in (&mut ca).zip(&mut cb) {
        // chunks_exact(4) only yields 4-element slices, so the patterns
        // always match; destructuring keeps the unroll index-free.
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (qa, qb) {
            acc += x0 * y0;
            acc += x1 * y1;
            acc += x2 * y2;
            acc += x3 * y3;
        }
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// `init - sum_i a[i] * b[i]`, subtracted left to right from `init`
/// (the back-substitution chain of a triangular solve).
#[inline]
pub fn dot_sub_from(init: f64, a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = init;
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (qa, qb) in (&mut ca).zip(&mut cb) {
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (qa, qb) {
            acc -= x0 * y0;
            acc -= x1 * y1;
            acc -= x2 * y2;
            acc -= x3 * y3;
        }
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc -= x * y;
    }
    acc
}

/// Squared Euclidean distance, 4-wide unrolled single accumulator.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    // -0.0 start: see `dot` (bit-identity with the `.sum()` reference).
    let mut acc = -0.0;
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (qa, qb) in (&mut ca).zip(&mut cb) {
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (qa, qb) {
            let d0 = x0 - y0;
            acc += d0 * d0;
            let d1 = x1 - y1;
            acc += d1 * d1;
            let d2 = x2 - y2;
            acc += d2 * d2;
            let d3 = x3 - y3;
            acc += d3 * d3;
        }
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// `y[i] += a * x[i]` over the common prefix, 4-wide unrolled.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &mut y[..n]);
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact_mut(4);
    for (qx, qy) in (&mut cx).zip(&mut cy) {
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (qx, qy) {
            *y0 += a * x0;
            *y1 += a * x1;
            *y2 += a * x2;
            *y3 += a * x3;
        }
    }
    for (xv, yv) in cx.remainder().iter().zip(cy.into_remainder()) {
        *yv += a * xv;
    }
}

/// `y[i] += x[i]` over the common prefix.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    let n = x.len().min(y.len());
    for (yv, xv) in y[..n].iter_mut().zip(&x[..n]) {
        *yv += xv;
    }
}

/// `y[i] -= x[i]` over the common prefix.
#[inline]
pub fn sub_assign(y: &mut [f64], x: &[f64]) {
    let n = x.len().min(y.len());
    for (yv, xv) in y[..n].iter_mut().zip(&x[..n]) {
        *yv -= xv;
    }
}

/// `y[i] = s * y[i] + x[i]` over the common prefix, 4-wide unrolled
/// (one fused pass over a decayed accumulator plus a fresh term).
#[inline]
pub fn scale_add(s: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &mut y[..n]);
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact_mut(4);
    for (qx, qy) in (&mut cx).zip(&mut cy) {
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (qx, qy) {
            *y0 = s * *y0 + x0;
            *y1 = s * *y1 + x1;
            *y2 = s * *y2 + x2;
            *y3 = s * *y3 + x3;
        }
    }
    for (xv, yv) in cx.remainder().iter().zip(cy.into_remainder()) {
        *yv = s * *yv + xv;
    }
}

/// `sum_i (xs[i] - m)^2` with a 4-wide unrolled single accumulator
/// (bit-identical to the mapped `.sum()` chain it replaces).
#[inline]
pub fn sq_dev_sum(xs: &[f64], m: f64) -> f64 {
    // -0.0 start: see `dot` (bit-identity with the `.sum()` reference).
    let mut acc = -0.0;
    let mut cs = xs.chunks_exact(4);
    for q in &mut cs {
        if let [x0, x1, x2, x3] = q {
            let d0 = x0 - m;
            acc += d0 * d0;
            let d1 = x1 - m;
            acc += d1 * d1;
            let d2 = x2 - m;
            acc += d2 * d2;
            let d3 = x3 - m;
            acc += d3 * d3;
        }
    }
    for x in cs.remainder() {
        let d = x - m;
        acc += d * d;
    }
    acc
}

/// Left-to-right sum with a 4-wide unrolled single accumulator
/// (bit-identical to `xs.iter().sum::<f64>()`).
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    // -0.0 start: see `dot` (bit-identity with the `.sum()` reference).
    let mut acc = -0.0;
    let mut cs = xs.chunks_exact(4);
    for q in &mut cs {
        if let [x0, x1, x2, x3] = q {
            acc += x0;
            acc += x1;
            acc += x2;
            acc += x3;
        }
    }
    for x in cs.remainder() {
        acc += x;
    }
    acc
}

// ---------------------------------------------------------------------
// GEMM.

fn assert_gemm_shapes(a: &Matrix, b: &Matrix, out: &Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), b.cols()),
        "matmul output shape mismatch: got {}x{}, need {}x{}",
        out.rows(),
        out.cols(),
        a.rows(),
        b.cols()
    );
}

/// `out = a * b` into a preallocated output, choosing the blocked or
/// scalar path by problem size. Both paths are bit-identical.
///
/// # Panics
/// Panics on inner-dimension or output-shape mismatch.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_gemm_shapes(a, b, out);
    out.as_mut_slice().fill(0.0);
    if a.rows() * a.cols() * b.cols() < BLOCKED_MIN_MULADDS {
        DISPATCH_SCALAR.incr();
        scalar_accumulate(a, b, out);
    } else {
        DISPATCH_BLOCKED.incr();
        blocked_accumulate(a, b, out);
    }
}

/// The scalar `ikj` reference: the pre-kernel `Matrix::matmul` loop.
/// Kept public so the equivalence proptests and the kernel benchmark
/// compare against the exact historical path.
pub fn matmul_scalar_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_gemm_shapes(a, b, out);
    out.as_mut_slice().fill(0.0);
    scalar_accumulate(a, b, out);
}

/// The blocked path without the size dispatch, public for the
/// equivalence proptests (which must exercise blocking even on shapes
/// the dispatcher would route to the scalar path).
pub fn matmul_blocked_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_gemm_shapes(a, b, out);
    out.as_mut_slice().fill(0.0);
    blocked_accumulate(a, b, out);
}

/// `ikj` loop order: the inner loop streams contiguous rows of B into
/// the output row via [`axpy`] (same chain as the historical loop).
fn scalar_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    for i in 0..a.rows() {
        let arow = a.row(i);
        let dst = out.row_mut(i);
        for (k, &av) in arow.iter().enumerate() {
            // oeb-lint: allow(float-eq) -- exact-zero sparsity skip; any nonzero must multiply
            if av == 0.0 {
                continue;
            }
            axpy(av, b.row(k), dst);
        }
    }
}

/// Whether the fast tile should be compiled for 256-bit vectors.
/// Detection is cached by the standard library. The choice cannot
/// change bits: both codegen variants execute the identical sequence of
/// scalar-per-lane IEEE multiplies and adds, only the register width
/// differs (and Rust never licenses FMA contraction).
fn wide_tile_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn blocked_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || kdim == 0 || n == 0 {
        return;
    }
    let wide = wide_tile_available();
    let mut panel = vec![0.0f64; KC.min(kdim) * NC.min(n)];
    for jb in (0..n).step_by(NC) {
        let nc = NC.min(n - jb);
        for kb in (0..kdim).step_by(KC) {
            let kc = KC.min(kdim - kb);
            // Pack B[kb.., jb..] row-major into the panel so the
            // microkernel reads a dense `kc x nc` stripe.
            for k in 0..kc {
                let brow = &b.row(kb + k)[jb..jb + nc];
                panel[k * nc..k * nc + nc].copy_from_slice(brow);
            }
            // The branch-free fast tile is only bit-safe when every
            // packed value is finite (see `micro_block`); one pass over
            // the panel is amortised across all `m / MR` tile rows.
            let finite = panel[..kc * nc].iter().all(|v| v.is_finite());
            for ib in (0..m).step_by(MR) {
                let mr = MR.min(m - ib);
                micro_block(a, ib, mr, kb, kc, jb, nc, &panel, finite, wide, out);
            }
        }
    }
}

/// Computes the `mr x nc` output stripe at (`ib`, `jb`) for one k-block,
/// walking `NR`-wide register tiles across the packed panel.
///
/// Full tiles over all-finite panels take a branch-free kernel that
/// drops the scalar reference's `av == 0.0` skip. That is bitwise safe
/// because with finite `pv` the skipped term `av * pv` is `±0.0`, and:
///
/// * adding `-0.0` never changes any IEEE-754 value;
/// * adding `+0.0` only changes `-0.0` (to `+0.0`), and an accumulator
///   chain seeded from the `+0.0`-filled output can never hold `-0.0` —
///   in round-to-nearest a sum is `-0.0` only when *both* operands are
///   `-0.0`, so `-0.0` cannot enter a chain that starts at `+0.0`.
///
/// With a non-finite packed value the skip is observable
/// (`0.0 * inf = NaN`), so those panels take the guarded tile, which
/// replicates the skip exactly. Edge tiles always take the guarded path.
#[allow(clippy::too_many_arguments)]
fn micro_block(
    a: &Matrix,
    ib: usize,
    mr: usize,
    kb: usize,
    kc: usize,
    jb: usize,
    nc: usize,
    panel: &[f64],
    panel_finite: bool,
    wide: bool,
    out: &mut Matrix,
) {
    // A rows restricted to this k-block, hoisted out of the tile loop.
    let mut arows: [&[f64]; MR] = [&[]; MR];
    for (ii, arow) in arows.iter_mut().enumerate().take(mr) {
        *arow = &a.row(ib + ii)[kb..kb + kc];
    }
    let mut jj = 0;
    while jj < nc {
        let nr = NR.min(nc - jj);
        // Resume from the output accumulated by earlier k-blocks: the
        // per-element addition chain stays strictly k-sequential.
        let mut acc = [[0.0f64; NR]; MR];
        for ii in 0..mr {
            let orow = &out.row(ib + ii)[jb + jj..jb + jj + nr];
            acc[ii][..nr].copy_from_slice(orow);
        }
        if panel_finite && mr == MR && nr == NR {
            #[cfg(target_arch = "x86_64")]
            if wide {
                // SAFETY: only reached when run-time AVX2 detection
                // succeeded (`wide_tile_available`).
                unsafe { tile_kernel_avx2(&arows, panel, nc, jj, &mut acc) };
                store_tile(&acc, mr, nr, ib, jb + jj, out);
                jj += nr;
                continue;
            }
            let _ = wide;
            tile_kernel(&arows, panel, nc, jj, &mut acc);
        } else {
            guarded_tile(&arows, mr, kc, panel, nc, jj, nr, &mut acc);
        }
        store_tile(&acc, mr, nr, ib, jb + jj, out);
        jj += nr;
    }
}

/// Writes the `mr x nr` accumulator tile back to `out` at (`ib`, `j0`).
fn store_tile(acc: &[[f64; NR]; MR], mr: usize, nr: usize, ib: usize, j0: usize, out: &mut Matrix) {
    for ii in 0..mr {
        let orow = &mut out.row_mut(ib + ii)[j0..j0 + nr];
        orow.copy_from_slice(&acc[ii][..nr]);
    }
}

/// The branch-free full-tile kernel: `MR` broadcast A values against an
/// `NR`-wide panel stripe per k step, all accumulators held in
/// registers. Iterator zips keep the inner loop free of bounds checks.
#[inline(always)]
fn tile_kernel(
    arows: &[&[f64]; MR],
    panel: &[f64],
    nc: usize,
    jj: usize,
    acc: &mut [[f64; NR]; MR],
) {
    let [a0, a1, a2, a3] = *arows;
    let [mut c0, mut c1, mut c2, mut c3] = *acc;
    for (((&av0, &av1), (&av2, &av3)), prow) in a0
        .iter()
        .zip(a1.iter())
        .zip(a2.iter().zip(a3.iter()))
        .zip(panel.chunks_exact(nc))
    {
        let p = &prow[jj..jj + NR];
        for r in 0..NR {
            c0[r] += av0 * p[r];
            c1[r] += av1 * p[r];
            c2[r] += av2 * p[r];
            c3[r] += av3 * p[r];
        }
    }
    *acc = [c0, c1, c2, c3];
}

/// [`tile_kernel`] compiled with AVX2 enabled (256-bit moves and
/// arithmetic). No FMA: `target_feature` does not license contraction,
/// every multiply and add stays a distinct IEEE operation, so the wider
/// codegen cannot change a single output bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn tile_kernel_avx2(
    arows: &[&[f64]; MR],
    panel: &[f64],
    nc: usize,
    jj: usize,
    acc: &mut [[f64; NR]; MR],
) {
    tile_kernel(arows, panel, nc, jj, acc);
}

/// The exact-semantics tile: replicates the scalar reference's
/// `av == 0.0` skip. Used for edge tiles and for panels carrying
/// non-finite values, where the skip is observable.
#[allow(clippy::too_many_arguments)]
fn guarded_tile(
    arows: &[&[f64]; MR],
    mr: usize,
    kc: usize,
    panel: &[f64],
    nc: usize,
    jj: usize,
    nr: usize,
    acc: &mut [[f64; NR]; MR],
) {
    for k in 0..kc {
        let prow = &panel[k * nc + jj..k * nc + jj + nr];
        for ii in 0..mr {
            let av = arows[ii][k];
            // oeb-lint: allow(float-eq) -- mirrors the scalar reference's exact-zero skip
            if av == 0.0 {
                continue;
            }
            for (r, &pv) in prow.iter().enumerate() {
                acc[ii][r] += av * pv;
            }
        }
    }
}

/// Matrix-vector product into a reused output buffer.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matvec_into(a: &Matrix, v: &[f64], out: &mut Vec<f64>) {
    MATVEC_CALLS.incr();
    assert_eq!(a.cols(), v.len(), "matvec dimension mismatch");
    out.clear();
    out.extend((0..a.rows()).map(|r| dot(a.row(r), v)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn lcg_vec(n: usize, seed: &mut u64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                *seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn dot_matches_naive_bitwise() {
        let mut seed = 7;
        for n in [0, 1, 3, 4, 5, 7, 8, 17, 64, 100] {
            let a = lcg_vec(n, &mut seed);
            let b = lcg_vec(n, &mut seed);
            assert_eq!(dot(&a, &b).to_bits(), naive_dot(&a, &b).to_bits(), "n={n}");
        }
    }

    #[test]
    fn dot_from_continues_the_chain() {
        let a = [1.5, -2.0, 0.25];
        let b = [4.0, 1.0, -8.0];
        let mut z = 10.0;
        for (x, y) in a.iter().zip(&b) {
            z += x * y;
        }
        assert_eq!(dot_from(10.0, &a, &b).to_bits(), z.to_bits());
    }

    #[test]
    fn dot_sub_from_matches_sequential_subtraction() {
        let mut seed = 3;
        let a = lcg_vec(11, &mut seed);
        let b = lcg_vec(11, &mut seed);
        let mut z = 2.5;
        for (x, y) in a.iter().zip(&b) {
            z -= x * y;
        }
        assert_eq!(dot_sub_from(2.5, &a, &b).to_bits(), z.to_bits());
    }

    #[test]
    fn axpy_matches_scalar_loop_bitwise() {
        let mut seed = 11;
        for n in [0, 1, 4, 6, 9, 33] {
            let x = lcg_vec(n, &mut seed);
            let mut y = lcg_vec(n, &mut seed);
            let mut expect = y.clone();
            for (e, xv) in expect.iter_mut().zip(&x) {
                *e += 0.37 * xv;
            }
            axpy(0.37, &x, &mut y);
            for (got, want) in y.iter().zip(&expect) {
                assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn scale_add_matches_scalar_loop_bitwise() {
        let mut seed = 13;
        let x = lcg_vec(10, &mut seed);
        let mut y = lcg_vec(10, &mut seed);
        let mut expect = y.clone();
        for (e, xv) in expect.iter_mut().zip(&x) {
            *e = 0.9 * *e + xv;
        }
        scale_add(0.9, &x, &mut y);
        for (got, want) in y.iter().zip(&expect) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn sum_and_sq_dist_match_iterator_chains() {
        let mut seed = 17;
        for n in [0, 1, 2, 4, 5, 31] {
            let a = lcg_vec(n, &mut seed);
            let b = lcg_vec(n, &mut seed);
            assert_eq!(sum(&a).to_bits(), a.iter().sum::<f64>().to_bits());
            let naive: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| {
                    let d = x - y;
                    d * d
                })
                .sum();
            assert_eq!(sq_dist(&a, &b).to_bits(), naive.to_bits());
        }
    }

    #[test]
    fn blocked_matches_scalar_on_awkward_shapes() {
        let mut seed = 23;
        for (m, k, n) in [
            (0, 0, 0),
            (0, 3, 4),
            (3, 0, 4),
            (1, 1, 1),
            (5, 3, 2),
            (64, 2, 3),
            (3, 2, 70),
            (17, 300, 5),
            (33, 33, 33),
        ] {
            let a = Matrix::from_vec(m, k, lcg_vec(m * k, &mut seed));
            let b = Matrix::from_vec(k, n, lcg_vec(k * n, &mut seed));
            let mut blocked = Matrix::zeros(m, n);
            let mut scalar = Matrix::zeros(m, n);
            matmul_blocked_into(&a, &b, &mut blocked);
            matmul_scalar_into(&a, &b, &mut scalar);
            for (x, y) in blocked.as_slice().iter().zip(scalar.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "shape {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn blocked_replicates_the_zero_skip_nan_semantics() {
        // A zero in A skips a non-finite B row in both paths; a nonzero
        // must propagate the NaN. This is the observable part of the
        // sparsity skip, so the two paths must agree exactly.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![f64::INFINITY, 2.0], vec![3.0, f64::NAN]]);
        let mut blocked = Matrix::zeros(2, 2);
        let mut scalar = Matrix::zeros(2, 2);
        matmul_blocked_into(&a, &b, &mut blocked);
        matmul_scalar_into(&a, &b, &mut scalar);
        for (x, y) in blocked.as_slice().iter().zip(scalar.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(blocked[(0, 0)], 3.0); // the inf row was skipped
        assert!(blocked[(0, 1)].is_nan()); // the NaN column was not
        assert_eq!(blocked[(1, 1)], 2.0); // zero in A skipped the NaN
    }

    #[test]
    fn matvec_into_reuses_the_buffer() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut out = vec![99.0; 7];
        matvec_into(&a, &[1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "matmul output shape mismatch")]
    fn wrong_output_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        matmul_into(&a, &b, &mut out);
    }
}
