//! Compute kernels: a register-blocked GEMM with packed B panels and
//! fused slice primitives (`dot` / `axpy` / `scale_add`), all
//! **bit-identical** to the naive scalar loops they replace.
//!
//! Bit-identity is the load-bearing invariant of this module. Every
//! output element's floating-point accumulation happens in exactly the
//! same order as the scalar reference: blocking reorders *which*
//! elements are computed when, never the k-order within one element,
//! and the fused slice kernels unroll with a **single** accumulator so
//! the addition chain is unchanged. The determinism proptests and every
//! golden artifact therefore see the same bits at 2-4x the throughput.
//!
//! The GEMM follows the classic Goto blocking scheme scaled down to
//! this crate's needs:
//!
//! * B is packed into `KC x NC` row-major panels so the microkernel
//!   streams contiguous memory regardless of B's width;
//! * the microkernel holds an `MR x NR` tile of output accumulators in
//!   registers across the whole k-block, turning the scalar path's
//!   per-k load/store of the output row into register traffic;
//! * k-blocks resume from the partially accumulated output value, so
//!   splitting k preserves the sequential addition chain.
//!
//! The scalar reference's exact-zero skip (`a == 0.0` contributes
//! nothing) is *observable* under IEEE-754 only against non-finite B
//! values (`0.0 * inf = NaN`); panels that pack any non-finite value
//! therefore take a guarded tile that replicates the skip exactly,
//! while all-finite panels take a branch-free tile whose dropped skip
//! is provably a bitwise no-op (see [`micro_block`] — the accumulator
//! chain can never hold `-0.0`, so adding `±0.0` never changes bits).

use crate::matrix::Matrix;
use oeb_trace::Counter;

/// Dispatch accounting: which GEMM path each `matmul_into` call took.
/// Purely shape-driven, so the counts are schedule-invariant.
static DISPATCH_SCALAR: Counter = Counter::new("gemm.dispatch.scalar");
static DISPATCH_BLOCKED: Counter = Counter::new("gemm.dispatch.blocked");
static MATVEC_CALLS: Counter = Counter::new("gemm.matvec.calls");

/// Rows of A per register tile.
const MR: usize = 4;
/// Columns of B per register tile (two 256-bit vectors of f64).
const NR: usize = 8;
/// Columns of B packed per panel (one cache-resident stripe).
const NC: usize = 128;
/// Depth of one packed panel; bounds panel memory to `KC * NC * 8` bytes.
const KC: usize = 256;
/// Problem sizes below this many multiply-adds stay on the scalar path,
/// where panel packing would cost more than it saves.
const BLOCKED_MIN_MULADDS: usize = 16 * 16 * 16;
/// Dispatch floor for the training GEMMs ([`matmul_xwt_bias_into`],
/// [`matmul_noskip_into`], [`matmul_at_b_accum_into`]). These tile
/// straight over the operand rows without panel packing, so their
/// break-even sits far below [`BLOCKED_MIN_MULADDS`] — sweep-scale
/// windows (tens of rows through [32, 16, 8] hidden layers) land
/// squarely in this range.
const TRAIN_MIN_MULADDS: usize = 8 * 8 * 8;

// ---------------------------------------------------------------------
// Fused slice kernels.

/// Dot product with a 4-wide unrolled single-accumulator loop.
///
/// Operates over the common prefix when lengths differ (the same
/// truncation the naive `zip` loop performed).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    // -0.0 is the identity `iter::Sum<f64>` folds from (it preserves the
    // sign of a -0.0 first term, +0.0 does not), so starting there keeps
    // this bit-identical to the historical `.zip().map().sum()` chain.
    dot_from(-0.0, a, b)
}

/// `init + sum_i a[i] * b[i]`, accumulated left to right from `init`.
///
/// The explicit starting value lets callers fuse a bias or prior sum
/// into the chain without changing the addition order (`z = b; z += ...`
/// is *not* the same chain as `b + dot(..)`).
#[inline]
pub fn dot_from(init: f64, a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = init;
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (qa, qb) in (&mut ca).zip(&mut cb) {
        // chunks_exact(4) only yields 4-element slices, so the patterns
        // always match; destructuring keeps the unroll index-free.
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (qa, qb) {
            acc += x0 * y0;
            acc += x1 * y1;
            acc += x2 * y2;
            acc += x3 * y3;
        }
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// `init - sum_i a[i] * b[i]`, subtracted left to right from `init`
/// (the back-substitution chain of a triangular solve).
#[inline]
pub fn dot_sub_from(init: f64, a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = init;
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (qa, qb) in (&mut ca).zip(&mut cb) {
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (qa, qb) {
            acc -= x0 * y0;
            acc -= x1 * y1;
            acc -= x2 * y2;
            acc -= x3 * y3;
        }
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc -= x * y;
    }
    acc
}

/// Squared Euclidean distance, 4-wide unrolled single accumulator.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    // -0.0 start: see `dot` (bit-identity with the `.sum()` reference).
    let mut acc = -0.0;
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (qa, qb) in (&mut ca).zip(&mut cb) {
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (qa, qb) {
            let d0 = x0 - y0;
            acc += d0 * d0;
            let d1 = x1 - y1;
            acc += d1 * d1;
            let d2 = x2 - y2;
            acc += d2 * d2;
            let d3 = x3 - y3;
            acc += d3 * d3;
        }
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// `y[i] += a * x[i]` over the common prefix, 4-wide unrolled.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &mut y[..n]);
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact_mut(4);
    for (qx, qy) in (&mut cx).zip(&mut cy) {
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (qx, qy) {
            *y0 += a * x0;
            *y1 += a * x1;
            *y2 += a * x2;
            *y3 += a * x3;
        }
    }
    for (xv, yv) in cx.remainder().iter().zip(cy.into_remainder()) {
        *yv += a * xv;
    }
}

/// `y[i] += x[i]` over the common prefix.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    let n = x.len().min(y.len());
    for (yv, xv) in y[..n].iter_mut().zip(&x[..n]) {
        *yv += xv;
    }
}

/// `y[i] -= x[i]` over the common prefix.
#[inline]
pub fn sub_assign(y: &mut [f64], x: &[f64]) {
    let n = x.len().min(y.len());
    for (yv, xv) in y[..n].iter_mut().zip(&x[..n]) {
        *yv -= xv;
    }
}

/// `y[i] = s * y[i] + x[i]` over the common prefix, 4-wide unrolled
/// (one fused pass over a decayed accumulator plus a fresh term).
#[inline]
pub fn scale_add(s: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &mut y[..n]);
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact_mut(4);
    for (qx, qy) in (&mut cx).zip(&mut cy) {
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (qx, qy) {
            *y0 = s * *y0 + x0;
            *y1 = s * *y1 + x1;
            *y2 = s * *y2 + x2;
            *y3 = s * *y3 + x3;
        }
    }
    for (xv, yv) in cx.remainder().iter().zip(cy.into_remainder()) {
        *yv = s * *yv + xv;
    }
}

/// `sum_i (xs[i] - m)^2` with a 4-wide unrolled single accumulator
/// (bit-identical to the mapped `.sum()` chain it replaces).
#[inline]
pub fn sq_dev_sum(xs: &[f64], m: f64) -> f64 {
    // -0.0 start: see `dot` (bit-identity with the `.sum()` reference).
    let mut acc = -0.0;
    let mut cs = xs.chunks_exact(4);
    for q in &mut cs {
        if let [x0, x1, x2, x3] = q {
            let d0 = x0 - m;
            acc += d0 * d0;
            let d1 = x1 - m;
            acc += d1 * d1;
            let d2 = x2 - m;
            acc += d2 * d2;
            let d3 = x3 - m;
            acc += d3 * d3;
        }
    }
    for x in cs.remainder() {
        let d = x - m;
        acc += d * d;
    }
    acc
}

/// Left-to-right sum with a 4-wide unrolled single accumulator
/// (bit-identical to `xs.iter().sum::<f64>()`).
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    // -0.0 start: see `dot` (bit-identity with the `.sum()` reference).
    let mut acc = -0.0;
    let mut cs = xs.chunks_exact(4);
    for q in &mut cs {
        if let [x0, x1, x2, x3] = q {
            acc += x0;
            acc += x1;
            acc += x2;
            acc += x3;
        }
    }
    for x in cs.remainder() {
        acc += x;
    }
    acc
}

// ---------------------------------------------------------------------
// GEMM.

fn assert_gemm_shapes(a: &Matrix, b: &Matrix, out: &Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), b.cols()),
        "matmul output shape mismatch: got {}x{}, need {}x{}",
        out.rows(),
        out.cols(),
        a.rows(),
        b.cols()
    );
}

/// `out = a * b` into a preallocated output, choosing the blocked or
/// scalar path by problem size. Both paths are bit-identical.
///
/// # Panics
/// Panics on inner-dimension or output-shape mismatch.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_gemm_shapes(a, b, out);
    out.as_mut_slice().fill(0.0);
    if a.rows() * a.cols() * b.cols() < BLOCKED_MIN_MULADDS {
        DISPATCH_SCALAR.incr();
        scalar_accumulate(a, b, out);
    } else {
        DISPATCH_BLOCKED.incr();
        blocked_accumulate(a, b, out);
    }
}

/// The scalar `ikj` reference: the pre-kernel `Matrix::matmul` loop.
/// Kept public so the equivalence proptests and the kernel benchmark
/// compare against the exact historical path.
pub fn matmul_scalar_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_gemm_shapes(a, b, out);
    out.as_mut_slice().fill(0.0);
    scalar_accumulate(a, b, out);
}

/// The blocked path without the size dispatch, public for the
/// equivalence proptests (which must exercise blocking even on shapes
/// the dispatcher would route to the scalar path).
pub fn matmul_blocked_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_gemm_shapes(a, b, out);
    out.as_mut_slice().fill(0.0);
    blocked_accumulate(a, b, out);
}

/// `ikj` loop order: the inner loop streams contiguous rows of B into
/// the output row via [`axpy`] (same chain as the historical loop).
fn scalar_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    for i in 0..a.rows() {
        let arow = a.row(i);
        let dst = out.row_mut(i);
        for (k, &av) in arow.iter().enumerate() {
            // oeb-lint: allow(float-eq) -- exact-zero sparsity skip; any nonzero must multiply
            if av == 0.0 {
                continue;
            }
            axpy(av, b.row(k), dst);
        }
    }
}

/// Whether the fast tile should be compiled for 256-bit vectors.
/// Detection is cached by the standard library. The choice cannot
/// change bits: both codegen variants execute the identical sequence of
/// scalar-per-lane IEEE multiplies and adds, only the register width
/// differs (and Rust never licenses FMA contraction).
fn wide_tile_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn blocked_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || kdim == 0 || n == 0 {
        return;
    }
    let wide = wide_tile_available();
    let mut panel = vec![0.0f64; KC.min(kdim) * NC.min(n)];
    for jb in (0..n).step_by(NC) {
        let nc = NC.min(n - jb);
        for kb in (0..kdim).step_by(KC) {
            let kc = KC.min(kdim - kb);
            // Pack B[kb.., jb..] row-major into the panel so the
            // microkernel reads a dense `kc x nc` stripe.
            for k in 0..kc {
                let brow = &b.row(kb + k)[jb..jb + nc];
                panel[k * nc..k * nc + nc].copy_from_slice(brow);
            }
            // The branch-free fast tile is only bit-safe when every
            // packed value is finite (see `micro_block`); one pass over
            // the panel is amortised across all `m / MR` tile rows.
            let finite = panel[..kc * nc].iter().all(|v| v.is_finite());
            for ib in (0..m).step_by(MR) {
                let mr = MR.min(m - ib);
                micro_block(a, ib, mr, kb, kc, jb, nc, &panel, finite, wide, out);
            }
        }
    }
}

/// Computes the `mr x nc` output stripe at (`ib`, `jb`) for one k-block,
/// walking `NR`-wide register tiles across the packed panel.
///
/// Full tiles over all-finite panels take a branch-free kernel that
/// drops the scalar reference's `av == 0.0` skip. That is bitwise safe
/// because with finite `pv` the skipped term `av * pv` is `±0.0`, and:
///
/// * adding `-0.0` never changes any IEEE-754 value;
/// * adding `+0.0` only changes `-0.0` (to `+0.0`), and an accumulator
///   chain seeded from the `+0.0`-filled output can never hold `-0.0` —
///   in round-to-nearest a sum is `-0.0` only when *both* operands are
///   `-0.0`, so `-0.0` cannot enter a chain that starts at `+0.0`.
///
/// With a non-finite packed value the skip is observable
/// (`0.0 * inf = NaN`), so those panels take the guarded tile, which
/// replicates the skip exactly. Edge tiles always take the guarded path.
#[allow(clippy::too_many_arguments)]
fn micro_block(
    a: &Matrix,
    ib: usize,
    mr: usize,
    kb: usize,
    kc: usize,
    jb: usize,
    nc: usize,
    panel: &[f64],
    panel_finite: bool,
    wide: bool,
    out: &mut Matrix,
) {
    // A rows restricted to this k-block, hoisted out of the tile loop.
    let mut arows: [&[f64]; MR] = [&[]; MR];
    for (ii, arow) in arows.iter_mut().enumerate().take(mr) {
        *arow = &a.row(ib + ii)[kb..kb + kc];
    }
    let mut jj = 0;
    while jj < nc {
        let nr = NR.min(nc - jj);
        // Resume from the output accumulated by earlier k-blocks: the
        // per-element addition chain stays strictly k-sequential.
        let mut acc = [[0.0f64; NR]; MR];
        for ii in 0..mr {
            let orow = &out.row(ib + ii)[jb + jj..jb + jj + nr];
            acc[ii][..nr].copy_from_slice(orow);
        }
        if panel_finite && mr == MR && nr == NR {
            #[cfg(target_arch = "x86_64")]
            if wide {
                // SAFETY: only reached when run-time AVX2 detection
                // succeeded (`wide_tile_available`).
                unsafe { tile_kernel_avx2(&arows, panel, nc, jj, &mut acc) };
                store_tile(&acc, mr, nr, ib, jb + jj, out);
                jj += nr;
                continue;
            }
            let _ = wide;
            tile_kernel(&arows, panel, nc, jj, &mut acc);
        } else {
            guarded_tile(&arows, mr, kc, panel, nc, jj, nr, &mut acc);
        }
        store_tile(&acc, mr, nr, ib, jb + jj, out);
        jj += nr;
    }
}

/// Writes the `mr x nr` accumulator tile back to `out` at (`ib`, `j0`).
fn store_tile(acc: &[[f64; NR]; MR], mr: usize, nr: usize, ib: usize, j0: usize, out: &mut Matrix) {
    for ii in 0..mr {
        let orow = &mut out.row_mut(ib + ii)[j0..j0 + nr];
        orow.copy_from_slice(&acc[ii][..nr]);
    }
}

/// The branch-free full-tile kernel: `MR` broadcast A values against an
/// `NR`-wide panel stripe per k step, all accumulators held in
/// registers. Iterator zips keep the inner loop free of bounds checks.
#[inline(always)]
fn tile_kernel(
    arows: &[&[f64]; MR],
    panel: &[f64],
    nc: usize,
    jj: usize,
    acc: &mut [[f64; NR]; MR],
) {
    let [a0, a1, a2, a3] = *arows;
    let [mut c0, mut c1, mut c2, mut c3] = *acc;
    for (((&av0, &av1), (&av2, &av3)), prow) in a0
        .iter()
        .zip(a1.iter())
        .zip(a2.iter().zip(a3.iter()))
        .zip(panel.chunks_exact(nc))
    {
        let p = &prow[jj..jj + NR];
        for r in 0..NR {
            c0[r] += av0 * p[r];
            c1[r] += av1 * p[r];
            c2[r] += av2 * p[r];
            c3[r] += av3 * p[r];
        }
    }
    *acc = [c0, c1, c2, c3];
}

/// [`tile_kernel`] compiled with AVX2 enabled (256-bit moves and
/// arithmetic). No FMA: `target_feature` does not license contraction,
/// every multiply and add stays a distinct IEEE operation, so the wider
/// codegen cannot change a single output bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn tile_kernel_avx2(
    arows: &[&[f64]; MR],
    panel: &[f64],
    nc: usize,
    jj: usize,
    acc: &mut [[f64; NR]; MR],
) {
    tile_kernel(arows, panel, nc, jj, acc);
}

/// The exact-semantics tile: replicates the scalar reference's
/// `av == 0.0` skip. Used for edge tiles and for panels carrying
/// non-finite values, where the skip is observable.
#[allow(clippy::too_many_arguments)]
fn guarded_tile(
    arows: &[&[f64]; MR],
    mr: usize,
    kc: usize,
    panel: &[f64],
    nc: usize,
    jj: usize,
    nr: usize,
    acc: &mut [[f64; NR]; MR],
) {
    for k in 0..kc {
        let prow = &panel[k * nc + jj..k * nc + jj + nr];
        for ii in 0..mr {
            let av = arows[ii][k];
            // oeb-lint: allow(float-eq) -- mirrors the scalar reference's exact-zero skip
            if av == 0.0 {
                continue;
            }
            for (r, &pv) in prow.iter().enumerate() {
                acc[ii][r] += av * pv;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Training GEMMs.
//
// The MLP trainer's historical per-sample loops define three chain
// shapes the generic `matmul_into` cannot reproduce:
//
// * the forward pass seeds every output element's chain at the *bias*
//   (`dot_from(b[o], w_row, x_row)`), not at `0.0`;
// * the backward passes are built from [`axpy`], which adds **every**
//   term — there is no exact-zero skip to replicate, and ReLU-masked
//   deltas are exactly `0.0` against possibly non-finite weights, so
//   the skip would be observable;
// * gradient accumulation resumes element chains across the sample
//   (row) dimension.
//
// The three kernels below batch those loops with register tiles while
// keeping each output element's accumulation strictly k-sequential in
// the historical order, so they are bit-identical to the per-sample
// references (kept public as `*_reference_into` for the proptests and
// `bench_train`). Multiplication operand order is also preserved
// (weights × activations, delta × input) so NaN-payload propagation
// cannot differ either.

/// Rows of X per register tile in [`matmul_xwt_bias_into`].
const XW_MR: usize = 4;
/// Rows of W per register tile in [`matmul_xwt_bias_into`].
const XW_NR: usize = 4;

fn assert_xwt_shapes(x: &Matrix, w: &Matrix, bias: &[f64], out: &Matrix) {
    assert_eq!(
        x.cols(),
        w.cols(),
        "xwt inner dimension mismatch: X {}x{}, W {}x{}",
        x.rows(),
        x.cols(),
        w.rows(),
        w.cols()
    );
    assert_eq!(bias.len(), w.rows(), "xwt bias length mismatch");
    assert_eq!(
        out.shape(),
        (x.rows(), w.rows()),
        "xwt output shape mismatch"
    );
}

/// Batched dense-layer forward `out = X·Wᵀ + bias` (both `X` and `W`
/// row-major, `W` is `n_out x n_in`): every output element is the chain
/// `bias[o] + Σ_k w[o][k]·x[r][k]` accumulated k-ascending from the
/// bias — bit-identical to the per-sample
/// `dot_from(bias[o], w.row(o), x.row(r))` loop for **all** inputs
/// (non-finite included: no term is ever skipped).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul_xwt_bias_into(x: &Matrix, w: &Matrix, bias: &[f64], out: &mut Matrix) {
    assert_xwt_shapes(x, w, bias, out);
    let (m, kdim, n) = (x.rows(), x.cols(), w.rows());
    if m * kdim * n < TRAIN_MIN_MULADDS {
        DISPATCH_SCALAR.incr();
        matmul_xwt_bias_reference_into(x, w, bias, out);
        return;
    }
    DISPATCH_BLOCKED.incr();
    let wide = wide_tile_available();
    let mut ib = 0;
    while ib < m {
        let mr = XW_MR.min(m - ib);
        let mut ob = 0;
        while ob < n {
            let nr = XW_NR.min(n - ob);
            if mr == XW_MR && nr == XW_NR {
                #[cfg(target_arch = "x86_64")]
                if wide {
                    // SAFETY: only reached when run-time AVX2 detection
                    // succeeded (`wide_tile_available`).
                    unsafe { xwt_tile_avx2(x, w, bias, ib, ob, kdim, out) };
                    ob += nr;
                    continue;
                }
                let _ = wide;
                xwt_tile(x, w, bias, ib, ob, kdim, out);
            } else {
                // Edge tiles fall back to the per-element reference
                // chain, which is the same chain the full tile runs.
                for ii in 0..mr {
                    let xrow = x.row(ib + ii);
                    let orow = out.row_mut(ib + ii);
                    for jj in 0..nr {
                        orow[ob + jj] = dot_from(bias[ob + jj], w.row(ob + jj), xrow);
                    }
                }
            }
            ob += nr;
        }
        ib += mr;
    }
}

/// The per-sample forward reference: one [`dot_from`] chain per output
/// element, exactly the historical `Layer::forward` loop over the batch.
pub fn matmul_xwt_bias_reference_into(x: &Matrix, w: &Matrix, bias: &[f64], out: &mut Matrix) {
    assert_xwt_shapes(x, w, bias, out);
    for r in 0..x.rows() {
        let xrow = x.row(r);
        let orow = out.row_mut(r);
        for (o, dst) in orow.iter_mut().enumerate() {
            *dst = dot_from(bias[o], w.row(o), xrow);
        }
    }
}

/// One full `XW_MR x XW_NR` tile of [`matmul_xwt_bias_into`]: sixteen
/// independent bias-seeded accumulator chains walked k-ascending. The
/// independent chains hide the add latency that serializes the
/// single-accumulator [`dot_from`] reference; each individual chain
/// performs the identical operation sequence.
#[inline(always)]
fn xwt_tile(
    x: &Matrix,
    w: &Matrix,
    bias: &[f64],
    ib: usize,
    ob: usize,
    kdim: usize,
    out: &mut Matrix,
) {
    let [x0, x1, x2, x3] = [x.row(ib), x.row(ib + 1), x.row(ib + 2), x.row(ib + 3)];
    let [w0, w1, w2, w3] = [w.row(ob), w.row(ob + 1), w.row(ob + 2), w.row(ob + 3)];
    let mut acc = [[0.0f64; XW_NR]; XW_MR];
    for row in acc.iter_mut() {
        row.copy_from_slice(&bias[ob..ob + XW_NR]);
    }
    for k in 0..kdim {
        let xs = [x0[k], x1[k], x2[k], x3[k]];
        let ws = [w0[k], w1[k], w2[k], w3[k]];
        for (arow, &xv) in acc.iter_mut().zip(&xs) {
            for (a, &wv) in arow.iter_mut().zip(&ws) {
                // w * x operand order, as in dot_from(bias, w_row, x_row).
                *a += wv * xv;
            }
        }
    }
    for (ii, arow) in acc.iter().enumerate() {
        out.row_mut(ib + ii)[ob..ob + XW_NR].copy_from_slice(arow);
    }
}

/// [`xwt_tile`] compiled with AVX2 enabled (256-bit moves and
/// arithmetic). No FMA: `target_feature` does not license contraction,
/// every multiply and add stays a distinct IEEE operation, so the wider
/// codegen cannot change a single output bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn xwt_tile_avx2(
    x: &Matrix,
    w: &Matrix,
    bias: &[f64],
    ib: usize,
    ob: usize,
    kdim: usize,
    out: &mut Matrix,
) {
    xwt_tile(x, w, bias, ib, ob, kdim, out);
}

/// `out = A·B` with **no** exact-zero skip: every element's chain starts
/// at `0.0` and adds `a[r][k]·b[k][j]` for every k ascending —
/// bit-identical to the backward-pass reference
/// `for k { axpy(a[r][k], b.row(k), out.row(r)) }` for all inputs
/// (the skip-free chain makes the non-finite cases exact too, so no
/// finite-panel guard is needed).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul_noskip_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_gemm_shapes(a, b, out);
    out.as_mut_slice().fill(0.0);
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || kdim == 0 || n == 0 {
        return;
    }
    if m * kdim * n < TRAIN_MIN_MULADDS {
        DISPATCH_SCALAR.incr();
        noskip_accumulate_reference(a, b, out);
        return;
    }
    DISPATCH_BLOCKED.incr();
    let wide = wide_tile_available();
    // B is consumed in place (it is already a row-major `kdim x n`
    // panel with stride `n`), so only k is blocked; accumulator tiles
    // resume from the output, keeping each chain k-sequential.
    for kb in (0..kdim).step_by(KC) {
        let kc = KC.min(kdim - kb);
        let panel = &b.as_slice()[kb * n..(kb + kc) * n];
        for ib in (0..m).step_by(MR) {
            let mr = MR.min(m - ib);
            let mut arows: [&[f64]; MR] = [&[]; MR];
            for (ii, arow) in arows.iter_mut().enumerate().take(mr) {
                *arow = &a.row(ib + ii)[kb..kb + kc];
            }
            let mut jj = 0;
            while jj < n {
                let nr = NR.min(n - jj);
                let mut acc = [[0.0f64; NR]; MR];
                for ii in 0..mr {
                    acc[ii][..nr].copy_from_slice(&out.row(ib + ii)[jj..jj + nr]);
                }
                if mr == MR && nr == NR {
                    #[cfg(target_arch = "x86_64")]
                    if wide {
                        // SAFETY: only reached when run-time AVX2
                        // detection succeeded (`wide_tile_available`).
                        unsafe { tile_kernel_avx2(&arows, panel, n, jj, &mut acc) };
                        store_tile(&acc, mr, nr, ib, jj, out);
                        jj += nr;
                        continue;
                    }
                    let _ = wide;
                    tile_kernel(&arows, panel, n, jj, &mut acc);
                } else {
                    noskip_edge_tile(&arows, mr, kc, panel, n, jj, nr, &mut acc);
                }
                store_tile(&acc, mr, nr, ib, jj, out);
                jj += nr;
            }
        }
    }
}

/// The no-skip backward reference: the historical
/// `prev_delta += delta[k] * w.row(k)` chain lifted over the batch.
pub fn matmul_noskip_reference_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_gemm_shapes(a, b, out);
    out.as_mut_slice().fill(0.0);
    noskip_accumulate_reference(a, b, out);
}

fn noskip_accumulate_reference(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    for r in 0..a.rows() {
        let arow = a.row(r);
        let dst = out.row_mut(r);
        for (k, &av) in arow.iter().enumerate() {
            axpy(av, b.row(k), dst);
        }
    }
}

/// [`guarded_tile`] without the exact-zero skip: edge tiles of the
/// no-skip GEMM add every term, exactly like [`axpy`].
#[allow(clippy::too_many_arguments)]
fn noskip_edge_tile(
    arows: &[&[f64]; MR],
    mr: usize,
    kc: usize,
    panel: &[f64],
    nc: usize,
    jj: usize,
    nr: usize,
    acc: &mut [[f64; NR]; MR],
) {
    for k in 0..kc {
        let prow = &panel[k * nc + jj..k * nc + jj + nr];
        for ii in 0..mr {
            let av = arows[ii][k];
            for (r, &pv) in prow.iter().enumerate() {
                acc[ii][r] += av * pv;
            }
        }
    }
}

/// Columns of B per register tile in [`matmul_at_b_accum_into`].
const ATB_NR: usize = 8;

fn assert_atb_shapes(a: &Matrix, b: &Matrix, out: &[f64]) {
    assert_eq!(a.rows(), b.rows(), "atb row-count mismatch");
    assert_eq!(out.len(), a.cols() * b.cols(), "atb output length mismatch");
}

/// Gradient accumulation `out += Aᵀ·B` over a flat row-major
/// `a.cols() x b.cols()` buffer: element `(o, i)` accumulates
/// `a[r][o]·b[r][i]` for every row r **ascending**, resuming from the
/// value already in `out` — bit-identical to the per-sample
/// `for r { for o { axpy(a[r][o], b.row(r), out_row_o) } }` reference
/// for all inputs (axpy adds every term, so no skip here either).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul_at_b_accum_into(a: &Matrix, b: &Matrix, out: &mut [f64]) {
    assert_atb_shapes(a, b, out);
    let (m, n_out, n_in) = (a.rows(), a.cols(), b.cols());
    if m * n_out * n_in < TRAIN_MIN_MULADDS {
        DISPATCH_SCALAR.incr();
        atb_accumulate_reference(a, b, out);
        return;
    }
    DISPATCH_BLOCKED.incr();
    let wide = wide_tile_available();
    let mut ob = 0;
    while ob < n_out {
        let mr = XW_MR.min(n_out - ob);
        let mut jb = 0;
        while jb < n_in {
            let nr = ATB_NR.min(n_in - jb);
            #[cfg(target_arch = "x86_64")]
            if wide {
                // SAFETY: only reached when run-time AVX2 detection
                // succeeded (`wide_tile_available`).
                unsafe { atb_tile_avx2(a, b, ob, mr, jb, nr, m, n_in, out) };
                jb += nr;
                continue;
            }
            let _ = wide;
            atb_tile(a, b, ob, mr, jb, nr, m, n_in, out);
            jb += nr;
        }
        ob += mr;
    }
}

/// One `mr x nr` accumulation tile of [`matmul_at_b_accum_into`]:
/// resumes the tile's chains from `out`, walks rows r ascending with
/// `delta * input` operand order, stores the chains back.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn atb_tile(
    a: &Matrix,
    b: &Matrix,
    ob: usize,
    mr: usize,
    jb: usize,
    nr: usize,
    m: usize,
    n_in: usize,
    out: &mut [f64],
) {
    let mut acc = [[0.0f64; ATB_NR]; XW_MR];
    for (ii, arow) in acc.iter_mut().enumerate().take(mr) {
        let base = (ob + ii) * n_in + jb;
        arow[..nr].copy_from_slice(&out[base..base + nr]);
    }
    for r in 0..m {
        let drow = &a.row(r)[ob..ob + mr];
        let brow = &b.row(r)[jb..jb + nr];
        for (arow, &dv) in acc.iter_mut().zip(drow) {
            for (acc_v, &bv) in arow.iter_mut().zip(brow) {
                // delta * input operand order, as in axpy(d, x, gw).
                *acc_v += dv * bv;
            }
        }
    }
    for (ii, arow) in acc.iter().enumerate().take(mr) {
        let base = (ob + ii) * n_in + jb;
        out[base..base + nr].copy_from_slice(&arow[..nr]);
    }
}

/// [`atb_tile`] compiled with AVX2 enabled. No FMA — every multiply and
/// add stays a distinct IEEE operation, so the wider codegen cannot
/// change a single output bit (see [`tile_kernel_avx2`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn atb_tile_avx2(
    a: &Matrix,
    b: &Matrix,
    ob: usize,
    mr: usize,
    jb: usize,
    nr: usize,
    m: usize,
    n_in: usize,
    out: &mut [f64],
) {
    atb_tile(a, b, ob, mr, jb, nr, m, n_in, out);
}

/// The gradient-accumulation reference: the historical per-sample
/// weight-gradient loop run over the whole batch.
pub fn matmul_at_b_accum_reference_into(a: &Matrix, b: &Matrix, out: &mut [f64]) {
    assert_atb_shapes(a, b, out);
    atb_accumulate_reference(a, b, out);
}

fn atb_accumulate_reference(a: &Matrix, b: &Matrix, out: &mut [f64]) {
    let n_in = b.cols();
    for r in 0..a.rows() {
        let brow = b.row(r);
        for (o, &dv) in a.row(r).iter().enumerate() {
            axpy(dv, brow, &mut out[o * n_in..(o + 1) * n_in]);
        }
    }
}

/// `out[j] += Σ_r a[r][j]` accumulated row-ascending — the batched form
/// of the per-sample bias-gradient `gb[o] += delta[o]` chain.
///
/// # Panics
/// Panics on width mismatch.
pub fn accum_col_sums(a: &Matrix, out: &mut [f64]) {
    assert_eq!(a.cols(), out.len(), "column-sum width mismatch");
    for r in 0..a.rows() {
        add_assign(out, a.row(r));
    }
}

/// Matrix-vector product into a reused output buffer.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matvec_into(a: &Matrix, v: &[f64], out: &mut Vec<f64>) {
    MATVEC_CALLS.incr();
    assert_eq!(a.cols(), v.len(), "matvec dimension mismatch");
    out.clear();
    out.extend((0..a.rows()).map(|r| dot(a.row(r), v)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn lcg_vec(n: usize, seed: &mut u64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                *seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn dot_matches_naive_bitwise() {
        let mut seed = 7;
        for n in [0, 1, 3, 4, 5, 7, 8, 17, 64, 100] {
            let a = lcg_vec(n, &mut seed);
            let b = lcg_vec(n, &mut seed);
            assert_eq!(dot(&a, &b).to_bits(), naive_dot(&a, &b).to_bits(), "n={n}");
        }
    }

    #[test]
    fn dot_from_continues_the_chain() {
        let a = [1.5, -2.0, 0.25];
        let b = [4.0, 1.0, -8.0];
        let mut z = 10.0;
        for (x, y) in a.iter().zip(&b) {
            z += x * y;
        }
        assert_eq!(dot_from(10.0, &a, &b).to_bits(), z.to_bits());
    }

    #[test]
    fn dot_sub_from_matches_sequential_subtraction() {
        let mut seed = 3;
        let a = lcg_vec(11, &mut seed);
        let b = lcg_vec(11, &mut seed);
        let mut z = 2.5;
        for (x, y) in a.iter().zip(&b) {
            z -= x * y;
        }
        assert_eq!(dot_sub_from(2.5, &a, &b).to_bits(), z.to_bits());
    }

    #[test]
    fn axpy_matches_scalar_loop_bitwise() {
        let mut seed = 11;
        for n in [0, 1, 4, 6, 9, 33] {
            let x = lcg_vec(n, &mut seed);
            let mut y = lcg_vec(n, &mut seed);
            let mut expect = y.clone();
            for (e, xv) in expect.iter_mut().zip(&x) {
                *e += 0.37 * xv;
            }
            axpy(0.37, &x, &mut y);
            for (got, want) in y.iter().zip(&expect) {
                assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn scale_add_matches_scalar_loop_bitwise() {
        let mut seed = 13;
        let x = lcg_vec(10, &mut seed);
        let mut y = lcg_vec(10, &mut seed);
        let mut expect = y.clone();
        for (e, xv) in expect.iter_mut().zip(&x) {
            *e = 0.9 * *e + xv;
        }
        scale_add(0.9, &x, &mut y);
        for (got, want) in y.iter().zip(&expect) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn sum_and_sq_dist_match_iterator_chains() {
        let mut seed = 17;
        for n in [0, 1, 2, 4, 5, 31] {
            let a = lcg_vec(n, &mut seed);
            let b = lcg_vec(n, &mut seed);
            assert_eq!(sum(&a).to_bits(), a.iter().sum::<f64>().to_bits());
            let naive: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| {
                    let d = x - y;
                    d * d
                })
                .sum();
            assert_eq!(sq_dist(&a, &b).to_bits(), naive.to_bits());
        }
    }

    #[test]
    fn blocked_matches_scalar_on_awkward_shapes() {
        let mut seed = 23;
        for (m, k, n) in [
            (0, 0, 0),
            (0, 3, 4),
            (3, 0, 4),
            (1, 1, 1),
            (5, 3, 2),
            (64, 2, 3),
            (3, 2, 70),
            (17, 300, 5),
            (33, 33, 33),
        ] {
            let a = Matrix::from_vec(m, k, lcg_vec(m * k, &mut seed));
            let b = Matrix::from_vec(k, n, lcg_vec(k * n, &mut seed));
            let mut blocked = Matrix::zeros(m, n);
            let mut scalar = Matrix::zeros(m, n);
            matmul_blocked_into(&a, &b, &mut blocked);
            matmul_scalar_into(&a, &b, &mut scalar);
            for (x, y) in blocked.as_slice().iter().zip(scalar.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "shape {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn blocked_replicates_the_zero_skip_nan_semantics() {
        // A zero in A skips a non-finite B row in both paths; a nonzero
        // must propagate the NaN. This is the observable part of the
        // sparsity skip, so the two paths must agree exactly.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![f64::INFINITY, 2.0], vec![3.0, f64::NAN]]);
        let mut blocked = Matrix::zeros(2, 2);
        let mut scalar = Matrix::zeros(2, 2);
        matmul_blocked_into(&a, &b, &mut blocked);
        matmul_scalar_into(&a, &b, &mut scalar);
        for (x, y) in blocked.as_slice().iter().zip(scalar.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(blocked[(0, 0)], 3.0); // the inf row was skipped
        assert!(blocked[(0, 1)].is_nan()); // the NaN column was not
        assert_eq!(blocked[(1, 1)], 2.0); // zero in A skipped the NaN
    }

    #[test]
    fn matvec_into_reuses_the_buffer() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut out = vec![99.0; 7];
        matvec_into(&a, &[1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "matmul output shape mismatch")]
    fn wrong_output_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        matmul_into(&a, &b, &mut out);
    }

    /// Matrix of pseudo-random values with a sprinkling of non-finite
    /// and exact-zero entries, to exercise the no-skip chains on the
    /// inputs where a skip would be observable.
    fn lcg_matrix_special(rows: usize, cols: usize, seed: &mut u64) -> Matrix {
        let mut data = lcg_vec(rows * cols, seed);
        for (i, v) in data.iter_mut().enumerate() {
            match i % 13 {
                4 => *v = 0.0,
                7 => *v = f64::NAN,
                11 => *v = f64::INFINITY,
                _ => {}
            }
        }
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_bits_eq(got: &[f64], want: &[f64], ctx: &str) {
        assert_eq!(got.len(), want.len(), "{ctx}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            // NaN payload bits depend on codegen (LLVM may commute fmul
            // operands), so NaN-vs-NaN is accepted; everything else must
            // match exactly. Downstream the pipeline treats non-finite
            // as poison (updates are skipped), so payloads are inert.
            if g.is_nan() && w.is_nan() {
                continue;
            }
            assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}");
        }
    }

    #[test]
    fn xwt_bias_matches_reference_bitwise() {
        let mut seed = 21;
        for &(m, k, n) in &[(1, 1, 1), (3, 2, 5), (4, 7, 4), (64, 20, 32), (65, 33, 9)] {
            let x = lcg_matrix_special(m, k, &mut seed);
            let w = lcg_matrix_special(n, k, &mut seed);
            let bias = lcg_vec(n, &mut seed);
            let mut fast = Matrix::zeros(m, n);
            let mut reference = Matrix::zeros(m, n);
            matmul_xwt_bias_into(&x, &w, &bias, &mut fast);
            matmul_xwt_bias_reference_into(&x, &w, &bias, &mut reference);
            assert_bits_eq(
                fast.as_slice(),
                reference.as_slice(),
                &format!("{m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn xwt_bias_seeds_the_chain_at_the_bias() {
        // Zero-width input (k = 0): the chain is exactly the seed, so the
        // output must be the bias bit-for-bit, including `-0.0`'s sign.
        let x = Matrix::zeros(2, 0);
        let w = Matrix::zeros(4, 0);
        let bias = [1.5, -0.0, f64::NEG_INFINITY, 2.25];
        let mut out = Matrix::zeros(2, 4);
        matmul_xwt_bias_into(&x, &w, &bias, &mut out);
        for r in 0..2 {
            assert_bits_eq(out.row(r), &bias, "bias row");
        }
    }

    #[test]
    fn noskip_matmul_matches_reference_bitwise() {
        let mut seed = 22;
        for &(m, k, n) in &[(1, 1, 1), (2, 5, 3), (4, 8, 8), (64, 32, 20), (63, 300, 17)] {
            let a = lcg_matrix_special(m, k, &mut seed);
            let b = lcg_matrix_special(k, n, &mut seed);
            let mut fast = Matrix::zeros(m, n);
            let mut reference = Matrix::zeros(m, n);
            matmul_noskip_into(&a, &b, &mut fast);
            matmul_noskip_reference_into(&a, &b, &mut reference);
            assert_bits_eq(
                fast.as_slice(),
                reference.as_slice(),
                &format!("{m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn noskip_matmul_propagates_zero_times_nonfinite() {
        // The defining difference from matmul_into: an exact-zero A value
        // against a non-finite B value must contribute NaN, not be skipped.
        let a = Matrix::from_rows(&[vec![0.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![f64::INFINITY], vec![2.0]]);
        let mut out = Matrix::zeros(1, 1);
        matmul_noskip_into(&a, &b, &mut out);
        assert!(out[(0, 0)].is_nan(), "0 * inf must poison the chain");
    }

    #[test]
    fn atb_accum_matches_reference_bitwise_and_resumes() {
        let mut seed = 23;
        for &(m, o, i) in &[
            (1, 1, 1),
            (3, 2, 9),
            (64, 32, 20),
            (64, 5, 100),
            (7, 33, 35),
        ] {
            let d = lcg_matrix_special(m, o, &mut seed);
            let act = lcg_matrix_special(m, i, &mut seed);
            // Seed both outputs with the same nonzero state: the kernel
            // must resume existing chains, not restart them.
            let init = lcg_vec(o * i, &mut seed);
            let mut fast = init.clone();
            let mut reference = init;
            matmul_at_b_accum_into(&d, &act, &mut fast);
            matmul_at_b_accum_reference_into(&d, &act, &mut reference);
            assert_bits_eq(&fast, &reference, &format!("{m}x{o}x{i}"));
        }
    }

    #[test]
    fn accum_col_sums_matches_per_row_chain() {
        let mut seed = 24;
        let a = lcg_matrix_special(9, 5, &mut seed);
        let mut got = vec![0.0; 5];
        accum_col_sums(&a, &mut got);
        let mut want = vec![0.0; 5];
        for r in 0..a.rows() {
            for (w, x) in want.iter_mut().zip(a.row(r)) {
                *w += x;
            }
        }
        assert_bits_eq(&got, &want, "col sums");
    }
}
