//! Principal Component Analysis via the covariance eigendecomposition.
//!
//! The OEBench pipeline uses PCA in two places: the representative-dataset
//! selection step (§4.4 of the paper — each open-environment feature group is
//! reduced to three dimensions before clustering) and the PCA-CD drift
//! detector (projection onto the first two principal components).

use crate::eigen::symmetric_eigen;
use crate::matrix::Matrix;

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means removed before projection.
    pub mean: Vec<f64>,
    /// Projection matrix: one principal component per column (d x k).
    pub components: Matrix,
    /// Variance explained by each retained component.
    pub explained_variance: Vec<f64>,
    /// Fraction of total variance explained by each retained component.
    pub explained_ratio: Vec<f64>,
}

impl Pca {
    /// Fits a PCA retaining `k` components on a data matrix with one sample
    /// per row.
    ///
    /// `k` is clamped to the number of input columns. A degenerate input
    /// (zero variance) yields zero components and zero projections rather
    /// than NaNs.
    pub fn fit(data: &Matrix, k: usize) -> Pca {
        let d = data.cols();
        let k = k.min(d);
        let cov = data.covariance();
        let eig = symmetric_eigen(&cov);
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();

        let mut components = Matrix::zeros(d, k);
        let mut explained = Vec::with_capacity(k);
        for j in 0..k {
            for i in 0..d {
                components[(i, j)] = eig.vectors[(i, j)];
            }
            explained.push(eig.values[j].max(0.0));
        }
        let ratio = explained
            .iter()
            .map(|&v| if total > 0.0 { v / total } else { 0.0 })
            .collect();
        Pca {
            mean: data.col_means(),
            components,
            explained_variance: explained,
            explained_ratio: ratio,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Projects a single sample into the component space.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(
            row.len(),
            self.mean.len(),
            "pca transform dimension mismatch"
        );
        let centered: Vec<f64> = row.iter().zip(&self.mean).map(|(x, m)| x - m).collect();
        (0..self.n_components())
            .map(|j| {
                centered
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| x * self.components[(i, j)])
                    .sum()
            })
            .collect()
    }

    /// Projects every row of a data matrix; returns an `n x k` matrix.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(data.rows(), self.n_components());
        for r in 0..data.rows() {
            let proj = self.transform_row(data.row(r));
            out.row_mut(r).copy_from_slice(&proj);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    #[test]
    fn first_component_captures_dominant_direction() {
        // Points spread along (1, 1) with tiny noise in the orthogonal axis.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = i as f64 / 10.0;
                let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![t + noise, t - noise]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, 2);
        let c0 = pca.components.col(0);
        // Direction approximately (1,1)/sqrt(2).
        assert!((c0[0].abs() - c0[1].abs()).abs() < 1e-3);
        assert!(pca.explained_ratio[0] > 0.99);
    }

    #[test]
    fn transform_of_mean_is_origin() {
        let data = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 1.0, 0.0],
            vec![3.0, 3.0, 3.0],
        ]);
        let pca = Pca::fit(&data, 2);
        let mean = data.col_means();
        let proj = pca.transform_row(&mean);
        for p in proj {
            assert!(p.abs() < 1e-9);
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64;
                vec![t, 2.0 * t + (i % 3) as f64, (i % 7) as f64]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, 3);
        for i in 0..3 {
            for j in 0..3 {
                let d = dot(&pca.components.col(i), &pca.components.col(j));
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn k_is_clamped_to_dimension() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let pca = Pca::fit(&data, 10);
        assert_eq!(pca.n_components(), 2);
    }

    #[test]
    fn constant_data_projects_to_zero() {
        let data = Matrix::from_rows(&vec![vec![5.0, 5.0]; 10]);
        let pca = Pca::fit(&data, 2);
        let proj = pca.transform(&data);
        assert!(proj.as_slice().iter().all(|x| x.abs() < 1e-9));
        assert!(pca.explained_ratio.iter().all(|&r| r == 0.0));
    }
}
