//! Fenwick-indexed sorted multisets over a fixed value universe — the
//! sufficient statistic behind the incremental (delta) statistics
//! pipeline.
//!
//! A window slide retracts the leaving rows and absorbs the entering
//! ones; every ECDF-shaped statistic (KS distance, equal-width
//! histograms, ECOD tail ranks, min/max ranges) is then *derived* from
//! the maintained counts instead of being recomputed from a fresh sort.
//! Inserts and removals cost `O(log u)` in the universe size `u` via a
//! Fenwick (binary-indexed) tree; rank queries (`count_le`/`count_lt`)
//! are `O(log u)`; full-support walks (KS, histogram rebuild) are one
//! linear pass over the count array.
//!
//! ## Exactness contract
//!
//! Derived statistics are **bit-identical** to their batch
//! counterparts:
//!
//! * [`ks_between`] reproduces [`crate::ks_statistic`] on the expanded
//!   samples bit for bit (same merge points, same division order, same
//!   `max` accumulation);
//! * [`EcdfMultiset::histogram`] reproduces [`Histogram::new`] on the
//!   expanded sample (identical binning arithmetic per distinct value);
//! * [`EcdfMultiset::to_sorted_vec`] equals the `sort_by(f64::total_cmp)`
//!   of the inserted values.
//!
//! The one normalisation: `-0.0` is canonicalised to `+0.0` on insert
//! ([`canonical`]). Every derived statistic above is invariant under
//! that folding — IEEE comparisons treat the two zeros as equal, the
//! histogram bin of `±0.0` is the same bin, and `x - (-0.0)` and
//! `x - 0.0` round identically — so the contract still holds against
//! batch code that saw the uncanonicalised data (the tests pin this).
//! Non-finite values are rejected by [`EcdfMultiset::insert`]/
//! [`EcdfMultiset::remove`] (returning `false`), mirroring the
//! `is_finite` filters of the batch detectors.

use crate::stats::Histogram;
use std::sync::Arc;

/// Folds `-0.0` into `+0.0` and leaves every other value untouched
/// (round-to-nearest: `-0.0 + 0.0 == +0.0`, `x + 0.0 == x` otherwise).
#[inline]
pub fn canonical(x: f64) -> f64 {
    x + 0.0
}

/// The sorted, deduplicated set of values a stream's column can take:
/// the coordinate-compression domain shared by every multiset over that
/// column.
#[derive(Debug, Clone, PartialEq)]
pub struct EcdfUniverse {
    /// Ascending under `total_cmp`; finite; `-0.0`-free.
    values: Vec<f64>,
}

impl EcdfUniverse {
    /// Builds the universe of the finite values in `xs` (canonicalised,
    /// sorted, deduplicated).
    pub fn from_values<I: IntoIterator<Item = f64>>(xs: I) -> EcdfUniverse {
        let mut values: Vec<f64> = xs
            .into_iter()
            .filter(|x| x.is_finite())
            .map(canonical)
            .collect();
        values.sort_by(f64::total_cmp);
        values.dedup_by(|a, b| a.total_cmp(b).is_eq());
        EcdfUniverse { values }
    }

    /// Number of distinct values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the universe holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The distinct value at `rank`.
    #[inline]
    pub fn value_at(&self, rank: usize) -> f64 {
        self.values[rank]
    }

    /// Rank of `x` (already canonical), or `None` when `x` is not in the
    /// universe.
    #[inline]
    fn rank_of(&self, x: f64) -> Option<usize> {
        let i = self.values.partition_point(|v| v.total_cmp(&x).is_lt());
        (i < self.values.len() && self.values[i].total_cmp(&x).is_eq()).then_some(i)
    }

    /// Number of universe values `<= x` (for arbitrary finite `x`).
    #[inline]
    fn ranks_le(&self, x: f64) -> usize {
        self.values.partition_point(|v| v.total_cmp(&x).is_le())
    }

    /// Number of universe values `< x`.
    #[inline]
    fn ranks_lt(&self, x: f64) -> usize {
        self.values.partition_point(|v| v.total_cmp(&x).is_lt())
    }
}

/// A multiset of finite `f64` values drawn from a shared
/// [`EcdfUniverse`], with `O(log u)` insert/remove and rank queries.
///
/// Holds a direct per-rank count array (for linear support walks) plus
/// a Fenwick tree over it (for logarithmic prefix counts).
#[derive(Debug, Clone)]
pub struct EcdfMultiset {
    universe: Arc<EcdfUniverse>,
    /// Multiplicity per universe rank.
    counts: Vec<u32>,
    /// Fenwick tree over `counts` (1-based internally).
    fenwick: Vec<u64>,
    len: usize,
}

impl EcdfMultiset {
    /// An empty multiset over `universe`.
    pub fn new(universe: Arc<EcdfUniverse>) -> EcdfMultiset {
        let u = universe.len();
        EcdfMultiset {
            universe,
            counts: vec![0; u],
            fenwick: vec![0; u + 1],
            len: 0,
        }
    }

    /// The shared universe.
    #[inline]
    pub fn universe(&self) -> &Arc<EcdfUniverse> {
        &self.universe
    }

    /// Number of values held (with multiplicity).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn fenwick_add(&mut self, rank: usize, delta: i64) {
        let mut i = rank + 1;
        while i < self.fenwick.len() {
            self.fenwick[i] = self.fenwick[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Count of values in ranks `0..rank` — `O(log u)`.
    fn fenwick_prefix(&self, rank: usize) -> usize {
        let mut i = rank;
        let mut total = 0u64;
        while i > 0 {
            total = total.wrapping_add(self.fenwick[i]);
            i -= i & i.wrapping_neg();
        }
        total as usize
    }

    /// Inserts one occurrence of `x`; returns `false` (no-op) for
    /// non-finite `x`.
    ///
    /// # Panics
    /// Panics when finite `x` is not in the universe — the universe must
    /// be built over every value the stream can present.
    pub fn insert(&mut self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        let rank = self
            .universe
            .rank_of(canonical(x))
            .expect("value outside the multiset universe"); // oeb-lint: allow(panic-in-library) -- documented contract: universe covers the stream
        self.counts[rank] += 1;
        self.fenwick_add(rank, 1);
        self.len += 1;
        true
    }

    /// Removes one occurrence of `x`; returns `false` (no-op) for
    /// non-finite `x`.
    ///
    /// # Panics
    /// Panics when finite `x` is not currently held (exact retraction:
    /// only previously absorbed values may leave).
    pub fn remove(&mut self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        let rank = self
            .universe
            .rank_of(canonical(x))
            .expect("value outside the multiset universe"); // oeb-lint: allow(panic-in-library) -- documented contract: universe covers the stream
        assert!(self.counts[rank] > 0, "retracting a value never absorbed");
        self.counts[rank] -= 1;
        self.fenwick_add(rank, -1);
        self.len -= 1;
        true
    }

    /// Number of held values `<= x` — `O(log u)`.
    pub fn count_le(&self, x: f64) -> usize {
        self.fenwick_prefix(self.universe.ranks_le(canonical(x)))
    }

    /// Number of held values `< x` — `O(log u)`.
    pub fn count_lt(&self, x: f64) -> usize {
        self.fenwick_prefix(self.universe.ranks_lt(canonical(x)))
    }

    /// Smallest held value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.iter_nonzero().next().map(|(v, _)| v)
    }

    /// Largest held value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|r| self.universe.value_at(r))
    }

    /// Ascending `(value, multiplicity)` pairs over the support.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (f64, u32)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(r, &c)| (self.universe.value_at(r), c))
    }

    /// Expands the multiset into the ascending sorted sample — equal to
    /// sorting the inserted values with `f64::total_cmp` (after `-0.0`
    /// canonicalisation).
    pub fn to_sorted_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for (v, c) in self.iter_nonzero() {
            out.extend(std::iter::repeat_n(v, c as usize));
        }
        out
    }

    /// Equal-width histogram of the held values — bit-identical to
    /// `Histogram::new(&self.to_sorted_vec(), bins, lo, hi)` (one bin
    /// computation per distinct value instead of per sample).
    pub fn histogram(&self, bins: usize, lo: f64, hi: f64) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        let mut counts = vec![0usize; bins];
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let mut total = 0usize;
        for (x, c) in self.iter_nonzero() {
            // Identical arithmetic to `Histogram::new`, applied once per
            // distinct value.
            let frac = ((x - lo) / span).clamp(0.0, 1.0);
            let mut b = (frac * bins as f64) as usize;
            if b >= bins {
                b = bins - 1;
            }
            counts[b] += c as usize;
            total += c as usize;
        }
        Histogram {
            lo,
            hi,
            counts,
            total,
        }
    }

    /// Adds every occurrence held by `other` (same universe) into this
    /// one — the HDDDM "append window to baseline" step, costing
    /// `O(support · log u)` instead of a full matrix rebuild.
    pub fn absorb_all(&mut self, other: &EcdfMultiset) {
        debug_assert!(Arc::ptr_eq(&self.universe, &other.universe));
        for rank in 0..other.counts.len() {
            let c = other.counts[rank];
            if c > 0 {
                self.counts[rank] += c;
                self.fenwick_add(rank, c as i64);
                self.len += c as usize;
            }
        }
    }

    /// Copies another multiset's contents (same universe) into this one
    /// — the "reference := current window" reset of the drift detectors.
    pub fn clone_from_set(&mut self, other: &EcdfMultiset) {
        debug_assert!(Arc::ptr_eq(&self.universe, &other.universe));
        self.counts.copy_from_slice(&other.counts);
        self.fenwick.copy_from_slice(&other.fenwick);
        self.len = other.len;
    }

    /// Empties the multiset.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.fenwick.fill(0);
        self.len = 0;
    }
}

/// Two-sample KS statistic between multisets over the same universe —
/// bit-identical to [`crate::ks_statistic`] on the expanded samples.
///
/// One linear walk over the shared support: at each distinct value
/// present in either sample the cumulative counts divide by the sample
/// sizes exactly as the batch merge does (`count_le / n`), and the
/// running `max` visits the same candidates in the same ascending
/// order. (The batch merge stops once one side is exhausted; the points
/// it skips cannot raise the supremum, so walking them is harmless.)
pub fn ks_between(a: &EcdfMultiset, b: &EcdfMultiset) -> f64 {
    debug_assert!(Arc::ptr_eq(&a.universe, &b.universe));
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0u64, 0u64);
    let mut d: f64 = 0.0;
    for r in 0..a.counts.len() {
        let (ca, cb) = (a.counts[r], b.counts[r]);
        if ca == 0 && cb == 0 {
            continue;
        }
        i += ca as u64;
        j += cb as u64;
        let fa = i as f64 / na;
        let fb = j as f64 / nb;
        d = d.max((fa - fb).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ks_statistic, Histogram};

    /// Deterministic LCG stream in [-1, 1] with a sprinkle of repeats,
    /// zeros of both signs, and non-finite values.
    fn messy_values(n: usize, seed: &mut u64) -> Vec<f64> {
        (0..n)
            .map(|k| {
                *seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                match *seed % 13 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => f64::NAN,
                    3 => f64::INFINITY,
                    4 => (k % 5) as f64, // forced repeats
                    _ => ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0,
                }
            })
            .collect()
    }

    fn multiset_of(universe: &Arc<EcdfUniverse>, xs: &[f64]) -> EcdfMultiset {
        let mut ms = EcdfMultiset::new(Arc::clone(universe));
        for &x in xs {
            ms.insert(x);
        }
        ms
    }

    #[test]
    fn sorted_expansion_matches_total_cmp_sort() {
        let mut seed = 7u64;
        let xs = messy_values(500, &mut seed);
        let universe = Arc::new(EcdfUniverse::from_values(xs.iter().copied()));
        let ms = multiset_of(&universe, &xs);
        let mut expect: Vec<f64> = xs
            .iter()
            .copied()
            .filter(|x| x.is_finite())
            .map(canonical)
            .collect();
        expect.sort_by(f64::total_cmp);
        let got = ms.to_sorted_vec();
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn rank_queries_match_partition_point() {
        let mut seed = 11u64;
        let xs = messy_values(300, &mut seed);
        let universe = Arc::new(EcdfUniverse::from_values(xs.iter().copied()));
        let ms = multiset_of(&universe, &xs);
        let sorted = ms.to_sorted_vec();
        for &q in &[-2.0, -0.5, -0.0, 0.0, 0.25, 1.0, 3.0] {
            assert_eq!(ms.count_le(q), sorted.partition_point(|&v| v <= q), "{q}");
            assert_eq!(ms.count_lt(q), sorted.partition_point(|&v| v < q), "{q}");
        }
    }

    #[test]
    fn ks_between_matches_batch_statistic_bitwise() {
        let mut seed = 3u64;
        for trial in 0..20 {
            let xs = messy_values(200 + trial * 17, &mut seed);
            let ys = messy_values(150 + trial * 11, &mut seed);
            let universe = Arc::new(EcdfUniverse::from_values(
                xs.iter().chain(ys.iter()).copied(),
            ));
            let (a, b) = (multiset_of(&universe, &xs), multiset_of(&universe, &ys));
            // The batch side sees the raw (uncanonicalised) samples, as
            // the detectors do.
            let clean =
                |v: &[f64]| -> Vec<f64> { v.iter().copied().filter(|x| x.is_finite()).collect() };
            let expect = ks_statistic(&clean(&xs), &clean(&ys));
            assert_eq!(ks_between(&a, &b).to_bits(), expect.to_bits(), "t{trial}");
        }
    }

    #[test]
    fn ks_between_empty_sides_are_zero() {
        let universe = Arc::new(EcdfUniverse::from_values([1.0, 2.0]));
        let empty = EcdfMultiset::new(Arc::clone(&universe));
        let full = multiset_of(&universe, &[1.0, 2.0]);
        assert_eq!(ks_between(&empty, &full), 0.0);
        assert_eq!(ks_between(&full, &empty), 0.0);
    }

    #[test]
    fn histogram_matches_batch_bitwise() {
        let mut seed = 5u64;
        let xs = messy_values(400, &mut seed);
        let universe = Arc::new(EcdfUniverse::from_values(xs.iter().copied()));
        let ms = multiset_of(&universe, &xs);
        for &(lo, hi) in &[(-1.0, 1.0), (-0.0, 0.5), (0.0, 0.0), (-2.0, 3.0)] {
            let got = ms.histogram(16, lo, hi);
            let expect = Histogram::new(&xs, 16, lo, hi);
            assert_eq!(got.counts, expect.counts, "lo={lo} hi={hi}");
            assert_eq!(got.total, expect.total);
        }
    }

    #[test]
    fn retraction_restores_counts_exactly() {
        let mut seed = 9u64;
        let xs = messy_values(100, &mut seed);
        let extra = messy_values(40, &mut seed);
        let universe = Arc::new(EcdfUniverse::from_values(
            xs.iter().chain(extra.iter()).copied(),
        ));
        let base = multiset_of(&universe, &xs);
        let mut ms = base.clone();
        for &x in &extra {
            ms.insert(x);
        }
        for &x in &extra {
            ms.remove(x);
        }
        assert_eq!(ms.len(), base.len());
        assert_eq!(ms.counts, base.counts);
        assert_eq!(ms.fenwick, base.fenwick);
    }

    #[test]
    fn min_max_and_clone_from_set() {
        let universe = Arc::new(EcdfUniverse::from_values([3.0, -1.0, 2.0, -1.0]));
        let ms = multiset_of(&universe, &[2.0, -1.0]);
        assert_eq!(ms.min(), Some(-1.0));
        assert_eq!(ms.max(), Some(2.0));
        let mut other = EcdfMultiset::new(Arc::clone(&universe));
        other.clone_from_set(&ms);
        assert_eq!(other.to_sorted_vec(), ms.to_sorted_vec());
        other.clear();
        assert!(other.is_empty());
        assert_eq!(other.min(), None);
    }

    #[test]
    fn absorb_all_merges_multisets() {
        let mut seed = 21u64;
        let xs = messy_values(120, &mut seed);
        let ys = messy_values(80, &mut seed);
        let universe = Arc::new(EcdfUniverse::from_values(
            xs.iter().chain(ys.iter()).copied(),
        ));
        let mut merged = multiset_of(&universe, &xs);
        merged.absorb_all(&multiset_of(&universe, &ys));
        let both: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let expect = multiset_of(&universe, &both);
        assert_eq!(merged.len(), expect.len());
        assert_eq!(merged.counts, expect.counts);
        assert_eq!(merged.fenwick, expect.fenwick);
    }

    #[test]
    fn non_finite_values_are_rejected_not_stored() {
        let universe = Arc::new(EcdfUniverse::from_values([1.0, f64::NAN, f64::INFINITY]));
        assert_eq!(universe.len(), 1);
        let mut ms = EcdfMultiset::new(Arc::clone(&universe));
        assert!(!ms.insert(f64::NAN));
        assert!(!ms.remove(f64::NEG_INFINITY));
        assert!(ms.insert(1.0));
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn negative_zero_folds_into_positive_zero() {
        let universe = Arc::new(EcdfUniverse::from_values([-0.0, 0.0, 1.0]));
        assert_eq!(universe.len(), 2);
        let mut ms = EcdfMultiset::new(Arc::clone(&universe));
        ms.insert(-0.0);
        ms.insert(0.0);
        assert_eq!(ms.count_le(-0.0), 2);
        assert_eq!(ms.count_lt(0.0), 0);
        ms.remove(-0.0);
        ms.remove(0.0);
        assert!(ms.is_empty());
    }
}
