//! Exact t-SNE (t-distributed Stochastic Neighbor Embedding).
//!
//! The paper uses t-SNE to project preprocessed windows into 2D for the
//! case-study visualisations (Figure 6). The exact O(n^2) formulation is
//! used here; the case studies subsample windows to at most a couple of
//! thousand points, where exact t-SNE is comfortably fast and avoids the
//! approximation error of Barnes-Hut.

use crate::kernels;
use crate::matrix::{sq_dist, Matrix};
use rand::Rng;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Output dimensionality (2 for the paper's scatter plots).
    pub dims: usize,
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of training.
    pub exaggeration: f64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            dims: 2,
            perplexity: 30.0,
            iterations: 250,
            learning_rate: 100.0,
            exaggeration: 4.0,
        }
    }
}

/// Embeds the rows of `data` into `config.dims` dimensions.
///
/// Returns an `n x dims` matrix. For inputs with fewer than 4 rows the
/// embedding is a small random jitter (t-SNE is meaningless there).
pub fn tsne<R: Rng>(data: &Matrix, config: &TsneConfig, rng: &mut R) -> Matrix {
    let n = data.rows();
    let dims = config.dims;
    let mut y = Matrix::zeros(n, dims);
    for v in y.as_mut_slice() {
        *v = rng.gen::<f64>() * 1e-2 - 5e-3;
    }
    if n < 4 {
        return y;
    }

    let p = joint_probabilities(data, config.perplexity);
    let mut gains = vec![1.0f64; n * dims];
    let mut velocity = vec![0.0f64; n * dims];
    // Affinity and gradient scratch reused across iterations.
    let mut num = vec![0.0f64; n * n];
    let mut grad = vec![0.0f64; n * dims];
    let exaggeration_end = config.iterations / 4;

    for iter in 0..config.iterations {
        let exag = if iter < exaggeration_end {
            config.exaggeration
        } else {
            1.0
        };
        let momentum = if iter < exaggeration_end { 0.5 } else { 0.8 };

        // Student-t affinities in the embedding.
        num.fill(0.0);
        let mut z = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let q = 1.0 / (1.0 + sq_dist(y.row(i), y.row(j)));
                num[i * n + j] = q;
                num[j * n + i] = q;
                z += 2.0 * q;
            }
        }
        let z = z.max(1e-12);

        // Gradient: 4 * sum_j (p_ij - q_ij) q'_ij (y_i - y_j).
        grad.fill(0.0);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = num[i * n + j] / z;
                let mult = (exag * p[i * n + j] - q) * num[i * n + j];
                for d in 0..dims {
                    grad[i * dims + d] += 4.0 * mult * (y[(i, d)] - y[(j, d)]);
                }
            }
        }

        // Momentum update with adaptive gains.
        for idx in 0..n * dims {
            let same_sign = grad[idx].signum() == velocity[idx].signum();
            gains[idx] = if same_sign {
                (gains[idx] * 0.8).max(0.01)
            } else {
                gains[idx] + 0.2
            };
            velocity[idx] =
                momentum * velocity[idx] - config.learning_rate * gains[idx] * grad[idx];
        }
        for i in 0..n {
            kernels::add_assign(y.row_mut(i), &velocity[i * dims..(i + 1) * dims]);
        }

        // Keep the embedding centred.
        let means = y.col_means();
        for i in 0..n {
            kernels::sub_assign(y.row_mut(i), &means);
        }
    }
    y
}

/// Symmetric joint probabilities P with per-point bandwidths found by binary
/// search so each conditional distribution has the requested perplexity.
fn joint_probabilities(data: &Matrix, perplexity: f64) -> Vec<f64> {
    let n = data.rows();
    let target_entropy = perplexity.max(2.0).ln();
    let mut p = vec![0.0f64; n * n];

    // Precompute pairwise squared distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = sq_dist(data.row(i), data.row(j));
            d2[i * n + j] = d;
            d2[j * n + i] = d;
        }
    }

    let mut row = vec![0.0f64; n];
    for i in 0..n {
        // Binary search for beta = 1 / (2 sigma^2).
        let mut beta = 1.0f64;
        let mut beta_min = f64::NEG_INFINITY;
        let mut beta_max = f64::INFINITY;
        for _ in 0..50 {
            let mut sum = 0.0;
            for j in 0..n {
                row[j] = if i == j {
                    0.0
                } else {
                    (-beta * d2[i * n + j]).exp()
                };
                sum += row[j];
            }
            let sum = sum.max(1e-300);
            // Shannon entropy of the conditional distribution.
            let mut entropy = 0.0;
            for j in 0..n {
                if row[j] > 0.0 {
                    let pj = row[j] / sum;
                    entropy -= pj * pj.ln();
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_finite() {
                    (beta + beta_max) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_max = beta;
                beta = if beta_min.is_finite() {
                    (beta + beta_min) / 2.0
                } else {
                    beta / 2.0
                };
            }
        }
        let sum: f64 = row.iter().sum::<f64>().max(1e-300);
        for j in 0..n {
            p[i * n + j] = row[j] / sum;
        }
    }

    // Symmetrise and normalise.
    let mut total = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let v = (p[i * n + j] + p[j * n + i]) / (2.0 * n as f64);
            let v = v.max(1e-12);
            p[i * n + j] = v;
            p[j * n + i] = v;
            total += 2.0 * v;
        }
    }
    for v in &mut p {
        *v /= total;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs(n_per: usize) -> Matrix {
        let mut rows = Vec::new();
        for i in 0..n_per {
            let j = (i % 5) as f64 * 0.05;
            rows.push(vec![0.0 + j, 0.0 - j, j]);
        }
        for i in 0..n_per {
            let j = (i % 5) as f64 * 0.05;
            rows.push(vec![20.0 + j, 20.0 - j, 20.0 + j]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn output_shape_and_finiteness() {
        let data = two_blobs(15);
        let mut rng = StdRng::seed_from_u64(3);
        let emb = tsne(&data, &TsneConfig::default(), &mut rng);
        assert_eq!(emb.shape(), (30, 2));
        assert!(emb.is_finite());
    }

    #[test]
    fn separated_blobs_stay_separated() {
        let data = two_blobs(20);
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = TsneConfig {
            perplexity: 10.0,
            iterations: 300,
            ..Default::default()
        };
        let emb = tsne(&data, &cfg, &mut rng);
        // Mean intra-blob distance should be well below the inter-blob
        // centroid distance.
        let centroid = |range: std::ops::Range<usize>| {
            let mut c = vec![0.0; 2];
            for i in range.clone() {
                for d in 0..2 {
                    c[d] += emb[(i, d)];
                }
            }
            for d in 0..2 {
                c[d] /= range.len() as f64;
            }
            c
        };
        let c0 = centroid(0..20);
        let c1 = centroid(20..40);
        let inter = crate::matrix::euclidean(&c0, &c1);
        let mut intra = 0.0;
        for i in 0..20 {
            intra += crate::matrix::euclidean(emb.row(i), &c0);
        }
        intra /= 20.0;
        assert!(
            inter > 2.0 * intra,
            "inter {inter} should exceed 2x intra {intra}"
        );
    }

    #[test]
    fn tiny_input_does_not_panic() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut rng = StdRng::seed_from_u64(5);
        let emb = tsne(&data, &TsneConfig::default(), &mut rng);
        assert_eq!(emb.shape(), (2, 2));
    }

    #[test]
    fn embedding_is_centred() {
        let data = two_blobs(10);
        let mut rng = StdRng::seed_from_u64(8);
        let emb = tsne(
            &data,
            &TsneConfig {
                iterations: 50,
                ..Default::default()
            },
            &mut rng,
        );
        for m in emb.col_means() {
            assert!(m.abs() < 1e-9);
        }
    }
}
