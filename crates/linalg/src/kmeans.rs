//! K-Means clustering with K-Means++ initialisation.
//!
//! Used by the representative-dataset selection step (§4.4 of the paper):
//! the 55 datasets are clustered into five groups in the reduced
//! open-environment feature space and the dataset nearest each centroid is
//! selected.

use crate::kernels;
use crate::matrix::{sq_dist, Matrix};
use rand::Rng;

/// Result of a K-Means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids, one per row (k x d).
    pub centroids: Matrix,
    /// Cluster index assigned to each input row.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of samples to their assigned centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Index of the input row nearest to each centroid (the "representative"
    /// per cluster). Empty clusters yield `None`.
    pub fn representatives(&self, data: &Matrix) -> Vec<Option<usize>> {
        let k = self.centroids.rows();
        let mut best: Vec<Option<(usize, f64)>> = vec![None; k];
        for r in 0..data.rows() {
            let c = self.assignments[r];
            let d = sq_dist(data.row(r), self.centroids.row(c));
            match best[c] {
                Some((_, bd)) if bd <= d => {}
                _ => best[c] = Some((r, d)),
            }
        }
        best.into_iter().map(|b| b.map(|(r, _)| r)).collect()
    }
}

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f64,
    /// Number of random restarts; the best inertia wins.
    pub n_init: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 5,
            max_iter: 300,
            tol: 1e-8,
            n_init: 5,
        }
    }
}

/// Runs K-Means with K-Means++ seeding.
///
/// # Panics
/// Panics when `data` has fewer rows than `config.k` or `k == 0`.
pub fn kmeans<R: Rng>(data: &Matrix, config: &KMeansConfig, rng: &mut R) -> KMeansResult {
    assert!(config.k > 0, "k must be positive");
    assert!(
        data.rows() >= config.k,
        "k-means needs at least k={} rows, got {}",
        config.k,
        data.rows()
    );
    let mut best: Option<KMeansResult> = None;
    for _ in 0..config.n_init.max(1) {
        let result = kmeans_once(data, config, rng);
        match &best {
            Some(b) if b.inertia <= result.inertia => {}
            _ => best = Some(result),
        }
    }
    best.expect("at least one k-means restart runs") // oeb-lint: allow(panic-in-library) -- n_init.max(1) guarantees one iteration
}

fn kmeans_once<R: Rng>(data: &Matrix, config: &KMeansConfig, rng: &mut R) -> KMeansResult {
    let (n, d) = data.shape();
    let k = config.k;
    let mut centroids = plus_plus_init(data, k, rng);
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    // Accumulators reused across Lloyd iterations instead of reallocated.
    let mut sums = Matrix::zeros(k, d);
    let mut counts = vec![0usize; k];

    for it in 0..config.max_iter {
        iterations = it + 1;
        // Assignment step.
        for r in 0..n {
            let row = data.row(r);
            let mut best_c = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dist = sq_dist(row, centroids.row(c));
                if dist < best_d {
                    best_d = dist;
                    best_c = c;
                }
            }
            assignments[r] = best_c;
        }
        // Update step.
        sums.as_mut_slice().fill(0.0);
        counts.fill(0);
        for r in 0..n {
            let c = assignments[r];
            counts[c] += 1;
            kernels::add_assign(sums.row_mut(c), data.row(r));
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at a random data point.
                let r = rng.gen_range(0..n);
                movement += sq_dist(centroids.row(c), data.row(r));
                centroids.row_mut(c).copy_from_slice(data.row(r));
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            // Fused mean/movement/write-back: one pass, no temporary row.
            // `delta` starts at -0.0 and accumulates squared diffs in
            // column order — the same chain as `sq_dist(old, new)`.
            let mut delta = -0.0;
            for (cur, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                let newv = s * inv;
                let diff = *cur - newv;
                delta += diff * diff;
                *cur = newv;
            }
            movement += delta;
        }
        if movement < config.tol {
            break;
        }
    }

    let inertia = (0..n)
        .map(|r| sq_dist(data.row(r), centroids.row(assignments[r])))
        .sum();
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

/// K-Means++ initialisation: each subsequent centre is sampled with
/// probability proportional to its squared distance from the nearest chosen
/// centre.
fn plus_plus_init<R: Rng>(data: &Matrix, k: usize, rng: &mut R) -> Matrix {
    let n = data.rows();
    let mut centroids = Matrix::zeros(k, data.cols());
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));

    let mut dists: Vec<f64> = (0..n)
        .map(|r| sq_dist(data.row(r), centroids.row(0)))
        .collect();

    for c in 1..k {
        let total: f64 = dists.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target <= d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(data.row(chosen));
        for r in 0..n {
            let d = sq_dist(data.row(r), centroids.row(c));
            if d < dists[r] {
                dists[r] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_blobs() -> Matrix {
        let mut rows = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)] {
            for i in 0..30 {
                let jx = (i % 5) as f64 * 0.1;
                let jy = (i % 7) as f64 * 0.1;
                rows.push(vec![cx + jx, cy + jy]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let data = three_blobs();
        let mut rng = StdRng::seed_from_u64(42);
        let res = kmeans(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
            &mut rng,
        );
        // All members of each blob share a cluster label.
        for blob in 0..3 {
            let first = res.assignments[blob * 30];
            for i in 0..30 {
                assert_eq!(res.assignments[blob * 30 + i], first);
            }
        }
        // Inertia for well-separated tight blobs is small.
        assert!(res.inertia < 50.0, "inertia = {}", res.inertia);
    }

    #[test]
    fn representatives_belong_to_their_cluster() {
        let data = three_blobs();
        let mut rng = StdRng::seed_from_u64(7);
        let res = kmeans(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
            &mut rng,
        );
        let reps = res.representatives(&data);
        for (c, rep) in reps.iter().enumerate() {
            let r = rep.expect("non-empty cluster");
            assert_eq!(res.assignments[r], c);
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![9.0, 1.0]]);
        let mut rng = StdRng::seed_from_u64(1);
        let res = kmeans(
            &data,
            &KMeansConfig {
                k: 3,
                n_init: 10,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(res.inertia < 1e-9);
    }

    #[test]
    #[should_panic(expected = "k-means needs at least")]
    fn too_few_rows_panics() {
        let data = Matrix::from_rows(&[vec![0.0]]);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = kmeans(
            &data,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut rng,
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = three_blobs();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            kmeans(
                &data,
                &KMeansConfig {
                    k: 3,
                    ..Default::default()
                },
                &mut rng,
            )
            .assignments
        };
        assert_eq!(run(99), run(99));
    }
}
