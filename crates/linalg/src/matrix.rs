//! Dense row-major matrix of `f64` with the small set of operations the
//! benchmark pipeline needs (products, transposes, row/column views).
//!
//! The benchmark operates on datasets with at most a few thousand columns,
//! so a simple contiguous `Vec<f64>` layout is the right representation.
//! Hot arithmetic (products, dot products, distances) is delegated to the
//! [`crate::kernels`] module, whose blocked/unrolled loops are bit-identical
//! to the naive reference loops they replaced.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f64`. The default value is the empty
/// `0 x 0` matrix (the natural seed for scratch buffers that are
/// reshaped with [`Matrix::reset_zeroed`] before use).
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Reshapes in place to `rows x cols`, reusing the allocation, and
    /// zeroes every entry. The scratch-buffer primitive for batched
    /// kernels that reuse one matrix across differently-sized batches.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow two distinct rows at once (for row elimination and
    /// swaps without cloning either row).
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of range.
    pub fn rows_pair_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert!(
            a != b && a < self.rows && b < self.rows,
            "rows_pair_mut needs two distinct in-range rows, got {a} and {b} of {}",
            self.rows
        );
        let cols = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * cols);
            (&mut lo[a * cols..(a + 1) * cols], &mut hi[..cols])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * cols);
            (&mut hi[..cols], &mut lo[b * cols..(b + 1) * cols])
        }
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernels::matmul_into(self, other, &mut out);
        out
    }

    /// Matrix product into a preallocated output (see
    /// [`crate::kernels::matmul_into`]).
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::kernels::matmul_into(self, other, out);
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows).map(|r| dot(self.row(r), v)).collect()
    }

    /// Matrix–vector product into a reused output buffer.
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        crate::kernels::matvec_into(self, v, out);
    }

    /// Element-wise in-place scaling.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Mean of each column.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            crate::kernels::add_assign(&mut means, self.row(r));
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Population standard deviation of each column.
    pub fn col_stds(&self) -> Vec<f64> {
        let means = self.col_means();
        let mut vars = vec![0.0; self.cols];
        for r in 0..self.rows {
            for ((v, &m), &x) in vars.iter_mut().zip(&means).zip(self.row(r)) {
                let d = x - m;
                *v += d * d;
            }
        }
        let n = (self.rows.max(1)) as f64;
        vars.iter().map(|v| (v / n).sqrt()).collect()
    }

    /// Subtracts the column means in place; returns the means.
    pub fn center_columns(&mut self) -> Vec<f64> {
        let means = self.col_means();
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            crate::kernels::sub_assign(row, &means);
        }
        means
    }

    /// Sample covariance matrix (`(X - mean)^T (X - mean) / (n - 1)`).
    pub fn covariance(&self) -> Matrix {
        let mut centered = self.clone();
        centered.center_columns();
        let mut cov = centered.transpose().matmul(&centered);
        let denom = if self.rows > 1 { self.rows - 1 } else { 1 } as f64;
        cov.scale(1.0 / denom);
        cov
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul<f64> for Matrix {
    type Output = Matrix;
    /// Consuming scalar multiply: scales the buffer in place instead of
    /// cloning it first (callers that need to keep the original can
    /// `clone()` explicitly).
    fn mul(mut self, s: f64) -> Matrix {
        self.scale(s);
        self
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernels::dot(a, b)
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernels::sq_dist(a, b)
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(4);
        let v = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(m.matvec(&v), v);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn col_means_and_stds() {
        let a = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
        assert_eq!(a.col_means(), vec![2.0, 10.0]);
        let stds = a.col_stds();
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert!(stds[1].abs() < 1e-12);
    }

    #[test]
    fn center_columns_zeroes_means() {
        let mut a = Matrix::from_rows(&[vec![1.0, 4.0], vec![3.0, 8.0], vec![5.0, 0.0]]);
        a.center_columns();
        for m in a.col_means() {
            assert!(m.abs() < 1e-12);
        }
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let cov = a.covariance();
        // var(x) = 1, cov(x, 2x) = 2, var(2x) = 4 (sample variance).
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn consuming_scalar_mul_scales_in_place() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 4.0]]);
        let ptr = a.as_slice().as_ptr();
        let scaled = a * 2.0;
        // The buffer is reused, not cloned.
        assert_eq!(scaled.as_slice().as_ptr(), ptr);
        assert_eq!(scaled.row(0), &[2.0, -4.0]);
        assert_eq!(scaled.row(1), &[1.0, 8.0]);
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let mut out = Matrix::zeros(2, 2);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.5, -1.0], vec![2.0, 2.0]]);
        let sum = &a + &b;
        let back = &sum - &b;
        assert_eq!(back, a);
    }
}
