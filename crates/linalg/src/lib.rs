//! # oeb-linalg
//!
//! Dense linear algebra and statistics kernels for the OEBench
//! reproduction: matrices, a Jacobi eigensolver, PCA, K-Means++, exact
//! t-SNE, and the distribution-distance measures (Hellinger, KL,
//! Kolmogorov-Smirnov) that the drift detectors build on.
//!
//! Everything is implemented from scratch on `f64` with deterministic,
//! seedable randomness; dataset dimensionality in this benchmark is small
//! (≤ a few hundred features), so simple dense algorithms are the right
//! tool.

// Index loops over parallel numeric buffers are clearer than iterator
// chains in these kernels.
#![allow(clippy::needless_range_loop)]

pub mod ecdf;
pub mod eigen;
pub mod kernels;
pub mod kmeans;
pub mod matrix;
pub mod pca;
pub mod solve;
pub mod stats;
pub mod tsne;

pub use ecdf::{ks_between, EcdfMultiset, EcdfUniverse};
pub use eigen::{symmetric_eigen, Eigen};
pub use kernels::{axpy, dot_from, dot_sub_from, matmul_into, matvec_into, scale_add};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use matrix::{dot, euclidean, norm, sq_dist, Matrix};
pub use pca::Pca;
pub use solve::{ridge_regression, solve};
pub use stats::{
    five_number, hellinger, kl_divergence, ks_p_value, ks_statistic, mean, pearson, quantile,
    skewness, std_dev, variance, FiveNumber, Histogram,
};
pub use tsne::{tsne, TsneConfig};
