//! Scalar statistics, histograms, and distribution-distance measures used
//! throughout the drift detectors and the statistics-extraction pipeline.

use crate::kernels;

/// Arithmetic mean; `0.0` on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    kernels::sum(xs) / xs.len() as f64
}

/// Population variance; `0.0` on empty input.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    kernels::sq_dev_sum(xs, m) / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample skewness (Fisher-Pearson); `0.0` for fewer than 3 samples or zero
/// variance.
pub fn skewness(xs: &[f64]) -> f64 {
    if xs.len() < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s <= 0.0 {
        return 0.0;
    }
    let n = xs.len() as f64;
    xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n
}

/// Linear-interpolation quantile for `q` in `[0, 1]`; `0.0` on empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Five-number summary (min, q1, median, q3, max) used by the Figure 3
/// box-plot reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

/// Computes a five-number summary; all-zero on empty input.
pub fn five_number(xs: &[f64]) -> FiveNumber {
    FiveNumber {
        min: quantile(xs, 0.0),
        q1: quantile(xs, 0.25),
        median: quantile(xs, 0.5),
        q3: quantile(xs, 0.75),
        max: quantile(xs, 1.0),
    }
}

/// An equal-width histogram over a fixed range, exposed as a probability
/// distribution (counts normalised to sum 1).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub lo: f64,
    /// Exclusive upper bound of the last bin (values above clamp to it).
    pub hi: f64,
    /// Raw bin counts.
    pub counts: Vec<usize>,
    /// Total number of observations.
    pub total: usize,
}

impl Histogram {
    /// Builds a histogram of `xs` with `bins` equal-width bins over
    /// `[lo, hi]`. Out-of-range values clamp to the edge bins; non-finite
    /// values are skipped.
    pub fn new(xs: &[f64], bins: usize, lo: f64, hi: f64) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        let mut counts = vec![0usize; bins];
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let mut total = 0usize;
        for &x in xs {
            if !x.is_finite() {
                continue;
            }
            let frac = ((x - lo) / span).clamp(0.0, 1.0);
            let mut b = (frac * bins as f64) as usize;
            if b >= bins {
                b = bins - 1;
            }
            counts[b] += 1;
            total += 1;
        }
        Histogram {
            lo,
            hi,
            counts,
            total,
        }
    }

    /// Builds a histogram over the data's own min/max range.
    pub fn from_data(xs: &[f64], bins: usize) -> Histogram {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !lo.is_finite() || !hi.is_finite() {
            return Histogram::new(&[], bins, 0.0, 1.0);
        }
        Histogram::new(xs, bins, lo, if hi > lo { hi } else { lo + 1.0 })
    }

    /// Probability mass per bin.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

/// Hellinger distance between two probability vectors (in `[0, 1]` for
/// normalised inputs). Used by the HDDDM drift detector.
pub fn hellinger(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "hellinger requires equal-length inputs");
    let s: f64 = p
        .iter()
        .zip(q)
        .map(|(&a, &b)| {
            let d = a.max(0.0).sqrt() - b.max(0.0).sqrt();
            d * d
        })
        .sum();
    (s / 2.0).sqrt()
}

/// Smoothed Kullback-Leibler divergence `KL(p || q)` between probability
/// vectors, with Laplace smoothing so empty bins do not produce infinities.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "kl requires equal-length inputs");
    let eps = 1e-9;
    let norm_p: f64 = p.iter().map(|x| x + eps).sum();
    let norm_q: f64 = q.iter().map(|x| x + eps).sum();
    p.iter()
        .zip(q)
        .map(|(&a, &b)| {
            let pa = (a + eps) / norm_p;
            let qb = (b + eps) / norm_q;
            pa * (pa / qb).ln()
        })
        .sum()
}

/// Two-sample Kolmogorov-Smirnov statistic (sup distance between empirical
/// CDFs).
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let x = sa[i].min(sb[j]);
        while i < na && sa[i] <= x {
            i += 1;
        }
        while j < nb && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Asymptotic two-sample KS p-value via the Kolmogorov distribution
/// `Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)`.
pub fn ks_p_value(d: f64, na: usize, nb: usize) -> f64 {
    if na == 0 || nb == 0 {
        return 1.0;
    }
    let n_eff = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let lambda = (n_eff.sqrt() + 0.12 + 0.11 / n_eff.sqrt()) * d;
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = 2.0 * (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += if k % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    sum.clamp(0.0, 1.0)
}

/// Pearson correlation coefficient; `0.0` when either input is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal-length inputs");
    if a.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn quantiles_of_known_sequence() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
    }

    #[test]
    fn five_number_is_ordered() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 100) as f64).collect();
        let f = five_number(&xs);
        assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let h = Histogram::new(&[0.0, 0.5, 1.0, 2.0, -5.0], 2, 0.0, 1.0);
        // -5 clamps into first bin, 1.0 and 2.0 clamp into last.
        assert_eq!(h.total, 5);
        assert_eq!(h.counts, vec![2, 3]);
        let p = h.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_skips_nan() {
        let h = Histogram::new(&[0.1, f64::NAN, 0.9], 2, 0.0, 1.0);
        assert_eq!(h.total, 2);
    }

    #[test]
    fn hellinger_identity_and_disjoint() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.0, 1.0];
        assert!(hellinger(&p, &p).abs() < 1e-12);
        assert!((hellinger(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-6);
        assert!(kl_divergence(&p, &[0.5, 0.25, 0.25]) > 0.0);
    }

    #[test]
    fn ks_statistic_same_and_shifted() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 1000.0).collect();
        assert!(ks_statistic(&a, &a) < 1e-12);
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_p_value_extremes() {
        // Identical large samples: p near 1. Fully separated: p near 0.
        assert!(ks_p_value(0.01, 1000, 1000) > 0.9);
        assert!(ks_p_value(1.0, 1000, 1000) < 1e-6);
    }

    #[test]
    fn pearson_correlations() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x + 1.0).collect();
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &vec![5.0; 50]), 0.0);
    }

    #[test]
    fn skewness_signs() {
        // Right-skewed: long tail to the right.
        let right = [1.0, 1.0, 1.0, 1.0, 10.0];
        let left = [10.0, 10.0, 10.0, 10.0, 1.0];
        assert!(skewness(&right) > 0.0);
        assert!(skewness(&left) < 0.0);
        assert_eq!(skewness(&[1.0, 1.0, 1.0]), 0.0);
    }
}
