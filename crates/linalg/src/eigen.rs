//! Jacobi eigenvalue decomposition for real symmetric matrices.
//!
//! The benchmark only needs eigendecompositions of covariance matrices
//! (for PCA) whose dimension is the number of dataset features — at most a
//! few hundred — so the classic cyclic Jacobi rotation method is more than
//! fast enough and numerically very robust.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `values[i]` corresponds to the
/// unit-norm eigenvector stored in column `i` of `vectors`, sorted by
/// descending eigenvalue.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, aligned with `values`.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix using cyclic Jacobi
/// rotations.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn symmetric_eigen(m: &Matrix) -> Eigen {
    assert_eq!(
        m.rows(),
        m.cols(),
        "eigendecomposition requires a square matrix"
    );
    let n = m.rows();
    let mut a = m.clone();
    let mut v = Matrix::identity(n);

    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let off = off_diagonal_norm(&a);
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                // Stable computation of the rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation G(p, q, theta) as A <- G^T A G.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[(i, i)], i)).collect();
    pairs.sort_by(|x, y| y.0.total_cmp(&x.0));

    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Eigen { values, vectors }
}

fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for p in 0..n {
        for q in (p + 1)..n {
            s += a[(p, q)] * a[(p, q)];
        }
    }
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_its_entries() {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 0)] = 3.0;
        m[(1, 1)] = 1.0;
        m[(2, 2)] = 2.0;
        let e = symmetric_eigen(&m);
        assert!(close(e.values[0], 3.0));
        assert!(close(e.values[1], 2.0));
        assert!(close(e.values[2], 1.0));
    }

    #[test]
    fn two_by_two_known_decomposition() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&m);
        assert!(close(e.values[0], 3.0));
        assert!(close(e.values[1], 1.0));
        // Leading eigenvector proportional to (1, 1)/sqrt(2).
        let v0 = e.vectors.col(0);
        assert!(close(v0[0].abs(), v0[1].abs()));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]);
        let e = symmetric_eigen(&m);
        for i in 0..3 {
            for j in 0..3 {
                let vi = e.vectors.col(i);
                let vj = e.vectors.col(j);
                let d = dot(&vi, &vj);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-8, "columns {i},{j} dot = {d}");
            }
        }
    }

    #[test]
    fn reconstruction_av_equals_lambda_v() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 4.0, 0.0],
            vec![1.0, 0.0, 3.0],
        ]);
        let e = symmetric_eigen(&m);
        for i in 0..3 {
            let v = e.vectors.col(i);
            let av = m.matvec(&v);
            for (x, y) in av.iter().zip(&v) {
                assert!((x - e.values[i] * y).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.3, 0.1],
            vec![0.3, 2.0, 0.4],
            vec![0.1, 0.4, 3.0],
        ]);
        let e = symmetric_eigen(&m);
        let trace = 1.0 + 2.0 + 3.0;
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }
}
