use std::collections::HashMap;

pub fn winners(counts: &HashMap<String, usize>) -> Vec<(String, usize)> {
    counts.iter().map(|(k, v)| (k.clone(), *v)).collect()
}
