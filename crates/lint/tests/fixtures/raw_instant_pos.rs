use std::time::{Instant, SystemTime};

pub fn elapsed_pair() -> (f64, bool) {
    let t = Instant::now();
    let s = SystemTime::now();
    (t.elapsed().as_secs_f64(), s.elapsed().is_ok())
}
