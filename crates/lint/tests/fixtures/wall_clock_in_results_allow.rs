use std::time::Instant;

pub fn timed_len(xs: &[f64]) -> (usize, f64) {
    let start = Instant::now(); // oeb-lint: allow(wall-clock-in-results, raw-instant) -- the duration is the metric
    (xs.len(), start.elapsed().as_secs_f64())
}
