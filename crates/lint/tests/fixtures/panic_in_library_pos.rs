pub fn head(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap()
}

pub fn second(xs: &[f64]) -> f64 {
    xs[1]
}
