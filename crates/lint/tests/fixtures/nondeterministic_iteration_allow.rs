use std::collections::HashMap;

pub fn winners(counts: &HashMap<String, usize>) -> Vec<(String, usize)> {
    // oeb-lint: allow(nondeterministic-iteration) -- caller sorts before rendering
    counts.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

pub fn winners_sorted(counts: &HashMap<String, usize>) -> Vec<(String, usize)> {
    let mut rows: Vec<(String, usize)> = counts.iter().map(|(k, v)| (k.clone(), *v)).collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

pub fn total(counts: &HashMap<String, usize>) -> usize {
    counts.values().sum()
}
