#!/usr/bin/env run-cargo-script
fn main() {
    let x = 1;
}
