fn f() {
    let r = 0..1;
    let s = 0.5..1.5;
    let m = 1.max(2);
    let e = 1e-3 + 2f64;
    let i = 0..=10;
}
