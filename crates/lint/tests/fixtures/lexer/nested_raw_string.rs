fn f() -> &'static str {
    let s = r##"a "quoted" and "# hash-guarded"##;
    let b = br#"bytes "inside""#;
    s
}
