use rand::Rng;

pub fn jitter() -> f64 {
    // oeb-lint: allow(unseeded-rng) -- demo snippet, never reaches results
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}
