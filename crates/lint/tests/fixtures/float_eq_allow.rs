pub fn is_unit(x: f64) -> bool {
    (x - 1.0).abs() < 1e-12
}

pub fn is_exactly_zero(x: f64) -> bool {
    // oeb-lint: allow(float-eq) -- exact-zero guard: only 0.0 short-circuits the kernel
    x == 0.0
}
