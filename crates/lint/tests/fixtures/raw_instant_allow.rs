use std::time::{Instant, SystemTime};

pub fn elapsed_pair() -> (f64, bool) {
    let t = Instant::now(); // oeb-lint: allow(raw-instant) -- calibration probe against the trace clock
    let s = SystemTime::now(); // oeb-lint: allow(raw-instant) -- ditto
    (t.elapsed().as_secs_f64(), s.elapsed().is_ok())
}
