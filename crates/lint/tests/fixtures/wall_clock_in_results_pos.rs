use std::time::Instant;

pub fn timed_len(xs: &[f64]) -> (usize, f64) {
    let start = Instant::now(); // oeb-lint: allow(raw-instant) -- fixture targets wall-clock-in-results
    (xs.len(), start.elapsed().as_secs_f64())
}
