use std::sync::Mutex;

static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
static C: Mutex<u32> = Mutex::new(0);

pub fn forward() -> u32 {
    let a = A.lock().unwrap();
    let b = B.lock().unwrap();
    *a + *b
}

pub fn backward() -> u32 {
    let b = B.lock().unwrap();
    let a = A.lock().unwrap();
    *a + *b
}

pub fn twice() -> u32 {
    let first = C.lock().unwrap();
    let second = C.lock().unwrap();
    *first + *second
}
