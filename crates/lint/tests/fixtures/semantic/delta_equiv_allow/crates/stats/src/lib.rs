pub trait DeltaStat {
    fn absorb(&mut self, x: f64);
}

pub struct GoodDelta {
    pub sum: f64,
}

impl DeltaStat for GoodDelta {
    fn absorb(&mut self, x: f64) {
        self.sum += x;
    }
}

pub struct BadDelta {
    pub sum: f64,
}

// oeb-lint: allow(delta-equivalence) -- covered by the cross-crate proptest suite
impl DeltaStat for BadDelta {
    fn absorb(&mut self, x: f64) {
        self.sum += x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_matches_batch_bitwise() {
        let mut d = GoodDelta { sum: 0.0 };
        d.absorb(1.0);
        assert_eq!(d.sum.to_bits(), 1.0f64.to_bits());
    }
}
