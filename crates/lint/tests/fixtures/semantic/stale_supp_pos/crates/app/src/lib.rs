// oeb-lint: allow-file(unseeded-rng) -- stale: this module no longer owns an RNG
use std::cmp::Ordering;

pub fn compare(a: f64, b: f64) -> Ordering {
    // oeb-lint: allow(nan-partial-cmp) -- inputs are pre-filtered finite values
    a.partial_cmp(&b).unwrap()
}

// oeb-lint: allow(float-eq) -- stale: the equality check moved to integers long ago
pub fn both_zero(a: u32, b: u32) -> bool {
    a == 0 && b == 0
}

// oeb-lint: allow(no-such-rule) -- the rule name is a typo
pub fn id(x: u32) -> u32 {
    x
}
