pub struct Counter;

impl Counter {
    pub const fn new(_name: &'static str) -> Counter {
        Counter
    }
}

static HIT: Counter = Counter::new("app.cache.hit");
static MISS: Counter = Counter::new("app.cache.miss");
