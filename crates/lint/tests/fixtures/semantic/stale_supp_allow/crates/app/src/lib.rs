// oeb-lint: allow(float-eq, stale-suppression) -- migrating: equality test being rewritten
pub fn both_zero(a: u32, b: u32) -> bool {
    a == 0 && b == 0
}
