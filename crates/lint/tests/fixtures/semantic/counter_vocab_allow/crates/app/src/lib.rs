pub struct Counter;

impl Counter {
    pub const fn new(_name: &'static str) -> Counter {
        Counter
    }
}

static HIT: Counter = Counter::new("app.cache.hit");
// oeb-lint: allow(counter-vocab-sync) -- migration in flight; regenerated next release
static MISS: Counter = Counter::new("app.cache.miss");
