pub enum HarnessError {
    One(String),
    Two(String),
}

impl HarnessError {
    pub fn exit_code(&self) -> i32 {
        match self {
            HarnessError::One(_) => 3,
            // oeb-lint: allow(exit-code-registry) -- row lands with the next release notes
            HarnessError::Two(_) => 4,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            HarnessError::One(_) => "one",
            HarnessError::Two(_) => "two",
        }
    }
}
