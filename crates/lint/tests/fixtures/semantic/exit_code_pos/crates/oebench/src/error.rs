pub enum HarnessError {
    BadConfig(String),
    Exploded(String),
    Lost(String),
}

impl HarnessError {
    pub fn exit_code(&self) -> i32 {
        match self {
            HarnessError::BadConfig(_) => 3,
            HarnessError::Exploded(_) => 5,
            HarnessError::Lost(_) => 6,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            HarnessError::BadConfig(_) => "bad-config",
            HarnessError::Exploded(_) => "exploded",
            HarnessError::Lost(_) => "lost",
        }
    }
}
