pub fn head(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

pub fn head_checked(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "head_checked needs a non-empty slice");
    // oeb-lint: allow(panic-in-library) -- guarded by the assert above
    xs[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(head(&[1.0, 2.0]).unwrap(), 1.0);
        assert_eq!([4.0, 5.0][1], 5.0);
    }
}
