use std::cmp::Ordering;

pub fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

pub fn argmax_nan_low(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        // Explicit NaN policy: NaN compares as lowest, never panics.
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(Ordering::Less))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

pub fn argmax_suppressed(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        // oeb-lint: allow(nan-partial-cmp) -- caller filters NaN upstream
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}
