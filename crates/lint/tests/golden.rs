//! Fixture-based golden tests: every rule has a positive fixture whose
//! diagnostics must match a checked-in JSON expectation exactly, and a
//! suppressed/fixed fixture that must come back clean. Fixtures live in
//! `tests/fixtures/` (excluded from the workspace walk — they contain
//! violations on purpose) and are parsed under a synthetic workspace
//! path so crate-scoped rules fire.

use oeb_lint::engine::{check_file, to_json, SourceFile};

/// (fixture stem, rule expected, synthetic path the file is checked as).
/// Paths pick the crate context the rule cares about: kernel crate for
/// panic hygiene and float-eq, a non-kernel crate elsewhere so only the
/// rule under test fires.
const CASES: &[(&str, &str, &str)] = &[
    (
        "nondeterministic_iteration",
        "nondeterministic-iteration",
        "crates/oebench/src/fixture.rs",
    ),
    (
        "unseeded_rng",
        "unseeded-rng",
        "crates/synth/src/fixture.rs",
    ),
    (
        "wall_clock_in_results",
        "wall-clock-in-results",
        "crates/oebench/src/fixture.rs",
    ),
    ("raw_instant", "raw-instant", "crates/bench/src/fixture.rs"),
    (
        "nan_partial_cmp",
        "nan-partial-cmp",
        "crates/oebench/src/fixture.rs",
    ),
    (
        "panic_in_library",
        "panic-in-library",
        "crates/linalg/src/fixture.rs",
    ),
    ("float_eq", "float-eq", "crates/linalg/src/fixture.rs"),
];

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {path}: {e}"))
}

#[test]
fn positive_fixtures_match_expected_json() {
    for (stem, rule, synthetic_path) in CASES {
        let src = fixture(&format!("{stem}_pos.rs"));
        let file = SourceFile::parse(synthetic_path, &src);
        let diags = check_file(&file, &[]);
        assert!(
            !diags.is_empty(),
            "{stem}_pos.rs: expected at least one diagnostic"
        );
        assert!(
            diags.iter().all(|d| d.rule == *rule),
            "{stem}_pos.rs: expected only `{rule}` diagnostics, got {diags:?}"
        );
        let actual = serde_json::to_string_pretty(&to_json(&diags)).expect("render json");
        let expected_path = format!("{stem}_pos.expected.json");
        let expected: serde_json::Value = serde_json::from_str(&fixture(&expected_path))
            .unwrap_or_else(|e| panic!("{expected_path} is not valid JSON: {e:?}"));
        let actual_value: serde_json::Value =
            serde_json::from_str(&actual).expect("round-trip actual");
        assert_eq!(
            actual_value, expected,
            "{stem}_pos.rs diagnostics drifted from {expected_path}.\nactual:\n{actual}"
        );
    }
}

#[test]
fn suppressed_fixtures_are_clean() {
    for (stem, _, synthetic_path) in CASES {
        let src = fixture(&format!("{stem}_allow.rs"));
        let file = SourceFile::parse(synthetic_path, &src);
        let diags = check_file(&file, &[]);
        assert!(
            diags.is_empty(),
            "{stem}_allow.rs: expected no diagnostics, got {diags:?}"
        );
    }
}

#[test]
fn warn_override_demotes_severity() {
    let src = fixture("float_eq_pos.rs");
    let file = SourceFile::parse("crates/linalg/src/fixture.rs", &src);
    let diags = check_file(&file, &["float-eq".to_string()]);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.severity == oeb_lint::Severity::Warn));
}

/// Reintroducing a violation must produce located diagnostics — the
/// acceptance property behind the CI gate. One line can break two
/// invariants at once: the NaN-unsafe comparison and the kernel panic.
#[test]
fn reintroduced_violation_is_located() {
    let src = "pub fn f(xs: &[f64]) -> f64 {\n    xs.iter().cloned().fold(f64::MIN, f64::max)\n}\npub fn bad(a: f64, b: f64) -> bool {\n    a.partial_cmp(&b).unwrap().is_eq()\n}\n";
    let file = SourceFile::parse("crates/drift/src/fresh.rs", src);
    let diags = check_file(&file, &[]);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(diags[0].rule, "nan-partial-cmp");
    assert_eq!((diags[0].line, diags[0].col), (5, 7));
    assert_eq!(diags[1].rule, "panic-in-library");
    assert_eq!((diags[1].line, diags[1].col), (5, 23));
}
