//! The linter must hold itself to its own invariants: a full workspace
//! walk from the repo root must come back clean, and the lint crate's
//! own sources must not even need suppressions.

use std::path::Path;

use oeb_lint::engine::Severity;
use oeb_lint::{check_workspace, workspace_files};

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn lint_runs_clean_on_its_own_source() {
    let root = repo_root();
    let own_files: Vec<String> = workspace_files(root)
        .expect("walk workspace")
        .into_iter()
        .filter(|f| f.starts_with("crates/lint/"))
        .collect();
    assert!(
        own_files.iter().any(|f| f == "crates/lint/src/lexer.rs"),
        "walker should see the lint crate's own sources: {own_files:?}"
    );
    for rel in own_files {
        let file = oeb_lint::SourceFile::load(root, &rel).expect("read source");
        let diags = oeb_lint::check_file(&file, &[]);
        assert!(diags.is_empty(), "{rel} has violations: {diags:?}");
    }
}

#[test]
fn workspace_is_lint_clean() {
    let diags = check_workspace(repo_root(), &[]).expect("walk workspace");
    let errors: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has lint errors:\n{}",
        errors
            .iter()
            .map(|d| format!("{}:{}:{} [{}] {}", d.file, d.line, d.col, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixtures_are_excluded_from_the_walk() {
    let files = workspace_files(repo_root()).expect("walk workspace");
    assert!(
        files.iter().all(|f| !f.contains("tests/fixtures")),
        "fixture files (intentional violations) leaked into the walk"
    );
    assert!(files.iter().all(|f| !f.starts_with("shims/")));
    assert!(files.iter().all(|f| !f.starts_with("target/")));
}
