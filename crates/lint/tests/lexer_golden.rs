//! Lexer edge-case golden tests: each fixture under
//! `tests/fixtures/lexer/` has a committed `.tokens` expectation — one
//! line per token, `kind line:col text-debug` — asserting the full
//! stream for the cases the hand-rolled lexer must get exactly right:
//! shebang lines, nested raw strings (`r##"…"##`), byte/char escape
//! ambiguity (`b'\''`), and float-vs-range tokens (`0..1`).
//!
//! Regenerate expectations after an intentional lexer change with
//! `OEB_LINT_BLESS=1 cargo test -p oeb-lint --test lexer_golden`.

use oeb_lint::lexer::lex;

const FIXTURES: &[&str] = &[
    "shebang",
    "nested_raw_string",
    "byte_char_escape",
    "float_vs_range",
];

fn fixture_path(name: &str) -> String {
    format!("{}/tests/fixtures/lexer/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn render(src: &str) -> String {
    let mut out = String::new();
    for t in lex(src) {
        out.push_str(&format!("{:?} {}:{} {:?}\n", t.kind, t.line, t.col, t.text));
    }
    out
}

#[test]
fn lexer_fixtures_match_expected_token_streams() {
    for name in FIXTURES {
        let src_path = format!("{}.rs", fixture_path(name));
        let src = std::fs::read_to_string(&src_path)
            .unwrap_or_else(|e| panic!("reading {src_path}: {e}"));
        let actual = render(&src);
        let expected_path = format!("{}.tokens", fixture_path(name));
        if std::env::var_os("OEB_LINT_BLESS").is_some() {
            std::fs::write(&expected_path, &actual).expect("bless expectation");
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!("reading {expected_path}: {e} (bless with OEB_LINT_BLESS=1)")
        });
        assert_eq!(
            actual, expected,
            "{name}.rs token stream drifted from {name}.tokens"
        );
    }
}

/// Spot checks that pin the *meaning* of the fixtures, so a wrong
/// blessed expectation cannot silently encode a lexer bug.
#[test]
fn lexer_fixture_semantics() {
    use oeb_lint::lexer::TokenKind;

    // Shebang: first token is a comment covering the whole first line.
    let shebang = lex(&std::fs::read_to_string(format!("{}.rs", fixture_path("shebang"))).unwrap());
    assert_eq!(shebang[0].kind, TokenKind::Comment);
    assert!(shebang[0].text.starts_with("#!/usr"));

    // Nested raw string: exactly two literals, quotes swallowed.
    let raw =
        lex(&std::fs::read_to_string(format!("{}.rs", fixture_path("nested_raw_string"))).unwrap());
    let lits: Vec<_> = raw
        .iter()
        .filter(|t| t.kind == TokenKind::Literal)
        .collect();
    assert_eq!(lits.len(), 2, "{lits:?}");
    assert!(lits[0].text.contains("hash-guarded"));
    assert!(lits[1].text.starts_with("br#"));

    // Byte/char escapes: four literals, none a lifetime.
    let chars =
        lex(&std::fs::read_to_string(format!("{}.rs", fixture_path("byte_char_escape"))).unwrap());
    assert_eq!(
        chars
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count(),
        4
    );
    assert!(chars.iter().all(|t| t.kind != TokenKind::Lifetime));

    // Float-vs-range: `0..1` keeps ints, `0.5..1.5` keeps floats, and
    // the range operators survive as single punct tokens.
    let nums =
        lex(&std::fs::read_to_string(format!("{}.rs", fixture_path("float_vs_range"))).unwrap());
    let ints = nums.iter().filter(|t| t.kind == TokenKind::Int).count();
    let floats = nums.iter().filter(|t| t.kind == TokenKind::Float).count();
    assert_eq!(ints, 6, "0, 1, 1 (method recv), 2, 0, 10");
    assert_eq!(floats, 4, "0.5, 1.5, 1e-3, 2f64");
    assert!(nums.iter().any(|t| t.is_punct("..")));
    assert!(nums.iter().any(|t| t.is_punct("..=")));
}
