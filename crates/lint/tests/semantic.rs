//! Golden tests for the five workspace-level semantic rules. Each
//! fixture under `tests/fixtures/semantic/` is a miniature workspace:
//! the `_pos` variant must produce exactly the diagnostics listed in
//! its `expected.txt` (one `<file> <line> <rule>` triple per line),
//! and the `_allow` variant — the same violation with an
//! `oeb-lint: allow(...)` comment at every diagnostic site — must
//! produce none. Running `Workspace::load` + `check` end-to-end also
//! exercises the parser and index on inputs the real workspace never
//! provides (orphan vocabulary entries, non-dense exit codes, lock
//! inversions).

use std::path::{Path, PathBuf};

use oeb_lint::Workspace;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/semantic")
        .join(name)
}

/// Runs the full workspace pipeline on a fixture and returns its
/// diagnostics as `<file> <line> <rule>` lines, in report order.
fn run(name: &str) -> Vec<String> {
    let root = fixture_root(name);
    let ws = Workspace::load(&root).unwrap_or_else(|e| panic!("load {name}: {e}"));
    ws.check(&[])
        .iter()
        .map(|d| format!("{} {} {}", d.file, d.line, d.rule))
        .collect()
}

fn expected(name: &str) -> Vec<String> {
    let path = fixture_root(name).join("expected.txt");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        .lines()
        .map(str::to_owned)
        .collect()
}

fn assert_fixture(name: &str) {
    let got = run(name);
    let want = expected(name);
    assert_eq!(
        got, want,
        "fixture {name}: diagnostics diverge from expected.txt\n  got:  {got:#?}\n  want: {want:#?}"
    );
}

#[test]
fn counter_vocab_sync_positive() {
    assert_fixture("counter_vocab_pos");
}

#[test]
fn counter_vocab_sync_suppressed() {
    assert_fixture("counter_vocab_allow");
}

#[test]
fn exit_code_registry_positive() {
    assert_fixture("exit_code_pos");
}

#[test]
fn exit_code_registry_suppressed() {
    assert_fixture("exit_code_allow");
}

#[test]
fn delta_equivalence_positive() {
    assert_fixture("delta_equiv_pos");
}

#[test]
fn delta_equivalence_suppressed() {
    assert_fixture("delta_equiv_allow");
}

#[test]
fn lock_order_positive() {
    assert_fixture("lock_order_pos");
}

#[test]
fn lock_order_suppressed() {
    assert_fixture("lock_order_allow");
}

#[test]
fn stale_suppression_positive() {
    assert_fixture("stale_supp_pos");
}

#[test]
fn stale_suppression_suppressed() {
    assert_fixture("stale_supp_allow");
}

/// The diagnostics a fixture reports are stable across a reload —
/// `Workspace::load` has no hidden ordering dependence on filesystem
/// iteration (files are sorted during the walk).
#[test]
fn fixture_diagnostics_are_deterministic() {
    assert_eq!(run("exit_code_pos"), run("exit_code_pos"));
    assert_eq!(run("lock_order_pos"), run("lock_order_pos"));
}
