//! Rule engine: file classification, `#[cfg(test)]` region tracking,
//! inline suppressions, and diagnostic rendering.
//!
//! A [`SourceFile`] is lexed once; every rule then runs over the same
//! comment-free token stream. Suppressions are ordinary comments —
//!
//! ```text
//! // oeb-lint: allow(rule-name) -- one-line justification
//! // oeb-lint: allow-file(rule-name) -- whole-file opt-out
//! ```
//!
//! — and an `allow` silences matching diagnostics on its own line and
//! the line directly below, so it works both as a trailing comment and
//! as an annotation above the offending statement.

use crate::lexer::{lex, Token, TokenKind};
use crate::parser::{parse_items, walk_items, Item};
use crate::rules::{self, Rule};

/// How a diagnostic counts toward the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported; the check still passes.
    Warn,
    /// Reported; the check fails.
    Error,
}

impl Severity {
    /// Lower-case label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

/// What kind of code a file holds; rules opt in per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` code of a crate — the strictest surface.
    Library,
    /// Integration tests (`tests/` directory).
    Test,
    /// Criterion-style benchmarks (`benches/`).
    Bench,
    /// Example binaries (`examples/`).
    Example,
}

/// One finding, fully located and annotated.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub severity: Severity,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    pub snippet: String,
    pub hint: &'static str,
}

/// A lexed file plus everything rules need to judge it.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub kind: FileKind,
    /// `<name>` from `crates/<name>/…`, if the file is in a crate.
    pub crate_name: Option<String>,
    /// Comment-free token stream.
    pub tokens: Vec<Token>,
    /// Item forest parsed from [`SourceFile::tokens`] — token ranges in
    /// items index into that same vec.
    pub items: Vec<Item>,
    /// Raw source lines, for snippets.
    lines: Vec<String>,
    /// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
    test_regions: Vec<(u32, u32)>,
    /// (line, rule) pairs silenced by inline `allow` comments.
    allows: Vec<(u32, String)>,
    /// (line, rule) pairs silenced for the whole file by `allow-file`.
    file_allows: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes `src` and precomputes test regions and suppressions.
    /// `path` must be workspace-relative (`crates/linalg/src/pca.rs`).
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let all_tokens = lex(src);
        let mut allows = Vec::new();
        let mut file_allows = Vec::new();
        for t in &all_tokens {
            if t.kind == TokenKind::Comment {
                collect_allows(t, &mut allows, &mut file_allows);
            }
        }
        let tokens: Vec<Token> = all_tokens
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        let items = parse_items(&tokens);
        SourceFile {
            path: path.to_string(),
            kind: kind_of(path),
            crate_name: crate_of(path),
            test_regions: test_regions(&items),
            items,
            tokens,
            lines: src.lines().map(str::to_string).collect(),
            allows,
            file_allows,
        }
    }

    /// Reads and parses a file from disk.
    pub fn load(root: &std::path::Path, rel: &str) -> std::io::Result<SourceFile> {
        let src = std::fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::parse(rel, &src))
    }

    /// True when `line` falls inside a `#[cfg(test)]` item or the file
    /// as a whole is test/bench/example code.
    pub fn is_test_code(&self, line: u32) -> bool {
        self.kind != FileKind::Library
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// The source text of `line` (1-based), trimmed, for snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// True when a diagnostic of `rule` at `line` is silenced by an
    /// inline `allow` or a whole-file `allow-file`.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.file_allows.iter().any(|(_, r)| r == rule)
            || self
                .allows
                .iter()
                .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }

    /// All inline `(line, rule)` suppressions, for staleness analysis.
    pub fn allow_sites(&self) -> &[(u32, String)] {
        &self.allows
    }

    /// All whole-file `(line, rule)` suppressions, for staleness analysis.
    pub fn file_allow_sites(&self) -> &[(u32, String)] {
        &self.file_allows
    }
}

/// Extracts `allow(...)` / `allow-file(...)` rule lists from a comment.
/// Doc comments (`///`, `//!`, `/**`, `/*!`) never carry suppressions —
/// they document the mechanism (this module does, for one), and a doc
/// example must not silence rules, nor count as a suppression that the
/// stale-suppression analysis would then flag.
fn collect_allows(
    t: &Token,
    allows: &mut Vec<(u32, String)>,
    file_allows: &mut Vec<(u32, String)>,
) {
    let doc = ["///", "//!", "/**", "/*!"]
        .iter()
        .any(|p| t.text.starts_with(p));
    if doc && !t.text.starts_with("/**/") {
        return;
    }
    let Some(at) = t.text.find("oeb-lint:") else {
        return;
    };
    let rest = &t.text[at + "oeb-lint:".len()..];
    for (marker, file_level) in [("allow-file(", true), ("allow(", false)] {
        let Some(open) = rest.find(marker) else {
            continue;
        };
        let args = &rest[open + marker.len()..];
        let Some(close) = args.find(')') else {
            continue;
        };
        for rule in args[..close].split(',') {
            let rule = rule.trim().to_string();
            if rule.is_empty() {
                continue;
            }
            if file_level {
                file_allows.push((t.line, rule));
            } else {
                allows.push((t.line, rule));
            }
        }
        return;
    }
}

fn kind_of(path: &str) -> FileKind {
    // Position-based, not substring-based: `crates/x/tests/…` is a test
    // dir, a crate named `tests` would not be.
    let segs: Vec<&str> = path.split('/').collect();
    for pair in segs.windows(2) {
        let dir = pair[0];
        if dir == "tests" {
            return FileKind::Test;
        }
        if dir == "benches" {
            return FileKind::Bench;
        }
        if dir == "examples" {
            return FileKind::Example;
        }
    }
    FileKind::Library
}

fn crate_of(path: &str) -> Option<String> {
    let mut segs = path.split('/');
    if segs.next() == Some("crates") {
        segs.next().map(str::to_string)
    } else {
        None
    }
}

/// Finds line ranges of *items* annotated `#[test]`, `#[cfg(test)]`, or
/// `#[bench]` — from the item's first attribute to its last line —
/// using the parsed item forest rather than a raw token scan, so a
/// `test` identifier in an unrelated attribute position (a derive, a
/// doc string) cannot start a region and an annotated item with a
/// nested body is covered exactly.
fn test_regions(items: &[Item]) -> Vec<(u32, u32)> {
    let mut regions: Vec<(u32, u32)> = Vec::new();
    walk_items(items, &mut |item| {
        if item.is_test_item() {
            regions.push((item.start_line, item.end_line));
        }
    });
    regions.sort_unstable();
    regions
}

/// Runs every registered rule over one file, applying suppressions and
/// per-rule severity overrides (`warn_rules` demotes to [`Severity::Warn`]).
pub fn check_file(file: &SourceFile, warn_rules: &[String]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for mut d in check_file_raw(file) {
        if file.suppressed(d.rule, d.line) {
            continue;
        }
        if warn_rules.iter().any(|r| *r == d.rule) {
            d.severity = Severity::Warn;
        }
        out.push(d);
    }
    out
}

/// Runs every token-shape rule over one file *without* applying
/// suppressions — the input the stale-suppression analysis needs to
/// decide whether each `allow` still has a diagnostic to silence.
pub fn check_file_raw(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in rules::all() {
        out.extend((rule.check)(rule, file));
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Convenience used by rules to build a located diagnostic.
pub fn diag(rule: &Rule, file: &SourceFile, t: &Token, message: String) -> Diagnostic {
    Diagnostic {
        rule: rule.name,
        severity: rule.severity,
        file: file.path.clone(),
        line: t.line,
        col: t.col,
        message,
        snippet: file.snippet(t.line),
        hint: rule.hint,
    }
}

/// Renders diagnostics as a JSON array (stable field order).
pub fn to_json(diags: &[Diagnostic]) -> serde_json::Value {
    serde_json::Value::Array(
        diags
            .iter()
            .map(|d| {
                serde_json::json!({
                    "file": d.file,
                    "line": d.line,
                    "col": d.col,
                    "rule": d.rule,
                    "severity": d.severity.label(),
                    "message": d.message,
                    "snippet": d.snippet,
                    "hint": d.hint,
                })
            })
            .collect(),
    )
}

/// Renders one diagnostic for terminal output.
pub fn render_human(d: &Diagnostic, fix_hints: bool) -> String {
    let mut s = format!(
        "{}:{}:{}: {}[{}]: {}\n    {}\n",
        d.file,
        d.line,
        d.col,
        d.severity.label(),
        d.rule,
        d.message,
        d.snippet
    );
    if fix_hints {
        s.push_str(&format!("    hint: {}\n", d.hint));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_kind_is_position_based() {
        assert_eq!(kind_of("crates/linalg/src/pca.rs"), FileKind::Library);
        assert_eq!(kind_of("crates/linalg/tests/proptests.rs"), FileKind::Test);
        assert_eq!(kind_of("crates/bench/benches/learners.rs"), FileKind::Bench);
        assert_eq!(kind_of("examples/demo.rs"), FileKind::Example);
        assert_eq!(kind_of("tests/integration.rs"), FileKind::Test);
    }

    #[test]
    fn crate_name_extraction() {
        assert_eq!(crate_of("crates/nn/src/mlp.rs").as_deref(), Some("nn"));
        assert_eq!(crate_of("src/lib.rs"), None);
    }

    #[test]
    fn cfg_test_regions_cover_the_mod_body() {
        let src = "pub fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n";
        let f = SourceFile::parse("crates/nn/src/x.rs", src);
        assert!(!f.is_test_code(1));
        assert!(f.is_test_code(3));
        assert!(f.is_test_code(6));
        assert!(f.is_test_code(7));
    }

    #[test]
    fn allow_comment_covers_own_and_next_line() {
        let src = "// oeb-lint: allow(some-rule) -- why\nfn a() {}\nfn b() {}\n";
        let f = SourceFile::parse("crates/nn/src/x.rs", src);
        assert!(f.suppressed("some-rule", 1));
        assert!(f.suppressed("some-rule", 2));
        assert!(!f.suppressed("some-rule", 3));
        assert!(!f.suppressed("other-rule", 2));
    }

    #[test]
    fn allow_file_covers_everything() {
        let src = "// oeb-lint: allow-file(some-rule) -- demo module\nfn a() {}\n";
        let f = SourceFile::parse("crates/nn/src/x.rs", src);
        assert!(f.suppressed("some-rule", 40));
        assert!(!f.suppressed("other-rule", 2));
    }

    #[test]
    fn allow_lists_multiple_rules() {
        let src = "fn a() {} // oeb-lint: allow(rule-a, rule-b)\n";
        let f = SourceFile::parse("crates/nn/src/x.rs", src);
        assert!(f.suppressed("rule-a", 1));
        assert!(f.suppressed("rule-b", 1));
    }
}
