//! # oeb-lint
//!
//! A from-scratch static invariant checker for this workspace. The
//! reproduction's value rests on properties the compiler cannot see:
//! bit-identical results at any thread count, seeded randomness
//! everywhere, NaN-tolerant numeric kernels, and panic-isolated sweep
//! workers that never die on malformed input. Proptests catch
//! violations after the fact; this crate catches them at review time.
//!
//! Pipeline: a hand-rolled [`lexer`] turns each `.rs` file into a
//! line/column-tracked token stream; [`engine`] classifies the file
//! (library / test / bench / example, `#[cfg(test)]` regions, inline
//! `// oeb-lint: allow(..)` suppressions); [`rules`] runs six invariant
//! checks over the comment-free tokens. The `oeb-lint` binary walks the
//! workspace and gates CI:
//!
//! ```text
//! cargo run -p oeb-lint -- check [--json] [--fix-hints]
//! ```

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{check_file, to_json, Diagnostic, FileKind, Severity, SourceFile};
pub use rules::{all as all_rules, Rule};

/// Directories (workspace-relative prefixes) the walker never descends
/// into: build output, vendored dependency shims (external API stubs,
/// not workspace code), and the lint fixtures, which contain violations
/// on purpose.
pub const EXCLUDED_PREFIXES: &[&str] = &["target", "shims", "crates/lint/tests/fixtures"];

/// Walks `root` for workspace `.rs` files, sorted so diagnostics are
/// emitted in a stable order on every platform (`read_dir` order is
/// OS-dependent — the same invariant this crate lints for).
pub fn workspace_files(root: &std::path::Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Ok(rel) = path.strip_prefix(root) else {
                continue;
            };
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            if EXCLUDED_PREFIXES.iter().any(|p| rel_str == *p) || rel_str.starts_with('.') {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if rel_str.ends_with(".rs") {
                files.push(rel_str);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs every rule over every workspace file under `root`.
pub fn check_workspace(
    root: &std::path::Path,
    warn_rules: &[String],
) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for rel in workspace_files(root)? {
        let file = SourceFile::load(root, &rel)?;
        diags.extend(check_file(&file, warn_rules));
    }
    Ok(diags)
}
