//! # oeb-lint
//!
//! A from-scratch static invariant checker for this workspace. The
//! reproduction's value rests on properties the compiler cannot see:
//! bit-identical results at any thread count, seeded randomness
//! everywhere, NaN-tolerant numeric kernels, and panic-isolated sweep
//! workers that never die on malformed input. Proptests catch
//! violations after the fact; this crate catches them at review time.
//!
//! Pipeline: a hand-rolled [`lexer`] turns each `.rs` file into a
//! line/column-tracked token stream; [`parser`] builds an item forest
//! (fns, impls, mods, attributes) on top of it; [`engine`] classifies
//! the file (library / test / bench / example, parser-derived
//! `#[cfg(test)]` regions, inline `// oeb-lint: allow(..)`
//! suppressions); [`rules`] runs seven per-file token checks over the
//! comment-free tokens. A second, workspace-level layer —
//! [`index`] (one-pass serialisable index of metric sites, exit arms,
//! `DeltaStat` impls, test fns, and lock acquisitions) feeding
//! [`semantic`] — runs five cross-file contract rules: counter
//! vocabulary sync, the exit-code registry, delta-equivalence test
//! coverage, lock-order cycles, and stale suppressions. The `oeb-lint`
//! binary walks the workspace and gates CI:
//!
//! ```text
//! cargo run -p oeb-lint -- check [--json] [--fix-hints] [--time-budget-ms N]
//! cargo run -p oeb-lint -- index [--json] [--emit-vocab [PATH]]
//! cargo run -p oeb-lint -- rules
//! ```

pub mod engine;
pub mod index;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;

pub use engine::{check_file, to_json, Diagnostic, FileKind, Severity, SourceFile};
pub use index::WorkspaceIndex;
pub use rules::{all as all_rules, Rule};
pub use semantic::Workspace;

/// Directories (workspace-relative prefixes) the walker never descends
/// into: build output, vendored dependency shims (external API stubs,
/// not workspace code), and the lint fixtures, which contain violations
/// on purpose.
pub const EXCLUDED_PREFIXES: &[&str] = &["target", "shims", "crates/lint/tests/fixtures"];

/// Walks `root` for workspace `.rs` files, sorted so diagnostics are
/// emitted in a stable order on every platform (`read_dir` order is
/// OS-dependent — the same invariant this crate lints for).
pub fn workspace_files(root: &std::path::Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Ok(rel) = path.strip_prefix(root) else {
                continue;
            };
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            if EXCLUDED_PREFIXES.iter().any(|p| rel_str == *p) || rel_str.starts_with('.') {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if rel_str.ends_with(".rs") {
                files.push(rel_str);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the full pipeline over the workspace under `root`: token rules
/// per file, semantic rules over the index, stale-suppression analysis,
/// suppressions applied.
pub fn check_workspace(
    root: &std::path::Path,
    warn_rules: &[String],
) -> std::io::Result<Vec<Diagnostic>> {
    Ok(Workspace::load(root)?.check(warn_rules))
}
