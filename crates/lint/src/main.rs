//! CLI for the workspace invariant checker.
//!
//! ```text
//! oeb-lint check [--json] [--fix-hints] [--warn <rule>]... [--root <dir>]
//!                [--time-budget-ms <n>] [paths...]
//! oeb-lint index [--json] [--emit-vocab [<path>]] [--root <dir>]
//! oeb-lint rules
//! ```
//!
//! A whole-workspace `check` runs the token rules, the index-driven
//! semantic rules, and the stale-suppression analysis; `check` with
//! explicit paths runs the token rules only (semantic contracts are
//! workspace properties and need every file). `index` builds and
//! prints the workspace index, and `--emit-vocab` writes the generated
//! counter vocabulary consumed by `trace_check --counters`.
//!
//! Exit codes: 0 clean (warnings allowed), 1 violations at error
//! severity or a blown time budget, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use oeb_lint::engine::{check_file, render_human, to_json, Severity, SourceFile};
use oeb_lint::semantic::{is_known_rule, SEMANTIC_RULES};
use oeb_lint::{rules, Workspace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("index") => run_index(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: oeb-lint <check [--json] [--fix-hints] [--warn <rule>]... [--root <dir>] \
                 [--time-budget-ms <n>] [paths...] | index [--json] [--emit-vocab [<path>]] \
                 [--root <dir>] | rules>"
            );
            ExitCode::from(2)
        }
    }
}

fn print_rules() {
    for r in rules::all() {
        println!(
            "{} [{}]\n    invariant: {}\n    hint: {}",
            r.name,
            r.severity.label(),
            r.invariant,
            r.hint
        );
    }
    for (name, invariant, hint) in SEMANTIC_RULES {
        println!("{name} [error, workspace]\n    invariant: {invariant}\n    hint: {hint}");
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut fix_hints = false;
    let mut warn_rules: Vec<String> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut time_budget_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-hints" => fix_hints = true,
            "--warn" => match it.next() {
                Some(name) if is_known_rule(name) => warn_rules.push(name.clone()),
                Some(name) => {
                    eprintln!("oeb-lint: unknown rule `{name}` (see `oeb-lint rules`)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("oeb-lint: --warn needs a rule name");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("oeb-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--time-budget-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => time_budget_ms = Some(ms),
                _ => {
                    eprintln!("oeb-lint: --time-budget-ms needs a millisecond count");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                eprintln!("oeb-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => paths.push(other.to_string()),
        }
    }

    let root = match root.or_else(default_root) {
        Some(r) => r,
        None => {
            eprintln!("oeb-lint: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    // The lint is part of the edit loop, so it gates its own latency:
    // a blown budget fails the run like a violation would.
    let watch = oeb_trace::Stopwatch::start();
    let (diags, file_count) = if paths.is_empty() {
        let ws = match Workspace::load(&root) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("oeb-lint: loading {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let n = ws.files.len();
        (ws.check(&warn_rules), n)
    } else {
        let mut diags = Vec::new();
        for rel in &paths {
            let file = match SourceFile::load(&root, rel) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("oeb-lint: reading {rel}: {e}");
                    return ExitCode::from(2);
                }
            };
            diags.extend(check_file(&file, &warn_rules));
        }
        let n = paths.len();
        (diags, n)
    };
    let elapsed_ms = watch.elapsed_seconds() * 1e3;

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if json {
        match serde_json::to_string_pretty(&to_json(&diags)) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("oeb-lint: serialising diagnostics: {e:?}");
                return ExitCode::from(2);
            }
        }
    } else {
        for d in &diags {
            print!("{}", render_human(d, fix_hints));
        }
        let rule_count = rules::all().len() + SEMANTIC_RULES.len();
        println!(
            "oeb-lint: {file_count} files, {rule_count} rules, {errors} errors, {warnings} warnings \
             ({elapsed_ms:.0} ms)"
        );
    }
    let mut failed = errors > 0;
    if let Some(budget) = time_budget_ms {
        if elapsed_ms > budget as f64 {
            eprintln!("oeb-lint: check took {elapsed_ms:.0} ms, over the {budget} ms budget");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_index(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut emit_vocab: Option<Option<String>> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--emit-vocab" => {
                // Optional value: the next non-flag argument, else the
                // canonical generated path.
                let value = match it.peek() {
                    Some(v) if !v.starts_with('-') => Some(it.next().cloned().unwrap_or_default()),
                    _ => None,
                };
                emit_vocab = Some(value);
            }
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("oeb-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("oeb-lint: unknown index argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(default_root) {
        Some(r) => r,
        None => {
            eprintln!("oeb-lint: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("oeb-lint: loading {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = emit_vocab {
        let rel = path.unwrap_or_else(|| "crates/bench/src/counter_vocab.rs".to_string());
        let target = root.join(&rel);
        if let Err(e) = std::fs::write(&target, ws.index.render_vocab()) {
            eprintln!("oeb-lint: writing {}: {e}", target.display());
            return ExitCode::from(2);
        }
        println!(
            "oeb-lint: wrote {} counters to {rel}",
            ws.index.counter_vocabulary().len()
        );
        return ExitCode::SUCCESS;
    }
    if json {
        match serde_json::to_string_pretty(&ws.index.to_json()) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("oeb-lint: serialising index: {e:?}");
                return ExitCode::from(2);
            }
        }
    } else {
        let idx = &ws.index;
        println!(
            "oeb-lint index: {} files, {} counters ({} in vocabulary), {} gauges, \
             {} exit codes, {} DeltaStat impls, {} test fns, {} lock sites, {} lock edges",
            idx.file_count,
            idx.counters.len(),
            idx.counter_vocabulary().len(),
            idx.gauges.len(),
            idx.exit_arms.len(),
            idx.delta_impls.len(),
            idx.test_fns.len(),
            idx.lock_sites.len(),
            idx.lock_edges.len()
        );
    }
    ExitCode::SUCCESS
}

/// The workspace root: the manifest dir's grandparent when cargo runs
/// us (`crates/lint` → repo root), else the nearest ancestor of the
/// current directory holding a `Cargo.toml` with a `[workspace]` table.
fn default_root() -> Option<PathBuf> {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(&manifest).join("../..");
        if is_workspace_root(&candidate) {
            return Some(candidate);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &std::path::Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false)
}
