//! CLI for the workspace invariant checker.
//!
//! ```text
//! oeb-lint check [--json] [--fix-hints] [--warn <rule>]... [--root <dir>] [paths...]
//! oeb-lint rules
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 violations at error
//! severity, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use oeb_lint::engine::{check_file, render_human, to_json, Severity, SourceFile};
use oeb_lint::{rules, workspace_files};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: oeb-lint <check [--json] [--fix-hints] [--warn <rule>]... [--root <dir>] [paths...] | rules>");
            ExitCode::from(2)
        }
    }
}

fn print_rules() {
    for r in rules::all() {
        println!(
            "{} [{}]\n    invariant: {}\n    hint: {}",
            r.name,
            r.severity.label(),
            r.invariant,
            r.hint
        );
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut fix_hints = false;
    let mut warn_rules: Vec<String> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-hints" => fix_hints = true,
            "--warn" => match it.next() {
                Some(name) if rules::by_name(name).is_some() => warn_rules.push(name.clone()),
                Some(name) => {
                    eprintln!("oeb-lint: unknown rule `{name}` (see `oeb-lint rules`)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("oeb-lint: --warn needs a rule name");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("oeb-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                eprintln!("oeb-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => paths.push(other.to_string()),
        }
    }

    let root = match root.or_else(default_root) {
        Some(r) => r,
        None => {
            eprintln!("oeb-lint: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let rels = if paths.is_empty() {
        match workspace_files(&root) {
            Ok(files) => files,
            Err(e) => {
                eprintln!("oeb-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        paths
    };

    let mut diags = Vec::new();
    for rel in &rels {
        let file = match SourceFile::load(&root, rel) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("oeb-lint: reading {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        diags.extend(check_file(&file, &warn_rules));
    }

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if json {
        match serde_json::to_string_pretty(&to_json(&diags)) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("oeb-lint: serialising diagnostics: {e:?}");
                return ExitCode::from(2);
            }
        }
    } else {
        for d in &diags {
            print!("{}", render_human(d, fix_hints));
        }
        let rule_count = rules::all().len();
        let file_count = rels.len();
        println!(
            "oeb-lint: {file_count} files, {rule_count} rules, {errors} errors, {warnings} warnings"
        );
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: the manifest dir's grandparent when cargo runs
/// us (`crates/lint` → repo root), else the nearest ancestor of the
/// current directory holding a `Cargo.toml` with a `[workspace]` table.
fn default_root() -> Option<PathBuf> {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(&manifest).join("../..");
        if is_workspace_root(&candidate) {
            return Some(candidate);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &std::path::Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false)
}
