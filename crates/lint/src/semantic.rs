//! Workspace-level semantic rules, consuming the [`WorkspaceIndex`].
//!
//! Where the token rules judge one file at a time, these five rules
//! check contracts that span the workspace: the counter vocabulary
//! must match the construction sites, the exit-code registry must
//! match the documented table, every `DeltaStat` impl must carry an
//! equivalence test, the static lock graph must be acyclic, and every
//! suppression must still have something to suppress.
//!
//! Suppression works exactly as for token rules: each diagnostic is
//! anchored to a source line, and an `// oeb-lint: allow(<rule>)` on
//! that line (or the line above) silences it. Diagnostics anchored in
//! Markdown files (a stale `EXIT_CODES.md` row) cannot be suppressed —
//! the fix is editing the table.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::engine::{check_file_raw, Diagnostic, Severity, SourceFile};
use crate::index::{lock_graph, WorkspaceIndex, SYNTHESIZED_COUNTERS};
use crate::lexer::TokenKind;
use crate::parser::{walk_items, ItemKind};
use crate::{rules, workspace_files};

/// Name, invariant, and hint of each semantic rule, mirroring the shape
/// of [`crate::rules::Rule`] for `oeb-lint rules` output.
pub const SEMANTIC_RULES: &[(&str, &str, &str)] = &[
    (
        "counter-vocab-sync",
        "every counter constructed in library code appears in the generated vocabulary \
         (crates/bench/src/counter_vocab.rs), and every vocabulary entry has a construction site",
        "regenerate with `cargo run -p oeb-lint -- index --emit-vocab`",
    ),
    (
        "exit-code-registry",
        "HarnessError exit codes are dense and unique from 3, every variant has a kind, and \
         the checked-in EXIT_CODES.md table matches the source (README links the table)",
        "update crates/oebench/src/error.rs and EXIT_CODES.md together so codes, kinds, \
         and rows agree",
    ),
    (
        "delta-equivalence",
        "every type implementing DeltaStat is exercised by at least one test asserting \
         bitwise/snapshot equivalence against the batch path",
        "add a `#[test]` naming the delta type whose name or body marks it as an \
         equivalence check (`*_bitwise`, `*_matches_*`, or a `to_bits` assertion)",
    ),
    (
        "lock-order",
        "the static lock-acquisition graph (Mutex fields and statics, with one-level \
         call-edge propagation) is free of cycles",
        "acquire locks in one global order, or scope the outer guard so it is dropped \
         before the inner lock is taken",
    ),
    (
        "stale-suppression",
        "every `allow(<rule>)` still has a diagnostic to silence on its line or the \
         line below, and names a rule that exists",
        "delete the stale allow comment (the violation it covered is gone), or fix the \
         rule name",
    ),
];

/// True when `name` is a rule this binary knows — token or semantic.
pub fn is_known_rule(name: &str) -> bool {
    rules::by_name(name).is_some() || SEMANTIC_RULES.iter().any(|(n, _, _)| *n == name)
}

/// A loaded workspace: all files parsed once, the index built once.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    pub index: WorkspaceIndex,
}

impl Workspace {
    /// Walks `root`, parses every workspace file, and builds the index.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        for rel in workspace_files(root)? {
            files.push(SourceFile::load(root, &rel)?);
        }
        let index = WorkspaceIndex::build(&files);
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            index,
        })
    }

    /// The full check: token rules per file, semantic rules over the
    /// index, stale-suppression over both — then suppressions applied
    /// and `warn_rules` demoted, sorted by (file, line, col, rule).
    pub fn check(&self, warn_rules: &[String]) -> Vec<Diagnostic> {
        let mut raw: Vec<Diagnostic> = Vec::new();
        for file in &self.files {
            raw.extend(check_file_raw(file));
        }
        raw.extend(self.semantic_raw());
        let stale = self.stale_suppressions(&raw);
        raw.extend(stale);

        let by_path: BTreeMap<&str, &SourceFile> =
            self.files.iter().map(|f| (f.path.as_str(), f)).collect();
        let mut out: Vec<Diagnostic> = raw
            .into_iter()
            .filter(|d| {
                !by_path
                    .get(d.file.as_str())
                    .is_some_and(|f| f.suppressed(d.rule, d.line))
            })
            .map(|mut d| {
                if warn_rules.iter().any(|r| *r == d.rule) {
                    d.severity = Severity::Warn;
                }
                d
            })
            .collect();
        out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
        out
    }

    /// The four index-driven rules, unsuppressed.
    pub fn semantic_raw(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        self.counter_vocab_sync(&mut out);
        self.exit_code_registry(&mut out);
        self.delta_equivalence(&mut out);
        self.lock_order(&mut out);
        out
    }

    fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }

    fn semantic_diag(
        &self,
        rule: &'static str,
        hint: &'static str,
        file: &str,
        line: u32,
        message: String,
    ) -> Diagnostic {
        let snippet = self.file(file).map(|f| f.snippet(line)).unwrap_or_default();
        Diagnostic {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            col: 1,
            message,
            snippet,
            hint,
        }
    }

    // -- counter-vocab-sync -------------------------------------------------

    /// The generated vocabulary and the construction sites must agree
    /// in both directions. Inert until a `counter_vocab.rs` exists —
    /// the contract starts when the generated file is checked in
    /// (deleting it altogether breaks the `trace_check` build instead).
    fn counter_vocab_sync(&self, out: &mut Vec<Diagnostic>) {
        const RULE: &str = "counter-vocab-sync";
        const HINT: &str = "regenerate with `cargo run -p oeb-lint -- index --emit-vocab`";
        let Some(vocab_file) = self
            .files
            .iter()
            .find(|f| f.path.ends_with("/counter_vocab.rs"))
        else {
            return;
        };
        // Entries of `KNOWN_COUNTERS`: the string literals of the const
        // initialiser, each with its line for anchoring orphan reports.
        let mut entries: Vec<(String, u32)> = Vec::new();
        let mut const_line = 1;
        walk_items(&vocab_file.items, &mut |item| {
            if item.kind == ItemKind::Const && item.name == "KNOWN_COUNTERS" {
                const_line = item.start_line;
                if let Some((b0, b1)) = item.body {
                    for t in &vocab_file.tokens[b0..b1.min(vocab_file.tokens.len())] {
                        if t.kind == TokenKind::Literal {
                            entries.push((t.text.trim_matches('"').to_string(), t.line));
                        }
                    }
                }
            }
        });
        let entry_names: BTreeSet<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        let constructed: BTreeSet<String> = self.index.counter_vocabulary().into_iter().collect();

        // Direction 1: constructed but missing from the vocabulary —
        // anchored at the first construction site of each name.
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        for site in self.index.counters.iter().filter(|c| !c.in_test) {
            if !entry_names.contains(site.name.as_str()) && reported.insert(&site.name) {
                out.push(self.semantic_diag(
                    RULE,
                    HINT,
                    &site.file,
                    site.line,
                    format!(
                        "counter `{}` is constructed here but missing from the generated \
                         vocabulary ({})",
                        site.name, vocab_file.path
                    ),
                ));
            }
        }
        for name in SYNTHESIZED_COUNTERS {
            if !entry_names.contains(name) {
                out.push(self.semantic_diag(
                    RULE,
                    HINT,
                    &vocab_file.path,
                    const_line,
                    format!("synthesised counter `{name}` is missing from the vocabulary"),
                ));
            }
        }
        // Direction 2: vocabulary entries with no construction site.
        for (name, line) in &entries {
            if !constructed.contains(name) {
                out.push(self.semantic_diag(
                    RULE,
                    HINT,
                    &vocab_file.path,
                    *line,
                    format!("vocabulary entry `{name}` has no construction site in library code"),
                ));
            }
        }
    }

    // -- exit-code-registry -------------------------------------------------

    /// Exit codes must be dense and unique from 3, every variant must
    /// map to a kind, and the checked-in `EXIT_CODES.md` table must
    /// match the source bijectively; the README must link the table.
    /// Inert when no `impl HarnessError` exists in the workspace.
    fn exit_code_registry(&self, out: &mut Vec<Diagnostic>) {
        const RULE: &str = "exit-code-registry";
        const HINT: &str = "update crates/oebench/src/error.rs and EXIT_CODES.md together \
                            so codes, kinds, and rows agree";
        let Some(exit_file) = self.index.exit_file.clone() else {
            return;
        };
        let arms = &self.index.exit_arms;
        let first_line = arms.first().map_or(1, |a| a.line);

        // Source-side: every variant has both a code and a kind.
        for arm in arms {
            if arm.code.is_none() {
                out.push(self.semantic_diag(
                    RULE,
                    HINT,
                    &exit_file,
                    arm.line,
                    format!("variant `{}` has no exit_code() arm", arm.variant),
                ));
            }
            if arm.kind.is_none() {
                out.push(self.semantic_diag(
                    RULE,
                    HINT,
                    &exit_file,
                    arm.line,
                    format!("variant `{}` has no kind() arm", arm.variant),
                ));
            }
        }
        // Dense and unique from 3.
        let mut codes: Vec<i64> = arms.iter().filter_map(|a| a.code).collect();
        codes.sort_unstable();
        let expect: Vec<i64> = (3..3 + codes.len() as i64).collect();
        if codes != expect {
            out.push(self.semantic_diag(
                RULE,
                HINT,
                &exit_file,
                first_line,
                format!(
                    "exit codes must be dense and unique starting at 3: found {codes:?}, \
                     expected {expect:?}"
                ),
            ));
        }

        // Table-side: EXIT_CODES.md rows `| code | kind | meaning |`.
        let table_path = self.root.join("EXIT_CODES.md");
        let table = match std::fs::read_to_string(&table_path) {
            Ok(t) => t,
            Err(_) => {
                out.push(
                    self.semantic_diag(
                        RULE,
                        HINT,
                        &exit_file,
                        first_line,
                        "EXIT_CODES.md is missing: the exit-code registry must be checked in \
                     next to the source"
                            .to_string(),
                    ),
                );
                return;
            }
        };
        let mut rows: Vec<(i64, String, u32, String)> = Vec::new();
        for (i, line) in table.lines().enumerate() {
            let cells: Vec<&str> = line.trim().trim_matches('|').split('|').collect();
            if cells.len() < 2 {
                continue;
            }
            let Ok(code) = cells[0].trim().parse::<i64>() else {
                continue;
            };
            rows.push((
                code,
                cells[1].trim().to_string(),
                i as u32 + 1,
                line.to_string(),
            ));
        }
        for arm in arms {
            let (Some(code), Some(kind)) = (arm.code, arm.kind.as_deref()) else {
                continue;
            };
            match rows.iter().find(|(c, _, _, _)| *c == code) {
                None => out.push(self.semantic_diag(
                    RULE,
                    HINT,
                    &exit_file,
                    arm.line,
                    format!(
                        "exit code {code} (`{kind}`, variant `{}`) has no row in EXIT_CODES.md",
                        arm.variant
                    ),
                )),
                Some((_, row_kind, row_line, row_text)) if row_kind != kind => {
                    out.push(Diagnostic {
                        rule: RULE,
                        severity: Severity::Error,
                        file: "EXIT_CODES.md".to_string(),
                        line: *row_line,
                        col: 1,
                        message: format!(
                            "row for exit code {code} says kind `{row_kind}`, source says \
                             `{kind}`"
                        ),
                        snippet: row_text.trim().to_string(),
                        hint: HINT,
                    });
                }
                Some(_) => {}
            }
        }
        // Typed rows (code >= 3) that no longer exist in the source.
        for (code, kind, line, text) in &rows {
            if *code >= 3 && !arms.iter().any(|a| a.code == Some(*code)) {
                out.push(Diagnostic {
                    rule: RULE,
                    severity: Severity::Error,
                    file: "EXIT_CODES.md".to_string(),
                    line: *line,
                    col: 1,
                    message: format!(
                        "row for exit code {code} (`{kind}`) matches no HarnessError variant"
                    ),
                    snippet: text.trim().to_string(),
                    hint: HINT,
                });
            }
        }
        // The README must point readers at the registry.
        match std::fs::read_to_string(self.root.join("README.md")) {
            Ok(readme) if readme.contains("EXIT_CODES.md") => {}
            Ok(_) => out.push(Diagnostic {
                rule: RULE,
                severity: Severity::Error,
                file: "README.md".to_string(),
                line: 1,
                col: 1,
                message: "README.md never references EXIT_CODES.md".to_string(),
                snippet: String::new(),
                hint: HINT,
            }),
            Err(_) => {}
        }
    }

    // -- delta-equivalence --------------------------------------------------

    /// Every `impl DeltaStat for T` must be named in at least one test
    /// that asserts equivalence with the batch path — the contract the
    /// incremental pipeline's correctness rests on.
    fn delta_equivalence(&self, out: &mut Vec<Diagnostic>) {
        const RULE: &str = "delta-equivalence";
        const HINT: &str = "add a `#[test]` naming the delta type whose name or body marks it \
                            as an equivalence check (`*_bitwise`, `*_matches_*`, or a `to_bits` \
                            assertion)";
        for imp in &self.index.delta_impls {
            let covered = self
                .index
                .test_fns
                .iter()
                .any(|t| t.equivalence && t.types.iter().any(|n| n == &imp.type_name));
            if !covered {
                out.push(self.semantic_diag(
                    RULE,
                    HINT,
                    &imp.file,
                    imp.line,
                    format!(
                        "`{}` implements DeltaStat but no equivalence test names it",
                        imp.type_name
                    ),
                ));
            }
        }
    }

    // -- lock-order ---------------------------------------------------------

    /// The acquisition graph must be acyclic. Each cycle is reported
    /// once, canonicalised to start at its smallest lock id, and the
    /// diagnostic is anchored at the acquisition that closes the cycle.
    fn lock_order(&self, out: &mut Vec<Diagnostic>) {
        const RULE: &str = "lock-order";
        const HINT: &str = "acquire locks in one global order, or scope the outer guard so it \
                            is dropped before the inner lock is taken";
        let graph = lock_graph(&self.index.lock_edges);
        let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
        for &start in graph.keys() {
            // DFS from each node; a path returning to `start` is a cycle.
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            let mut path: Vec<&str> = vec![start];
            let mut on_path: BTreeSet<&str> = [start].into();
            while let Some(&(node, next)) = stack.last() {
                let edges = graph.get(node).map(Vec::as_slice).unwrap_or_default();
                if next >= edges.len() {
                    on_path.remove(node);
                    path.pop();
                    stack.pop();
                    continue;
                }
                let edge = edges[next];
                if let Some(frame) = stack.last_mut() {
                    frame.1 += 1;
                }
                let to = edge.to.as_str();
                if to == start {
                    // Canonical form: the cycle's node list, rotated so
                    // the smallest id leads; dedup across start nodes.
                    let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.as_str())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    if seen.insert(cycle.clone()) {
                        let mut display = cycle.clone();
                        display.push(cycle[0].clone());
                        out.push(self.semantic_diag(
                            RULE,
                            HINT,
                            &edge.file,
                            edge.line,
                            format!(
                                "lock-order cycle: {}{}",
                                display.join(" -> "),
                                edge.via
                                    .as_deref()
                                    .map(|v| format!(" (closed via call to `{v}`)"))
                                    .unwrap_or_default()
                            ),
                        ));
                    }
                    continue;
                }
                if !on_path.contains(to) {
                    on_path.insert(to);
                    path.push(to);
                    stack.push((to, 0));
                }
            }
        }
    }

    // -- stale-suppression --------------------------------------------------

    /// An `allow` that silences nothing is itself a defect: it hides
    /// the next real violation at that site. `raw` must hold the
    /// unsuppressed token + semantic diagnostics for the workspace.
    pub fn stale_suppressions(&self, raw: &[Diagnostic]) -> Vec<Diagnostic> {
        const RULE: &str = "stale-suppression";
        const HINT: &str = "delete the stale allow comment (the violation it covered is \
                            gone), or fix the rule name";
        let mut out = Vec::new();
        // Pass A: every suppression except allow(stale-suppression),
        // judged against the raw token + semantic diagnostics.
        for file in &self.files {
            for (line, rule) in file.allow_sites() {
                if rule == RULE {
                    continue;
                }
                if !is_known_rule(rule) {
                    out.push(self.semantic_diag(
                        RULE,
                        HINT,
                        &file.path,
                        *line,
                        format!("suppression names unknown rule `{rule}`"),
                    ));
                    continue;
                }
                let covers = raw.iter().any(|d| {
                    d.rule == rule
                        && d.file == file.path
                        && (d.line == *line || d.line == *line + 1)
                });
                if !covers {
                    out.push(self.semantic_diag(
                        RULE,
                        HINT,
                        &file.path,
                        *line,
                        format!("allow({rule}) no longer suppresses anything here"),
                    ));
                }
            }
            for (line, rule) in file.file_allow_sites() {
                if rule == RULE {
                    continue;
                }
                if !is_known_rule(rule) {
                    out.push(self.semantic_diag(
                        RULE,
                        HINT,
                        &file.path,
                        *line,
                        format!("suppression names unknown rule `{rule}`"),
                    ));
                    continue;
                }
                if !raw.iter().any(|d| d.rule == rule && d.file == file.path) {
                    out.push(self.semantic_diag(
                        RULE,
                        HINT,
                        &file.path,
                        *line,
                        format!("allow-file({rule}) no longer suppresses anything in this file"),
                    ));
                }
            }
        }
        // Pass B: allow(stale-suppression) sites are judged against the
        // stale diagnostics pass A just produced — an allow covering a
        // migration-in-progress stays valid exactly while the stale
        // report it silences exists.
        for file in &self.files {
            for (line, rule) in file.allow_sites() {
                if rule != RULE {
                    continue;
                }
                let covers = out
                    .iter()
                    .any(|d| d.file == file.path && (d.line == *line || d.line == *line + 1));
                if !covers {
                    out.push(self.semantic_diag(
                        RULE,
                        HINT,
                        &file.path,
                        *line,
                        "allow(stale-suppression) no longer suppresses anything here".to_string(),
                    ));
                }
            }
        }
        out
    }
}
