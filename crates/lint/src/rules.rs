//! The rule set: each rule encodes one workspace invariant that the
//! compiler cannot check. Rules are heuristic by design — they match
//! token shapes, not types — and every rule supports inline
//! `// oeb-lint: allow(<rule>)` suppression for the cases where a human
//! has judged the pattern safe (see DESIGN.md, "Static invariants").

use crate::engine::{diag, Diagnostic, FileKind, Severity, SourceFile};
use crate::lexer::{Token, TokenKind};

/// One registered rule.
pub struct Rule {
    /// Kebab-case rule id, as used in `allow(...)`.
    pub name: &'static str,
    pub severity: Severity,
    /// The invariant the rule encodes, for `oeb-lint rules` and docs.
    pub invariant: &'static str,
    /// Fix hint attached to every diagnostic of this rule.
    pub hint: &'static str,
    pub check: fn(&Rule, &SourceFile) -> Vec<Diagnostic>,
}

/// Crates whose `src/` is held to panic-hygiene rules: numeric and
/// streaming kernels that run inside panic-isolated sweep workers,
/// where a panic costs a whole (dataset, algorithm) cell.
const KERNEL_CRATES: &[&str] = &[
    "drift",
    "faults",
    "linalg",
    "nn",
    "outlier",
    "preprocess",
    "synth",
    "tabular",
    "tree",
];

/// The active rule set, in diagnostic-output order.
pub fn all() -> &'static [Rule] {
    &[
        Rule {
            name: "nondeterministic-iteration",
            severity: Severity::Error,
            invariant: "ordered output never derives from HashMap/HashSet iteration order \
                        without a subsequent total sort",
            hint: "collect then sort with a total key (e.g. `(Reverse(count), name)`), \
                   or use a BTreeMap/BTreeSet",
            check: nondeterministic_iteration,
        },
        Rule {
            name: "unseeded-rng",
            severity: Severity::Error,
            invariant: "every random source is seeded; results are bit-identical across runs",
            hint: "use `StdRng::seed_from_u64(seed)` with a seed threaded from the config",
            check: unseeded_rng,
        },
        Rule {
            name: "wall-clock-in-results",
            severity: Severity::Error,
            invariant: "result values never depend on the wall clock (timing lives in \
                        crates/bench)",
            hint: "move timing into crates/bench, or annotate why the measured duration \
                   is itself the reported metric",
            check: wall_clock_in_results,
        },
        Rule {
            name: "raw-instant",
            severity: Severity::Error,
            invariant: "clock reads go through oeb-trace (`Stopwatch` / spans); \
                        `Instant::now`/`SystemTime::now` appear only in crates/trace",
            hint: "use `oeb_trace::Stopwatch::start()` (and `elapsed_seconds`/`stop`) \
                   instead of reading the clock directly",
            check: raw_instant,
        },
        Rule {
            name: "nan-partial-cmp",
            severity: Severity::Error,
            invariant: "float comparisons never panic on NaN",
            hint: "use `total_cmp`, or make the NaN policy explicit with \
                   `partial_cmp(..).unwrap_or(Ordering::..)`",
            check: nan_partial_cmp,
        },
        Rule {
            name: "panic-in-library",
            severity: Severity::Error,
            invariant: "kernel crates do not panic on malformed input \
                        (unwrap/expect/constant indexing)",
            hint: "return a Result/Option, use `.get(i)`, or allow-annotate with the \
                   invariant that makes the panic unreachable",
            check: panic_in_library,
        },
        Rule {
            name: "float-eq",
            severity: Severity::Error,
            invariant: "floats are never compared with `==`/`!=` against literals",
            hint: "compare with an epsilon (`(x - y).abs() < tol`), or allow-annotate \
                   an intentional exact comparison (e.g. a zero-pivot guard)",
            check: float_eq,
        },
    ]
}

/// Looks up a rule by name (used by the CLI to validate `--warn`).
pub fn by_name(name: &str) -> Option<&'static Rule> {
    all().iter().find(|r| r.name == name)
}

// --- unseeded-rng -------------------------------------------------------

/// Constructors that pull entropy from the environment. Any one of them
/// makes a run irreproducible, so they are banned everywhere — tests
/// and examples included.
fn unseeded_rng(rule: &Rule, file: &SourceFile) -> Vec<Diagnostic> {
    file.tokens
        .iter()
        .filter(|t| {
            t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng")
        })
        .map(|t| {
            diag(
                rule,
                file,
                t,
                format!("`{}` draws entropy from the environment", t.text),
            )
        })
        .collect()
}

// --- wall-clock-in-results ----------------------------------------------

/// `Instant::now` / `SystemTime` outside `crates/bench` and
/// `crates/trace` and outside test/bench/example code: wall-clock
/// readings must not flow into result artifacts. (`crates/trace` is the
/// sanctioned clock owner; `raw-instant` polices everything else.)
fn wall_clock_in_results(rule: &Rule, file: &SourceFile) -> Vec<Diagnostic> {
    if matches!(file.crate_name.as_deref(), Some("bench") | Some("trace")) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if file.is_test_code(t.line) || t.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "SystemTime" => true,
            "Instant" => {
                ident_at(&file.tokens, i + 2, "now") && punct_at(&file.tokens, i + 1, "::")
            }
            _ => false,
        };
        if flagged {
            out.push(diag(
                rule,
                file,
                t,
                format!("`{}` reads the wall clock outside crates/bench", t.text),
            ));
        }
    }
    out
}

// --- raw-instant --------------------------------------------------------

/// `Instant::now()` / `SystemTime::now()` anywhere outside
/// `crates/trace` — tests, benches, and binaries included. oeb-trace's
/// `Stopwatch` wraps the same clock behind one audited crate, so every
/// timing site stays span-capable and the bit-identity contract
/// (wall-clock only in trace output channels, never in results) has a
/// single place to verify.
fn raw_instant(rule: &Rule, file: &SourceFile) -> Vec<Diagnostic> {
    if file.crate_name.as_deref() == Some("trace") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !matches!(t.text.as_str(), "Instant" | "SystemTime")
            || !punct_at(&file.tokens, i + 1, "::")
            || !ident_at(&file.tokens, i + 2, "now")
        {
            continue;
        }
        out.push(diag(
            rule,
            file,
            t,
            format!("`{}::now` reads the clock outside crates/trace", t.text),
        ));
    }
    out
}

// --- nan-partial-cmp ----------------------------------------------------

/// `partial_cmp(..).unwrap()` (or `.expect(..)`) panics the moment a
/// NaN reaches the comparison — exactly when a degraded stream needs
/// the pipeline to keep going. Applies to tests too: a NaN-panicking
/// assertion helper is still a NaN-panicking comparison.
fn nan_partial_cmp(rule: &Rule, file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if !t.is_ident("partial_cmp") {
            continue;
        }
        let window = &file.tokens[i..file.tokens.len().min(i + 9)];
        if window
            .iter()
            .any(|w| w.kind == TokenKind::Ident && (w.text == "unwrap" || w.text == "expect"))
        {
            out.push(diag(
                rule,
                file,
                t,
                "`partial_cmp(..).unwrap()` panics on NaN".to_string(),
            ));
        }
    }
    out
}

// --- float-eq -----------------------------------------------------------

/// `==` / `!=` with a float literal (or `f64::NAN`-style constant) on
/// either side. Library code only: tests legitimately assert exact
/// values that the code under test produced deterministically.
fn float_eq(rule: &Rule, file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || file.is_test_code(t.line) {
            continue;
        }
        let prev_is_float = i > 0 && file.tokens[i - 1].kind == TokenKind::Float;
        // Right side: optional unary minus, then a float literal or a
        // `f64::NAN` / `f32::INFINITY` style constant.
        let mut j = i + 1;
        if punct_at(&file.tokens, j, "-") {
            j += 1;
        }
        let next_is_float = file
            .tokens
            .get(j)
            .is_some_and(|n| n.kind == TokenKind::Float);
        let next_is_nan_const = file
            .tokens
            .get(j)
            .is_some_and(|n| n.text == "f64" || n.text == "f32")
            && punct_at(&file.tokens, j + 1, "::");
        if prev_is_float || next_is_float || next_is_nan_const {
            out.push(diag(
                rule,
                file,
                t,
                format!("`{}` compares a float for exact equality", t.text),
            ));
        }
    }
    out
}

// --- panic-in-library ---------------------------------------------------

/// `unwrap` / `expect` / constant-literal indexing in non-test code of
/// kernel crates. Each surviving use carries an allow-annotation naming
/// the invariant that makes it unreachable.
fn panic_in_library(rule: &Rule, file: &SourceFile) -> Vec<Diagnostic> {
    let in_kernel = file.kind == FileKind::Library
        && file
            .crate_name
            .as_deref()
            .is_some_and(|c| KERNEL_CRATES.contains(&c));
    if !in_kernel {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if file.is_test_code(t.line) {
            continue;
        }
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && punct_at(&file.tokens, i - 1, ".")
        {
            out.push(diag(
                rule,
                file,
                t,
                format!("`.{}()` can panic in kernel code", t.text),
            ));
        }
        // `expr[3]`: an integer literal index directly after an index-able
        // expression (`ident[`, `)[`, `][`). Array literals (`[0; 4]`,
        // `vec![0]`) and attributes (`#[..]`) do not match this shape.
        if t.is_punct("[")
            && i > 0
            && indexable_end(&file.tokens[i - 1])
            && file
                .tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Int)
            && punct_at(&file.tokens, i + 2, "]")
        {
            out.push(diag(
                rule,
                file,
                t,
                format!(
                    "constant index `[{}]` can panic on short input",
                    file.tokens[i + 1].text
                ),
            ));
        }
    }
    out
}

/// Tokens an index expression can end with.
fn indexable_end(t: &Token) -> bool {
    t.kind == TokenKind::Ident || t.is_punct(")") || t.is_punct("]")
}

// --- nondeterministic-iteration -----------------------------------------

/// Iteration methods whose order reflects the hash map's internal
/// layout.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifiers that make a downstream use order-insensitive (a total
/// sort) or order-restoring (an ordered collection), plus reductions
/// that are commutative over the element types this workspace uses.
const ORDER_ABSOLVERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "sum",
    "count",
    "len",
    "min",
    "max",
    "all",
    "any",
    "contains",
    "contains_key",
    "is_empty",
];

/// Flags iteration over identifiers bound to `HashMap`/`HashSet` unless
/// a sort (or another order-insensitive consumer) appears within the
/// same or the next statement. Flow-insensitive and file-local on
/// purpose: a cross-function false positive is one `allow` away, a
/// missed unordered iteration is a flaky results table.
fn nondeterministic_iteration(rule: &Rule, file: &SourceFile) -> Vec<Diagnostic> {
    let tracked = hash_bound_names(&file.tokens);
    if tracked.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !tracked.contains(&t.text) {
            continue;
        }
        // `name.iter()` / `name.keys()` / … or a bare `for x in name {`.
        let method_iter = punct_at(&file.tokens, i + 1, ".")
            && file
                .tokens
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()));
        let for_iter = is_for_in_target(&file.tokens, i);
        if !(method_iter || for_iter) {
            continue;
        }
        if absolved(&file.tokens, i) {
            continue;
        }
        out.push(diag(
            rule,
            file,
            t,
            format!(
                "iteration over hash-ordered `{}` reaches ordered output",
                t.text
            ),
        ));
    }
    out
}

/// Collects identifiers bound to a `HashMap`/`HashSet` anywhere in the
/// file: `let [mut] name: HashMap<..>`, struct fields and fn params
/// (`name: &mut HashMap<..>`), and `let name = HashMap::new()`.
fn hash_bound_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left over `&`, `mut`, `<` (nested generics) to the binder.
        let mut j = i;
        while j > 0 && (tokens[j - 1].is_punct("&") || tokens[j - 1].is_ident("mut")) {
            j -= 1;
        }
        let name = if j >= 2
            && tokens[j - 1].is_punct(":")
            && tokens[j - 2].kind == TokenKind::Ident
        {
            // `name: HashMap<..>` — annotation, field, or param.
            Some(tokens[j - 2].text.clone())
        } else if j >= 2 && tokens[j - 1].is_punct("=") && tokens[j - 2].kind == TokenKind::Ident {
            // `let name = HashMap::new()`.
            Some(tokens[j - 2].text.clone())
        } else {
            None
        };
        if let Some(n) = name {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    names
}

/// True when token `i` is the iterated expression of a `for` loop:
/// `for <pat> in [&][mut] name {`. The name must head the expression
/// (`for x in map.keys()` is handled by the method pattern instead).
fn is_for_in_target(tokens: &[Token], i: usize) -> bool {
    // Walk left over `&` / `mut` to the `in`.
    let mut j = i;
    while j > 0 && (tokens[j - 1].is_punct("&") || tokens[j - 1].is_ident("mut")) {
        j -= 1;
    }
    if !(j > 0 && tokens[j - 1].is_ident("in")) {
        return false;
    }
    // Reject `for x in name.something()` — the method pattern owns it.
    if punct_at(tokens, i + 1, ".") {
        return false;
    }
    // Confirm a `for` opens this construct within a short window
    // (patterns are small: `for (k, v) in …`).
    tokens[..j.saturating_sub(1)]
        .iter()
        .rev()
        .take(12)
        .any(|t| t.is_ident("for"))
}

/// Looks ahead from the iteration site to the end of the *next*
/// statement for a sort or an order-insensitive consumer.
fn absolved(tokens: &[Token], i: usize) -> bool {
    let mut semis = 0;
    for t in tokens.iter().skip(i + 1).take(90) {
        if t.kind == TokenKind::Ident && ORDER_ABSOLVERS.contains(&t.text.as_str()) {
            return true;
        }
        if t.is_punct(";") {
            semis += 1;
            if semis == 2 {
                return false;
            }
        }
    }
    false
}

// --- small token helpers ------------------------------------------------

fn ident_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_ident(text))
}

fn punct_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(text))
}
