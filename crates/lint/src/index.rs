//! Workspace index: one pass over every parsed file distils the facts
//! the semantic rules consume — counter construction sites, the
//! `HarnessError` exit-code/kind tables, `DeltaStat` impls, test
//! functions with the types they exercise, and a static lock-order
//! graph. The index is serializable (`oeb-lint index --json`) so other
//! tooling can consume the same facts the rules do, and it is the
//! source of truth for the generated counter vocabulary
//! (`oeb-lint index --emit-vocab`).

use std::collections::BTreeMap;

use crate::engine::SourceFile;
use crate::lexer::{Token, TokenKind};
use crate::parser::{Item, ItemKind};

/// Counters that the trace snapshot synthesises itself rather than
/// constructing through `Counter::new`, so no construction site exists
/// for them; they belong to the vocabulary regardless.
pub const SYNTHESIZED_COUNTERS: &[&str] = &["trace.events.dropped"];

/// One `Counter::new("…")` / `Gauge::new("…")` construction site.
#[derive(Debug, Clone)]
pub struct MetricSite {
    pub name: String,
    pub file: String,
    pub line: u32,
    /// True when the site is in test/bench/example code — such metrics
    /// never reach production snapshots and stay out of the vocabulary.
    pub in_test: bool,
}

/// One `HarnessError` variant's row in the exit-code registry, merged
/// from the `exit_code()` and `kind()` match arms.
#[derive(Debug, Clone)]
pub struct ExitArm {
    pub variant: String,
    pub code: Option<i64>,
    pub kind: Option<String>,
    /// Line of the `exit_code()` arm (fallback: the `kind()` arm).
    pub line: u32,
}

/// One `impl DeltaStat for T` site.
#[derive(Debug, Clone)]
pub struct DeltaImpl {
    pub type_name: String,
    pub file: String,
    pub line: u32,
}

/// One `#[test]` function, with the capitalised identifiers its body
/// mentions (candidate type names) and whether it asserts bitwise /
/// snapshot equivalence.
#[derive(Debug, Clone)]
pub struct TestFn {
    pub name: String,
    pub file: String,
    pub line: u32,
    pub types: Vec<String>,
    pub equivalence: bool,
}

/// One static lock acquisition site, attributed to a function.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Fully-qualified lock identity (`oebench::WatchdogSlot::active`,
    /// `trace::REGISTRY`, or `file::fn::name` for locals).
    pub lock: String,
    /// `file::fn` of the acquiring function.
    pub func: String,
    pub file: String,
    pub line: u32,
}

/// One edge of the lock-order graph: `to` is acquired while `from` is
/// held. `via` names the callee when the edge came from one-level
/// call propagation rather than a direct nested acquisition.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
    pub via: Option<String>,
}

/// Everything the semantic rules need, from one pass over the files.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    pub counters: Vec<MetricSite>,
    pub gauges: Vec<MetricSite>,
    pub exit_arms: Vec<ExitArm>,
    /// File declaring `impl HarnessError` (workspace-relative).
    pub exit_file: Option<String>,
    pub delta_impls: Vec<DeltaImpl>,
    pub test_fns: Vec<TestFn>,
    pub lock_sites: Vec<LockSite>,
    pub lock_edges: Vec<LockEdge>,
    pub file_count: usize,
}

impl WorkspaceIndex {
    /// Builds the index over already-parsed files.
    pub fn build(files: &[SourceFile]) -> WorkspaceIndex {
        let mut idx = WorkspaceIndex {
            file_count: files.len(),
            ..WorkspaceIndex::default()
        };
        let mut fns: Vec<FnInfo> = Vec::new();
        let mut statics: Vec<StaticLock> = Vec::new();

        for (fi, file) in files.iter().enumerate() {
            collect_metrics(file, &mut idx);
            let mut ctx = CollectCtx {
                file,
                file_idx: fi,
                impl_type: None,
                idx: &mut idx,
                fns: &mut fns,
                statics: &mut statics,
            };
            for item in &file.items {
                collect_item(item, &mut ctx);
            }
        }

        detect_wrappers(files, &mut fns);
        let acquisitions: Vec<FnLocks> = fns
            .iter()
            .map(|f| scan_fn_locks(files, f, &fns, &statics))
            .collect();
        build_edges(files, &fns, &acquisitions, &mut idx);

        idx.counters
            .sort_by(|a, b| (&a.name, &a.file, a.line).cmp(&(&b.name, &b.file, b.line)));
        idx.gauges
            .sort_by(|a, b| (&a.name, &a.file, a.line).cmp(&(&b.name, &b.file, b.line)));
        idx.delta_impls
            .sort_by(|a, b| (&a.type_name, &a.file).cmp(&(&b.type_name, &b.file)));
        idx.test_fns
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        idx.lock_sites
            .sort_by(|a, b| (&a.file, a.line, &a.lock).cmp(&(&b.file, b.line, &b.lock)));
        idx.lock_edges.sort_by(|a, b| {
            (&a.from, &a.to, &a.file, a.line).cmp(&(&b.from, &b.to, &b.file, b.line))
        });
        idx.lock_edges
            .dedup_by(|a, b| a.from == b.from && a.to == b.to && a.file == b.file);
        idx
    }

    /// The counter vocabulary: sorted, deduplicated names of every
    /// counter constructed in library (non-test) code, plus the
    /// synthesised counters that have no construction site.
    pub fn counter_vocabulary(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .counters
            .iter()
            .filter(|c| !c.in_test)
            .map(|c| c.name.clone())
            .chain(SYNTHESIZED_COUNTERS.iter().map(|s| s.to_string()))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Renders the generated vocabulary module consumed by
    /// `trace_check --counters` (stable output: byte-identical for an
    /// unchanged workspace, so CI can diff it).
    pub fn render_vocab(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "//! @generated by `oeb-lint index --emit-vocab` — do not edit.\n\
             //!\n\
             //! Every counter name constructed in library code, plus counters the\n\
             //! trace snapshot synthesises itself. `trace_check --counters` loads\n\
             //! this table; the `counter-vocab-sync` lint fails when it drifts\n\
             //! from the construction sites. Regenerate with:\n\
             //!\n\
             //! ```text\n\
             //! cargo run -p oeb-lint -- index --emit-vocab\n\
             //! ```\n\n\
             /// Every counter name a production snapshot may contain.\n\
             pub const KNOWN_COUNTERS: &[&str] = &[\n",
        );
        for name in self.counter_vocabulary() {
            out.push_str(&format!("    \"{name}\",\n"));
        }
        out.push_str("];\n");
        out
    }

    /// Serialises the index (stable field order, sorted entries).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "files": self.file_count,
            "counters": self.counters.iter().map(|c| serde_json::json!({
                "name": c.name, "file": c.file, "line": c.line, "in_test": c.in_test,
            })).collect::<Vec<_>>(),
            "gauges": self.gauges.iter().map(|c| serde_json::json!({
                "name": c.name, "file": c.file, "line": c.line, "in_test": c.in_test,
            })).collect::<Vec<_>>(),
            "exit_codes": self.exit_arms.iter().map(|a| serde_json::json!({
                "variant": a.variant, "code": a.code, "kind": a.kind, "line": a.line,
            })).collect::<Vec<_>>(),
            "delta_impls": self.delta_impls.iter().map(|d| serde_json::json!({
                "type": d.type_name, "file": d.file, "line": d.line,
            })).collect::<Vec<_>>(),
            "test_fns": self.test_fns.len(),
            "lock_sites": self.lock_sites.iter().map(|s| serde_json::json!({
                "lock": s.lock, "func": s.func, "file": s.file, "line": s.line,
            })).collect::<Vec<_>>(),
            "lock_edges": self.lock_edges.iter().map(|e| serde_json::json!({
                "from": e.from, "to": e.to, "file": e.file, "line": e.line, "via": e.via,
            })).collect::<Vec<_>>(),
        })
    }
}

// ---------------------------------------------------------------------------
// Collection pass: metrics, exit arms, delta impls, test fns, fns, statics
// ---------------------------------------------------------------------------

/// A function the lock analysis will scan, with enough context to
/// resolve `self.field` receivers and attribute acquisitions.
struct FnInfo {
    file_idx: usize,
    crate_name: Option<String>,
    name: String,
    impl_type: Option<String>,
    body: (usize, usize),
    params: Vec<String>,
    /// `Some(param)` when the fn is a lock wrapper: its only `.lock()`
    /// receiver is this parameter, so call sites are the real
    /// acquisition points and the internal `.lock()` is skipped.
    wrapper_param: Option<String>,
}

impl FnInfo {
    fn qualified(&self, files: &[SourceFile]) -> String {
        format!("{}::{}", files[self.file_idx].path, self.name)
    }
}

/// A `static NAME: Mutex<…>` declaration (any item nesting level).
struct StaticLock {
    name: String,
    file_idx: usize,
    crate_name: Option<String>,
    id: String,
}

struct CollectCtx<'a> {
    file: &'a SourceFile,
    file_idx: usize,
    impl_type: Option<String>,
    idx: &'a mut WorkspaceIndex,
    fns: &'a mut Vec<FnInfo>,
    statics: &'a mut Vec<StaticLock>,
}

fn collect_item(item: &Item, ctx: &mut CollectCtx) {
    match item.kind {
        ItemKind::Fn => {
            if let Some(body) = item.body {
                ctx.fns.push(FnInfo {
                    file_idx: ctx.file_idx,
                    crate_name: ctx.file.crate_name.clone(),
                    name: item.name.clone(),
                    impl_type: ctx.impl_type.clone(),
                    body,
                    params: item.params.iter().map(|p| p.name.clone()).collect(),
                    wrapper_param: None,
                });
                if item.is_test_item() {
                    collect_test_fn(item, body, ctx);
                }
                collect_exit_arms(item, body, ctx);
            }
        }
        ItemKind::Static
            if item
                .fields
                .iter()
                .any(|f| f.type_path.iter().any(|s| s == "Mutex")) =>
        {
            let id = match &ctx.file.crate_name {
                Some(c) => format!("{c}::{}", item.name),
                None => format!("{}::{}", ctx.file.path, item.name),
            };
            ctx.statics.push(StaticLock {
                name: item.name.clone(),
                file_idx: ctx.file_idx,
                crate_name: ctx.file.crate_name.clone(),
                id,
            });
        }
        ItemKind::Impl if item.trait_name.as_deref() == Some("DeltaStat") => {
            ctx.idx.delta_impls.push(DeltaImpl {
                type_name: item.name.clone(),
                file: ctx.file.path.clone(),
                line: item.start_line,
            });
        }
        _ => {}
    }
    let saved = ctx.impl_type.clone();
    if item.kind == ItemKind::Impl {
        ctx.impl_type = Some(item.name.clone());
    }
    for child in &item.children {
        collect_item(child, ctx);
    }
    ctx.impl_type = saved;
}

/// `#[test]` fn: record capitalised identifiers (candidate type names)
/// and whether it asserts equivalence (bitwise/snapshot assertions in
/// the body, or an equivalence-shaped name).
fn collect_test_fn(item: &Item, body: (usize, usize), ctx: &mut CollectCtx) {
    let tokens = &ctx.file.tokens[body.0..body.1.min(ctx.file.tokens.len())];
    let mut types: Vec<String> = tokens
        .iter()
        .filter(|t| {
            t.kind == TokenKind::Ident
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
        })
        .map(|t| t.text.clone())
        .collect();
    types.sort();
    types.dedup();
    let body_marker = tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && (t.text == "to_bits" || t.text == "field_bits"));
    let name_marker = ["bitwise", "equivalence", "matches"]
        .iter()
        .any(|m| item.name.contains(m));
    ctx.idx.test_fns.push(TestFn {
        name: item.name.clone(),
        file: ctx.file.path.clone(),
        line: item.start_line,
        types,
        equivalence: body_marker || name_marker,
    });
}

/// Inside `impl HarnessError`, the `exit_code()` / `kind()` bodies are
/// single `match` expressions whose arms map variants to integer codes
/// and kebab-case kind strings; read them off the token stream.
fn collect_exit_arms(item: &Item, body: (usize, usize), ctx: &mut CollectCtx) {
    if ctx.impl_type.as_deref() != Some("HarnessError") {
        return;
    }
    let is_code = item.name == "exit_code";
    let is_kind = item.name == "kind";
    if !is_code && !is_kind {
        return;
    }
    ctx.idx.exit_file = Some(ctx.file.path.clone());
    let tokens = &ctx.file.tokens;
    let mut i = body.0;
    let end = body.1.min(tokens.len());
    while i < end {
        if tokens[i].is_ident("HarnessError")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            let variant = tokens[i + 2].text.clone();
            let line = tokens[i + 2].line;
            // Scan this arm for `=>` then its value token.
            let mut j = i + 3;
            while j < end && !tokens[j].is_punct("=>") {
                j += 1;
            }
            if let Some(value) = tokens.get(j + 1) {
                let arm = match ctx.idx.exit_arms.iter_mut().find(|a| a.variant == variant) {
                    Some(existing) => existing,
                    None => {
                        ctx.idx.exit_arms.push(ExitArm {
                            variant: variant.clone(),
                            code: None,
                            kind: None,
                            line,
                        });
                        ctx.idx.exit_arms.last_mut().expect("just pushed")
                    }
                };
                if is_code && value.kind == TokenKind::Int {
                    arm.code = value.text.replace('_', "").parse::<i64>().ok();
                    arm.line = line;
                } else if is_kind && value.kind == TokenKind::Literal {
                    arm.kind = Some(value.text.trim_matches('"').to_string());
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// `Counter::new("…")` / `Gauge::new("…")` sites across a file.
fn collect_metrics(file: &SourceFile, idx: &mut WorkspaceIndex) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        let ctor = &tokens[i];
        if !(ctor.is_ident("Counter") || ctor.is_ident("Gauge")) {
            continue;
        }
        if !(tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("new"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        let Some(lit) = tokens.get(i + 4).filter(|t| t.kind == TokenKind::Literal) else {
            continue;
        };
        let site = MetricSite {
            name: lit.text.trim_matches('"').to_string(),
            file: file.path.clone(),
            line: lit.line,
            in_test: file.is_test_code(ctor.line),
        };
        if ctor.is_ident("Counter") {
            idx.counters.push(site);
        } else {
            idx.gauges.push(site);
        }
    }
}

// ---------------------------------------------------------------------------
// Lock analysis
// ---------------------------------------------------------------------------

/// Marks functions whose only `.lock()` receiver is one of their own
/// parameters — lock wrappers like `fn lock_recover<T>(m: &Mutex<T>)`.
/// Their internal acquisition is attributed to call sites instead, so
/// the wrapper itself never becomes a (false) shared node in the graph.
fn detect_wrappers(files: &[SourceFile], fns: &mut [FnInfo]) {
    for f in fns.iter_mut() {
        let tokens = &files[f.file_idx].tokens;
        let end = f.body.1.min(tokens.len());
        let mut receivers: Vec<&str> = Vec::new();
        for i in f.body.0..end {
            if tokens[i].is_ident("lock")
                && i >= 2
                && tokens[i - 1].is_punct(".")
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
                && tokens[i - 2].kind == TokenKind::Ident
            {
                receivers.push(tokens[i - 2].text.as_str());
            }
        }
        if let [single] = receivers.as_slice() {
            if f.params.iter().any(|p| p == single) {
                f.wrapper_param = Some(single.to_string());
            }
        }
    }
}

/// One acquisition inside a fn body: the lock, where it happens, and
/// how long the guard lives (token index of the scope end).
struct Acq {
    lock: String,
    at: usize,
    scope_end: usize,
    line: u32,
}

/// A call to another workspace fn, for one-level edge propagation.
struct Call {
    callee: usize,
    at: usize,
    line: u32,
}

struct FnLocks {
    acqs: Vec<Acq>,
    calls: Vec<Call>,
}

fn scan_fn_locks(
    files: &[SourceFile],
    f: &FnInfo,
    fns: &[FnInfo],
    statics: &[StaticLock],
) -> FnLocks {
    let file = &files[f.file_idx];
    let tokens = &file.tokens;
    let end = f.body.1.min(tokens.len());
    let mut acqs = Vec::new();
    let mut calls = Vec::new();
    let mut i = f.body.0;
    while i < end {
        let t = &tokens[i];
        // Method-style acquisition: `<receiver>.lock()`.
        if t.is_ident("lock")
            && i > f.body.0
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|p| p.is_punct("("))
        {
            let path = receiver_path(tokens, i - 1, f.body.0);
            let skip = f
                .wrapper_param
                .as_deref()
                .is_some_and(|p| path.first().map(String::as_str) == Some(p));
            if !skip && !path.is_empty() {
                let lock = resolve_lock(&path, f, files, statics);
                acqs.push(make_acq(lock, i, tokens, f.body, t.line));
            }
            i += 2;
            continue;
        }
        // Wrapper-style acquisition: `lock(&X)` / `lock_recover(&X)` —
        // a plain call to a detected wrapper fn.
        if t.kind == TokenKind::Ident
            && tokens.get(i + 1).is_some_and(|p| p.is_punct("("))
            && (i == 0 || !tokens[i - 1].is_punct(".") && !tokens[i - 1].is_ident("fn"))
        {
            if let Some(callee) = resolve_callee(&t.text, f, fns, files) {
                if fns[callee].wrapper_param.is_some() {
                    if let Some(path) = arg_path(tokens, i + 2, end) {
                        let lock = resolve_lock(&path, f, files, statics);
                        acqs.push(make_acq(lock, i, tokens, f.body, t.line));
                        i += 2;
                        continue;
                    }
                } else {
                    calls.push(Call {
                        callee,
                        at: i,
                        line: t.line,
                    });
                }
            }
        }
        // Method call on self: `self.g(…)` → same-impl callee.
        if t.kind == TokenKind::Ident
            && i >= 2
            && tokens[i - 1].is_punct(".")
            && tokens[i - 2].is_ident("self")
            && tokens.get(i + 1).is_some_and(|p| p.is_punct("("))
            && t.text != "lock"
        {
            if let Some(callee) = resolve_callee(&t.text, f, fns, files) {
                calls.push(Call {
                    callee,
                    at: i,
                    line: t.line,
                });
            }
        }
        i += 1;
    }
    FnLocks { acqs, calls }
}

/// Guard liveness: a `let`-bound guard lives to the end of its
/// enclosing block; a temporary dies at the end of the statement.
fn make_acq(lock: String, at: usize, tokens: &[Token], body: (usize, usize), line: u32) -> Acq {
    let end = body.1.min(tokens.len());
    let stmt_start = statement_start(tokens, at, body.0);
    let let_bound = tokens.get(stmt_start).is_some_and(|t| t.is_ident("let"));
    let scope_end = if let_bound {
        enclosing_block_end(tokens, at, end)
    } else {
        statement_end(tokens, at, end)
    };
    Acq {
        lock,
        at,
        scope_end,
        line,
    }
}

/// Walks back to the first token of the statement containing `at`: just
/// after the previous `;` / `{` / `}` at this nesting level.
fn statement_start(tokens: &[Token], at: usize, lo: usize) -> usize {
    let mut bal = 0i64;
    let mut j = at;
    while j > lo {
        j -= 1;
        let t = &tokens[j];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            ")" | "]" | "}" => bal += 1,
            "(" | "[" => bal -= 1,
            "{" => {
                if bal == 0 {
                    return j + 1;
                }
                bal -= 1;
            }
            ";" if bal == 0 => return j + 1,
            _ => {}
        }
        if bal < 0 {
            return j + 1;
        }
    }
    lo
}

/// Forward to the `;` ending the statement at this nesting level (or
/// the end of the enclosing block, whichever comes first).
fn statement_end(tokens: &[Token], at: usize, hi: usize) -> usize {
    let mut bal = 0i64;
    for (j, t) in tokens.iter().enumerate().take(hi).skip(at) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => bal += 1,
            ")" | "]" => bal -= 1,
            "}" => {
                bal -= 1;
                if bal < 0 {
                    return j;
                }
            }
            ";" if bal == 0 => return j,
            _ => {}
        }
    }
    hi
}

/// Forward to the `}` closing the block that contains `at`.
fn enclosing_block_end(tokens: &[Token], at: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().take(hi).skip(at) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    hi
}

/// Reads the dotted identifier path ending at the `.` token index `dot`
/// (`self.active.lock()` → `["self", "active"]`; `slots[i].lock()` →
/// `["slots"]`). Returns an empty path for expression receivers.
fn receiver_path(tokens: &[Token], dot: usize, lo: usize) -> Vec<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot;
    loop {
        if j == lo {
            break;
        }
        let prev = &tokens[j - 1];
        if prev.is_punct("]") {
            // Skip an index expression `[…]`.
            let mut bal = 0i64;
            let mut k = j - 1;
            loop {
                if tokens[k].is_punct("]") {
                    bal += 1;
                } else if tokens[k].is_punct("[") {
                    bal -= 1;
                    if bal == 0 {
                        break;
                    }
                }
                if k == lo {
                    break;
                }
                k -= 1;
            }
            j = k;
            continue;
        }
        if prev.kind == TokenKind::Ident {
            parts.push(prev.text.clone());
            if j >= 2 && tokens[j - 2].is_punct(".") {
                j -= 2;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    parts
}

/// Reads the lock argument of a wrapper call starting after its `(`:
/// `&self.active` → `["self","active"]`, `&slots[i]` → `["slots"]`,
/// `slot` → `["slot"]`. `None` for expression arguments.
fn arg_path(tokens: &[Token], mut i: usize, hi: usize) -> Option<Vec<String>> {
    while i < hi && (tokens[i].is_punct("&") || tokens[i].is_ident("mut")) {
        i += 1;
    }
    let mut parts = Vec::new();
    while i < hi && tokens[i].kind == TokenKind::Ident {
        parts.push(tokens[i].text.clone());
        i += 1;
        if i < hi && tokens[i].is_punct(".") {
            i += 1;
        } else {
            break;
        }
    }
    if parts.is_empty() {
        return None;
    }
    // Anything but `)`, `,`, or an index next means a complex
    // expression we do not model.
    match tokens.get(i) {
        Some(t) if t.is_punct(")") || t.is_punct(",") || t.is_punct("[") => Some(parts),
        _ => None,
    }
}

/// Fully-qualified lock identity for a receiver path, in order of
/// preference: `self.field` via the enclosing impl; a `static Mutex`
/// declared in the same file, same crate, or (if globally unique) any
/// crate; otherwise a function-local lock.
fn resolve_lock(
    path: &[String],
    f: &FnInfo,
    files: &[SourceFile],
    statics: &[StaticLock],
) -> String {
    let file = &files[f.file_idx];
    if path[0] == "self" {
        let owner = f.impl_type.clone().unwrap_or_else(|| "Self".to_string());
        let scope = f.crate_name.clone().unwrap_or_else(|| file.path.clone());
        return format!("{scope}::{owner}::{}", path[1..].join("."));
    }
    let name = &path[0];
    // A fn-local `static NAME` shadows workspace statics.
    let tokens = &file.tokens;
    let end = f.body.1.min(tokens.len());
    let local_static = (f.body.0..end.saturating_sub(1))
        .any(|i| tokens[i].is_ident("static") && tokens[i + 1].is_ident(name));
    if !local_static {
        let same_file: Vec<&StaticLock> = statics
            .iter()
            .filter(|s| s.name == *name && s.file_idx == f.file_idx)
            .collect();
        if let [s] = same_file.as_slice() {
            return s.id.clone();
        }
        let same_crate: Vec<&StaticLock> = statics
            .iter()
            .filter(|s| s.name == *name && s.crate_name == f.crate_name)
            .collect();
        if let [s] = same_crate.as_slice() {
            return s.id.clone();
        }
        let anywhere: Vec<&StaticLock> = statics.iter().filter(|s| s.name == *name).collect();
        if let [s] = anywhere.as_slice() {
            return s.id.clone();
        }
    }
    format!("{}::{}::{}", file.path, f.name, path.join("."))
}

/// Resolves a call target by name: same file first, then unique within
/// the same crate. Ambiguous or foreign names stay unresolved — the
/// propagation is deliberately one level and workspace-local.
fn resolve_callee(name: &str, f: &FnInfo, fns: &[FnInfo], files: &[SourceFile]) -> Option<usize> {
    let same_file: Vec<usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, g)| g.name == name && g.file_idx == f.file_idx)
        .map(|(i, _)| i)
        .collect();
    if let [i] = same_file.as_slice() {
        return Some(*i);
    }
    let same_crate: Vec<usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            g.name == name && g.crate_name == f.crate_name && files[g.file_idx].crate_name.is_some()
        })
        .map(|(i, _)| i)
        .collect();
    if let [i] = same_crate.as_slice() {
        return Some(*i);
    }
    None
}

/// Edges: `A → B` when `B` is acquired (directly, or inside a callee,
/// one level deep) while `A`'s guard is live.
fn build_edges(files: &[SourceFile], fns: &[FnInfo], locks: &[FnLocks], idx: &mut WorkspaceIndex) {
    for (fi, fl) in locks.iter().enumerate() {
        let f = &fns[fi];
        let file_path = files[f.file_idx].path.clone();
        let func = f.qualified(files);
        for a in &fl.acqs {
            idx.lock_sites.push(LockSite {
                lock: a.lock.clone(),
                func: func.clone(),
                file: file_path.clone(),
                line: a.line,
            });
            for b in &fl.acqs {
                if b.at > a.at && b.at < a.scope_end {
                    idx.lock_edges.push(LockEdge {
                        from: a.lock.clone(),
                        to: b.lock.clone(),
                        file: file_path.clone(),
                        line: b.line,
                        via: None,
                    });
                }
            }
            for call in &fl.calls {
                if call.at > a.at && call.at < a.scope_end {
                    for inner in &locks[call.callee].acqs {
                        idx.lock_edges.push(LockEdge {
                            from: a.lock.clone(),
                            to: inner.lock.clone(),
                            file: file_path.clone(),
                            line: call.line,
                            via: Some(fns[call.callee].name.clone()),
                        });
                    }
                }
            }
        }
    }
}

/// Deterministic adjacency list over the edge set, for cycle detection.
pub fn lock_graph(edges: &[LockEdge]) -> BTreeMap<&str, Vec<&LockEdge>> {
    let mut g: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        g.entry(e.from.as_str()).or_default().push(e);
    }
    for targets in g.values_mut() {
        targets.sort_by(|a, b| a.to.cmp(&b.to));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> (Vec<SourceFile>, WorkspaceIndex) {
        let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let idx = WorkspaceIndex::build(&parsed);
        (parsed, idx)
    }

    #[test]
    fn counters_are_collected_with_test_flags() {
        let (_, idx) = ws(&[
            (
                "crates/a/src/lib.rs",
                "static HIT: Counter = Counter::new(\"a.hit\");\n\
                 #[cfg(test)]\nmod tests {\n    static T: Counter = Counter::new(\"a.test\");\n}\n",
            ),
            (
                "crates/a/tests/t.rs",
                "static X: Counter = Counter::new(\"a.integration\");\n",
            ),
        ]);
        let names: Vec<(&str, bool)> = idx
            .counters
            .iter()
            .map(|c| (c.name.as_str(), c.in_test))
            .collect();
        assert_eq!(
            names,
            [("a.hit", false), ("a.integration", true), ("a.test", true)]
        );
        let vocab = idx.counter_vocabulary();
        assert!(vocab.contains(&"a.hit".to_string()));
        assert!(!vocab.contains(&"a.test".to_string()));
        assert!(vocab.contains(&"trace.events.dropped".to_string()));
    }

    #[test]
    fn exit_arms_merge_code_and_kind() {
        let src = "pub enum HarnessError { A(String), B }\n\
                   impl HarnessError {\n\
                     pub fn exit_code(&self) -> i32 {\n\
                       match self { HarnessError::A(_) => 3, HarnessError::B => 4 }\n\
                     }\n\
                     pub fn kind(&self) -> &'static str {\n\
                       match self { HarnessError::A(_) => \"a\", HarnessError::B => \"b\" }\n\
                     }\n\
                   }\n";
        let (_, idx) = ws(&[("crates/oebench/src/error.rs", src)]);
        assert_eq!(
            idx.exit_file.as_deref(),
            Some("crates/oebench/src/error.rs")
        );
        assert_eq!(idx.exit_arms.len(), 2);
        assert_eq!(idx.exit_arms[0].variant, "A");
        assert_eq!(idx.exit_arms[0].code, Some(3));
        assert_eq!(idx.exit_arms[0].kind.as_deref(), Some("a"));
        assert_eq!(idx.exit_arms[1].code, Some(4));
    }

    #[test]
    fn delta_impls_and_equivalence_tests_are_found() {
        let (_, idx) = ws(&[(
            "crates/tabular/src/delta.rs",
            "pub struct MissingDelta { n: usize }\n\
             impl DeltaStat for MissingDelta { }\n\
             #[cfg(test)]\nmod tests {\n\
               #[test]\n fn snapshot_matches_bitwise() {\n\
                 let d = MissingDelta { n: 0 };\n\
                 assert_eq!(1f64.to_bits(), 1f64.to_bits());\n\
               }\n\
             }\n",
        )]);
        assert_eq!(idx.delta_impls.len(), 1);
        assert_eq!(idx.delta_impls[0].type_name, "MissingDelta");
        assert_eq!(idx.test_fns.len(), 1);
        let t = &idx.test_fns[0];
        assert!(t.equivalence);
        assert!(t.types.iter().any(|n| n == "MissingDelta"));
    }

    #[test]
    fn nested_direct_acquisitions_make_an_edge() {
        let (_, idx) = ws(&[(
            "crates/a/src/lib.rs",
            "static A: Mutex<u32> = Mutex::new(0);\n\
             static B: Mutex<u32> = Mutex::new(0);\n\
             fn both() {\n    let g = A.lock();\n    let h = B.lock();\n}\n",
        )]);
        assert_eq!(idx.lock_sites.len(), 2);
        assert_eq!(idx.lock_edges.len(), 1);
        assert_eq!(idx.lock_edges[0].from, "a::A");
        assert_eq!(idx.lock_edges[0].to, "a::B");
    }

    #[test]
    fn scoped_guard_makes_no_edge() {
        let (_, idx) = ws(&[(
            "crates/a/src/lib.rs",
            "static A: Mutex<u32> = Mutex::new(0);\n\
             static B: Mutex<u32> = Mutex::new(0);\n\
             fn seq() {\n    {\n        let g = A.lock();\n    }\n    let h = B.lock();\n}\n",
        )]);
        assert!(idx.lock_edges.is_empty(), "{:?}", idx.lock_edges);
    }

    #[test]
    fn temporary_guard_is_statement_scoped() {
        let (_, idx) = ws(&[(
            "crates/a/src/lib.rs",
            "static A: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n\
             static B: Mutex<u32> = Mutex::new(0);\n\
             fn seq() {\n    A.lock().push(1);\n    let h = B.lock();\n}\n",
        )]);
        assert!(idx.lock_edges.is_empty(), "{:?}", idx.lock_edges);
    }

    #[test]
    fn wrapper_calls_are_acquisitions_of_the_argument() {
        let (_, idx) = ws(&[(
            "crates/a/src/lib.rs",
            "static A: Mutex<u32> = Mutex::new(0);\n\
             static B: Mutex<u32> = Mutex::new(0);\n\
             fn lock_recover(m: &Mutex<u32>) -> u32 { *m.lock() }\n\
             fn both() {\n    let g = lock_recover(&A);\n    let h = lock_recover(&B);\n}\n",
        )]);
        // The wrapper's own `m.lock()` is not a site; the call sites are.
        assert_eq!(idx.lock_sites.len(), 2, "{:?}", idx.lock_sites);
        assert_eq!(idx.lock_edges.len(), 1);
        assert_eq!(idx.lock_edges[0].from, "a::A");
        assert_eq!(idx.lock_edges[0].to, "a::B");
    }

    #[test]
    fn call_edges_propagate_one_level() {
        let (_, idx) = ws(&[(
            "crates/a/src/lib.rs",
            "static A: Mutex<u32> = Mutex::new(0);\n\
             static B: Mutex<u32> = Mutex::new(0);\n\
             fn inner() {\n    let g = B.lock();\n}\n\
             fn outer() {\n    let g = A.lock();\n    inner();\n}\n",
        )]);
        let via: Vec<_> = idx.lock_edges.iter().filter(|e| e.via.is_some()).collect();
        assert_eq!(via.len(), 1, "{:?}", idx.lock_edges);
        assert_eq!(via[0].from, "a::A");
        assert_eq!(via[0].to, "a::B");
        assert_eq!(via[0].via.as_deref(), Some("inner"));
    }

    #[test]
    fn self_field_locks_resolve_via_the_impl() {
        let (_, idx) = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct Slot { active: Mutex<u32> }\n\
             impl Slot {\n    fn read(&self) -> u32 {\n        *self.active.lock()\n    }\n}\n",
        )]);
        assert_eq!(idx.lock_sites.len(), 1);
        assert_eq!(idx.lock_sites[0].lock, "a::Slot::active");
    }

    #[test]
    fn vocab_rendering_is_stable_and_marked_generated() {
        let (_, idx) = ws(&[(
            "crates/a/src/lib.rs",
            "static H: Counter = Counter::new(\"b.z\");\nstatic I: Counter = Counter::new(\"a.a\");\n",
        )]);
        let text = idx.render_vocab();
        assert!(text.starts_with("//! @generated"));
        let a = text.find("\"a.a\"").unwrap();
        let b = text.find("\"b.z\"").unwrap();
        assert!(a < b, "vocabulary must be sorted");
    }
}
