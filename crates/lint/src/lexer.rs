//! A small hand-rolled Rust lexer.
//!
//! The rules in this crate match on token shapes, not on raw text, so
//! the lexer has to get the hard cases right: a `partial_cmp` inside a
//! string literal or a doc comment is not a violation, `'a` is a
//! lifetime while `'a'` is a char, `r#"..."#` swallows quotes, and
//! block comments nest. Everything else — full expression parsing,
//! type inference — is deliberately out of scope; rules compensate
//! with small look-ahead/look-behind windows over the token stream.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `HashMap`, `partial_cmp`).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u32`).
    Int,
    /// Float literal (`1.0`, `1e-5`, `2f64`).
    Float,
    /// String, raw string, byte string, or char literal.
    Literal,
    /// `//` or `/* */` comment (kept: suppressions live here).
    Comment,
    /// Punctuation; multi-char operators (`==`, `::`, `..`) are one token.
    Punct,
}

/// One lexed token with its position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Multi-character operators, longest first so matching is greedy.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens, comments included. Unterminated literals
/// and comments are tolerated (the token simply runs to end of file):
/// a linter must never panic on the code it inspects.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    // A shebang line (`#!/usr/bin/env …` — rustc: `#!` at byte 0 not
    // followed by `[`) is ignored like a comment; `#![inner_attr]`
    // still lexes as ordinary tokens.
    if src.starts_with("#!") && !src.starts_with("#![") {
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        while cur.peek(0).is_some_and(|c| c != b'\n') {
            cur.bump();
        }
        tokens.push(Token {
            kind: TokenKind::Comment,
            text: src[start..cur.pos].to_string(),
            line,
            col,
        });
    }
    while let Some(b) = cur.peek(0) {
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                while cur.peek(0).is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                TokenKind::Comment
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                TokenKind::Comment
            }
            b'r' | b'b' if starts_raw_string(&cur) => {
                lex_raw_string(&mut cur);
                TokenKind::Literal
            }
            b'b' if cur.peek(1) == Some(b'"') => {
                cur.bump();
                lex_quoted(&mut cur, b'"');
                TokenKind::Literal
            }
            b'b' if cur.peek(1) == Some(b'\'') => {
                cur.bump();
                lex_quoted(&mut cur, b'\'');
                TokenKind::Literal
            }
            b'"' => {
                lex_quoted(&mut cur, b'"');
                TokenKind::Literal
            }
            b'\'' => lex_lifetime_or_char(&mut cur),
            _ if is_ident_start(b) => {
                while cur.peek(0).is_some_and(is_ident_cont) {
                    cur.bump();
                }
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => lex_number(&mut cur),
            _ => {
                let rest = &src[cur.pos..];
                let op = OPERATORS.iter().find(|op| rest.starts_with(**op));
                for _ in 0..op.map_or(1, |op| op.len()) {
                    cur.bump();
                }
                TokenKind::Punct
            }
        };
        tokens.push(Token {
            kind,
            text: src[start..cur.pos].to_string(),
            line,
            col,
        });
    }
    tokens
}

/// `r"`, `r#"`, `br"`, `br#"` … introduce a raw (byte) string.
fn starts_raw_string(cur: &Cursor) -> bool {
    let mut i = 1;
    if cur.peek(0) == Some(b'b') {
        if cur.peek(1) != Some(b'r') {
            return false;
        }
        i = 2;
    }
    loop {
        match cur.peek(i) {
            Some(b'#') => i += 1,
            Some(b'"') => return true,
            _ => return false,
        }
    }
}

fn lex_raw_string(cur: &mut Cursor) {
    if cur.peek(0) == Some(b'b') {
        cur.bump();
    }
    cur.bump(); // 'r'
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    'scan: while let Some(b) = cur.bump() {
        if b == b'"' {
            for i in 0..hashes {
                if cur.peek(i) != Some(b'#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return;
        }
    }
}

/// A `"..."` or `'...'` body with `\`-escapes; consumes the closing quote.
fn lex_quoted(cur: &mut Cursor, quote: u8) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        if b == b'\\' {
            cur.bump();
        } else if b == quote {
            return;
        }
    }
}

/// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal).
fn lex_lifetime_or_char(cur: &mut Cursor) -> TokenKind {
    let next = cur.peek(1);
    let after = cur.peek(2);
    if next == Some(b'\\') || (next.is_some_and(|b| b != b'\'') && after == Some(b'\'')) {
        lex_quoted(cur, b'\'');
        return TokenKind::Literal;
    }
    if next.is_some_and(is_ident_start) {
        cur.bump(); // '
        while cur.peek(0).is_some_and(is_ident_cont) {
            cur.bump();
        }
        return TokenKind::Lifetime;
    }
    // Degenerate char like `' '`.
    lex_quoted(cur, b'\'');
    TokenKind::Literal
}

/// Integer or float. Decimal numbers become floats when they carry a
/// fraction, an exponent, or an `f32`/`f64` suffix; `1..2` and
/// `1.method()` keep the `1` an integer, matching rustc.
fn lex_number(cur: &mut Cursor) -> TokenKind {
    let radix_prefix = cur.peek(0) == Some(b'0')
        && matches!(cur.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
    if radix_prefix {
        cur.bump();
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_cont) {
            cur.bump();
        }
        return TokenKind::Int;
    }
    let mut float = false;
    while cur.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        cur.bump();
    }
    if cur.peek(0) == Some(b'.')
        && cur.peek(1) != Some(b'.')
        && !cur.peek(1).is_some_and(is_ident_start)
    {
        float = true;
        cur.bump();
        while cur.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            cur.bump();
        }
    }
    if matches!(cur.peek(0), Some(b'e' | b'E'))
        && (cur.peek(1).is_some_and(|b| b.is_ascii_digit())
            || (matches!(cur.peek(1), Some(b'+' | b'-'))
                && cur.peek(2).is_some_and(|b| b.is_ascii_digit())))
    {
        float = true;
        cur.bump();
        cur.bump();
        while cur.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            cur.bump();
        }
    }
    // Type suffix (`u32`, `f64`, …) decides floatness for e.g. `2f64`.
    let suffix_start = cur.pos;
    while cur.peek(0).is_some_and(is_ident_cont) {
        cur.bump();
    }
    let suffix = &cur.src[suffix_start..cur.pos];
    if suffix == b"f32" || suffix == b"f64" {
        float = true;
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "partial_cmp .unwrap()";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || (t != "partial_cmp" && t != "unwrap")));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r###"let s = r#"a "quoted" thread_rng"#; x"###);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            1
        );
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
        assert!(!toks.iter().any(|(_, t)| t == "thread_rng"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 1, "{toks:?}");
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn escaped_quote_char_literal() {
        let toks = kinds(r"let q = '\''; let n = '\n';");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("/* outer /* inner */ still comment */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert_eq!(toks[1].1, "ident");
    }

    #[test]
    fn numbers_classify_floats_vs_ints() {
        for (src, kind) in [
            ("1.0", TokenKind::Float),
            ("1e-5", TokenKind::Float),
            ("2f64", TokenKind::Float),
            ("7", TokenKind::Int),
            ("0xff", TokenKind::Int),
            ("1_000u32", TokenKind::Int),
        ] {
            assert_eq!(kinds(src)[0].0, kind, "{src}");
        }
        // `1..2` is a range of ints; `1.max(2)` is a method on an int.
        let range = kinds("1..2");
        assert_eq!(range[0].0, TokenKind::Int);
        assert_eq!(range[1].1, "..");
        let method = kinds("1.max(2)");
        assert_eq!(method[0].0, TokenKind::Int);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = kinds("a == b != c :: d .. e");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", ".."]);
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn shebang_is_a_comment_but_inner_attrs_are_not() {
        let toks = kinds("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert!(toks[0].1.starts_with("#!/usr"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "main"));
        // `#![forbid(..)]` must still produce `#`/`!`/`[` punctuation.
        let attr = kinds("#![forbid(unsafe_code)]");
        assert_eq!(attr[0].1, "#");
        assert_eq!(attr[1].1, "!");
        // `#!` later in the file is two punct tokens, never a comment.
        let mid = kinds("fn f() {}\n#!x");
        assert!(mid.iter().all(|(k, _)| *k != TokenKind::Comment));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"open", "r#\"open", "/* open", "'"] {
            let _ = lex(src);
        }
    }
}
