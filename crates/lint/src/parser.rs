//! Recursive-descent item-level parser over the lexer's token stream.
//!
//! Where the v1 rules matched raw token shapes, the v2 semantic rules
//! need to know *what item* a token belongs to: which `fn` a lock is
//! acquired in, whether an `impl` implements `DeltaStat`, whether a
//! `const` is the generated counter vocabulary, which functions carry
//! `#[test]`. This parser recovers exactly that structure — items with
//! names, attributes, fields, parameters, and body token ranges — and
//! deliberately nothing more: expressions stay a flat token slice that
//! rules scan with the same window techniques as v1.
//!
//! Like the lexer, the parser must never panic or loop on malformed
//! input; unparseable constructs are skipped token by token until the
//! next plausible item start.

use crate::lexer::{Token, TokenKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Union,
    Trait,
    Impl,
    Mod,
    Const,
    Static,
    Use,
    TypeAlias,
    MacroDef,
}

/// One outer attribute, flattened.
#[derive(Debug, Clone)]
pub struct Attr {
    /// The attribute body text with tokens space-joined
    /// (`cfg ( test )`, `test`, `derive ( Debug , Clone )`).
    pub text: String,
    /// True when an identifier `test` or `bench` appears anywhere in
    /// the attribute (string literals do not count).
    pub has_test: bool,
    pub line: u32,
}

/// A named struct field, enum variant, or fn parameter.
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    /// First identifier of the declared type (`Mutex` for
    /// `Mutex<Option<T>>`, `Vec` for `Vec<Mutex<T>>`), empty when the
    /// type has no leading identifier. For fields the *full* head chain
    /// is kept in [`Field::type_path`].
    pub type_head: String,
    /// Leading identifier path of the type with generics stripped
    /// (`Vec`, `std::sync::Mutex` → `Mutex` is still the last segment).
    pub type_path: Vec<String>,
    pub line: u32,
}

/// One parsed item. `children` holds nested items for `mod`, `impl`,
/// and `trait` bodies.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name: the fn/struct/enum/mod/const name; for an `impl`,
    /// the implemented *type* name (last path segment).
    pub name: String,
    /// For `impl Trait for Type`, the trait's last path segment.
    pub trait_name: Option<String>,
    pub attrs: Vec<Attr>,
    /// First line of the item (its first attribute if any).
    pub start_line: u32,
    pub end_line: u32,
    /// Token range (half-open, indices into the comment-free stream)
    /// covering the whole item including attributes and body.
    pub tokens: (usize, usize),
    /// Token range strictly inside the `{ … }` body (fn body, mod body,
    /// const initialiser from `=` to `;`), when the item has one.
    pub body: Option<(usize, usize)>,
    /// Nested items (`mod`/`impl`/`trait` members).
    pub children: Vec<Item>,
    /// Struct fields or enum variants.
    pub fields: Vec<Field>,
    /// Fn parameter names (excluding `self`).
    pub params: Vec<Field>,
}

impl Item {
    /// True when any outer attribute marks this item as test/bench code
    /// (`#[test]`, `#[bench]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`).
    pub fn is_test_item(&self) -> bool {
        self.attrs.iter().any(|a| a.has_test)
    }

    /// Depth-first walk over this item and all nested children.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Item)) {
        visit(self);
        for c in &self.children {
            c.walk(visit);
        }
    }
}

/// Parses a whole file's comment-free token stream into top-level items.
pub fn parse_items(tokens: &[Token]) -> Vec<Item> {
    let mut p = Parser { tokens, pos: 0 };
    p.items(tokens.len())
}

/// Depth-first iteration over a parsed item forest.
pub fn walk_items<'a>(items: &'a [Item], visit: &mut impl FnMut(&'a Item)) {
    for item in items {
        item.walk(visit);
    }
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

/// Keywords that introduce an item (after attributes/visibility).
const ITEM_KEYWORDS: &[(&str, ItemKind)] = &[
    ("fn", ItemKind::Fn),
    ("struct", ItemKind::Struct),
    ("enum", ItemKind::Enum),
    ("union", ItemKind::Union),
    ("trait", ItemKind::Trait),
    ("impl", ItemKind::Impl),
    ("mod", ItemKind::Mod),
    ("const", ItemKind::Const),
    ("static", ItemKind::Static),
    ("use", ItemKind::Use),
    ("type", ItemKind::TypeAlias),
    ("macro_rules", ItemKind::MacroDef),
];

impl<'a> Parser<'a> {
    fn at(&self, i: usize) -> Option<&'a Token> {
        self.tokens.get(i)
    }

    fn is_punct(&self, i: usize, text: &str) -> bool {
        self.at(i).is_some_and(|t| t.is_punct(text))
    }

    fn is_ident(&self, i: usize, text: &str) -> bool {
        self.at(i).is_some_and(|t| t.is_ident(text))
    }

    fn line(&self, i: usize) -> u32 {
        self.at(i).map_or(0, |t| t.line)
    }

    /// Parses items until `end` (token index, exclusive).
    fn items(&mut self, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        while self.pos < end {
            let before = self.pos;
            if let Some(item) = self.item(end) {
                out.push(item);
            }
            if self.pos <= before {
                // Error recovery: always make progress.
                self.pos = before + 1;
            }
        }
        out
    }

    /// Tries to parse one item starting at `self.pos`; on failure the
    /// caller skips a token and retries.
    fn item(&mut self, end: usize) -> Option<Item> {
        let start = self.pos;
        let attrs = self.outer_attrs(end);
        self.skip_visibility(end);
        // `unsafe fn`, `async fn`, `extern "C" fn`, `default fn`.
        while self
            .at(self.pos)
            .is_some_and(|t| matches!(t.text.as_str(), "unsafe" | "async" | "default" | "extern"))
            && self.pos < end
        {
            self.pos += 1;
            if self
                .at(self.pos)
                .is_some_and(|t| t.kind == TokenKind::Literal)
            {
                self.pos += 1; // the ABI string of `extern "C"`
            }
        }
        let kw = self.at(self.pos)?;
        let kind = ITEM_KEYWORDS
            .iter()
            .find(|(k, _)| kw.is_ident(k))
            .map(|&(_, kind)| kind)?;
        if self.pos >= end {
            return None;
        }
        self.pos += 1;
        let start_line = attrs.first().map_or(kw.line, |a| a.line);
        let mut item = Item {
            kind,
            name: String::new(),
            trait_name: None,
            attrs,
            start_line,
            end_line: kw.line,
            tokens: (start, self.pos),
            body: None,
            children: Vec::new(),
            fields: Vec::new(),
            params: Vec::new(),
        };
        match kind {
            ItemKind::Fn => self.finish_fn(&mut item, end),
            ItemKind::Struct | ItemKind::Union => self.finish_struct(&mut item, end),
            ItemKind::Enum => self.finish_enum(&mut item, end),
            ItemKind::Trait | ItemKind::Mod => self.finish_mod_like(&mut item, end),
            ItemKind::Impl => self.finish_impl(&mut item, end),
            ItemKind::Const | ItemKind::Static | ItemKind::Use | ItemKind::TypeAlias => {
                self.finish_statement_like(&mut item, end)
            }
            ItemKind::MacroDef => self.finish_macro_def(&mut item, end),
        }
        item.tokens = (start, self.pos.min(end));
        item.end_line = self.line(self.pos.saturating_sub(1)).max(item.end_line);
        Some(item)
    }

    /// Collects consecutive outer attributes (`#[…]`); inner attributes
    /// (`#![…]`) are skipped without being attached.
    fn outer_attrs(&mut self, end: usize) -> Vec<Attr> {
        let mut attrs = Vec::new();
        loop {
            // Skip inner attributes entirely.
            if self.is_punct(self.pos, "#")
                && self.is_punct(self.pos + 1, "!")
                && self.is_punct(self.pos + 2, "[")
            {
                let close = self.matching_bracket(self.pos + 2, end);
                self.pos = close + 1;
                continue;
            }
            if !(self.is_punct(self.pos, "#") && self.is_punct(self.pos + 1, "[")) {
                return attrs;
            }
            let line = self.line(self.pos);
            let open = self.pos + 1;
            let close = self.matching_bracket(open, end);
            let body = &self.tokens[(open + 1).min(close)..close];
            let text = body
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            let has_test = body
                .iter()
                .any(|t| t.kind == TokenKind::Ident && (t.text == "test" || t.text == "bench"));
            attrs.push(Attr {
                text,
                has_test,
                line,
            });
            self.pos = close + 1;
        }
    }

    fn skip_visibility(&mut self, end: usize) {
        if self.is_ident(self.pos, "pub") && self.pos < end {
            self.pos += 1;
            if self.is_punct(self.pos, "(") {
                let close = self.matching(self.pos, "(", ")", end);
                self.pos = close + 1;
            }
        }
    }

    /// Index of the bracket matching the opener at `open` (which must
    /// hold `[`); clamped to `end - 1` when unbalanced.
    fn matching_bracket(&self, open: usize, end: usize) -> usize {
        self.matching(open, "[", "]", end)
    }

    fn matching(&self, open: usize, open_text: &str, close_text: &str, end: usize) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < end {
            let Some(t) = self.at(i) else { break };
            if t.is_punct(open_text) {
                depth += 1;
            } else if t.is_punct(close_text) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    /// Scans forward for the item's `{` body opener or terminating `;`,
    /// tracking `(`/`[` nesting so a `;` inside an array type or a `{`
    /// inside a const-generic default does not end the scan early.
    /// Returns `(index, opened_brace)`.
    fn body_or_semi(&self, from: usize, end: usize) -> (usize, bool) {
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut i = from;
        while i < end {
            let Some(t) = self.at(i) else { break };
            match t.text.as_str() {
                "(" if t.kind == TokenKind::Punct => paren += 1,
                ")" if t.kind == TokenKind::Punct => paren -= 1,
                "[" if t.kind == TokenKind::Punct => bracket += 1,
                "]" if t.kind == TokenKind::Punct => bracket -= 1,
                "{" if t.kind == TokenKind::Punct && paren <= 0 && bracket <= 0 => {
                    return (i, true)
                }
                ";" if t.kind == TokenKind::Punct && paren <= 0 && bracket <= 0 => {
                    return (i, false)
                }
                _ => {}
            }
            i += 1;
        }
        (end.saturating_sub(1), false)
    }

    /// `fn name <generics> ( params ) -> Ret where … { body }` or `;`.
    fn finish_fn(&mut self, item: &mut Item, end: usize) {
        if let Some(t) = self.at(self.pos) {
            if t.kind == TokenKind::Ident {
                item.name = t.text.clone();
                self.pos += 1;
            }
        }
        // Parameters: the first `(` after the name (generics cannot
        // contain a bare `(` before the parameter list in this
        // workspace's code).
        let mut i = self.pos;
        while i < end && !self.is_punct(i, "(") && !self.is_punct(i, "{") && !self.is_punct(i, ";")
        {
            i += 1;
        }
        if self.is_punct(i, "(") {
            let close = self.matching(i, "(", ")", end);
            item.params = self.fields_in(i + 1, close, true);
            self.pos = close + 1;
        }
        let (stop, has_body) = self.body_or_semi(self.pos, end);
        if has_body {
            let close = self.matching(stop, "{", "}", end);
            item.body = Some((stop + 1, close));
            self.pos = close + 1;
        } else {
            self.pos = stop + 1;
        }
    }

    /// `struct Name { fields }`, `struct Name(tuple);`, `struct Name;`.
    fn finish_struct(&mut self, item: &mut Item, end: usize) {
        if let Some(t) = self.at(self.pos) {
            if t.kind == TokenKind::Ident {
                item.name = t.text.clone();
                self.pos += 1;
            }
        }
        let (stop, has_body) = self.body_or_semi(self.pos, end);
        if has_body {
            let close = self.matching(stop, "{", "}", end);
            item.fields = self.fields_in(stop + 1, close, false);
            item.body = Some((stop + 1, close));
            self.pos = close + 1;
        } else {
            self.pos = stop + 1;
        }
    }

    /// `enum Name { Variant, Variant(T), Variant { .. } }`.
    fn finish_enum(&mut self, item: &mut Item, end: usize) {
        if let Some(t) = self.at(self.pos) {
            if t.kind == TokenKind::Ident {
                item.name = t.text.clone();
                self.pos += 1;
            }
        }
        let (stop, has_body) = self.body_or_semi(self.pos, end);
        if !has_body {
            self.pos = stop + 1;
            return;
        }
        let close = self.matching(stop, "{", "}", end);
        item.body = Some((stop + 1, close));
        // Variants: identifiers at nesting depth 0 inside the body that
        // open a variant (start of body or directly after a top-level
        // comma).
        let mut expect_variant = true;
        let mut depth = 0i64;
        let mut i = stop + 1;
        while i < close {
            let Some(t) = self.at(i) else { break };
            match t.text.as_str() {
                "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
                ")" | "]" | "}" if t.kind == TokenKind::Punct => depth -= 1,
                "," if t.kind == TokenKind::Punct && depth == 0 => expect_variant = true,
                "#" if t.kind == TokenKind::Punct && depth == 0 => {
                    // Variant attribute: skip `[...]`.
                    if self.is_punct(i + 1, "[") {
                        i = self.matching_bracket(i + 1, close);
                    }
                }
                _ => {
                    if expect_variant && t.kind == TokenKind::Ident && depth == 0 {
                        item.fields.push(Field {
                            name: t.text.clone(),
                            type_head: String::new(),
                            type_path: Vec::new(),
                            line: t.line,
                        });
                        expect_variant = false;
                    }
                }
            }
            i += 1;
        }
        self.pos = close + 1;
    }

    /// `mod name { items }` / `trait Name { items }` (or `;`).
    fn finish_mod_like(&mut self, item: &mut Item, end: usize) {
        if let Some(t) = self.at(self.pos) {
            if t.kind == TokenKind::Ident {
                item.name = t.text.clone();
                self.pos += 1;
            }
        }
        let (stop, has_body) = self.body_or_semi(self.pos, end);
        if has_body {
            let close = self.matching(stop, "{", "}", end);
            item.body = Some((stop + 1, close));
            self.pos = stop + 1;
            item.children = self.items(close);
            self.pos = close + 1;
        } else {
            self.pos = stop + 1;
        }
    }

    /// `impl<G> Path for Path where … { items }` — `name` is the target
    /// type's last path segment, `trait_name` the trait's (when present).
    fn finish_impl(&mut self, item: &mut Item, end: usize) {
        // Skip generic parameters `<…>` by angle counting.
        if self.is_punct(self.pos, "<") {
            let mut depth = 0i64;
            while self.pos < end {
                match self.at(self.pos).map(|t| t.text.as_str()) {
                    Some("<") => depth += 1,
                    Some(">") => {
                        depth -= 1;
                        if depth <= 0 {
                            self.pos += 1;
                            break;
                        }
                    }
                    Some("<<") => depth += 2,
                    Some(">>") => depth -= 2,
                    None => break,
                    _ => {}
                }
                self.pos += 1;
            }
        }
        let first = self.path_last_segment(end);
        if self.is_ident(self.pos, "for") {
            self.pos += 1;
            let target = self.path_last_segment(end);
            item.trait_name = Some(first);
            item.name = target;
        } else {
            item.name = first;
        }
        let (stop, has_body) = self.body_or_semi(self.pos, end);
        if has_body {
            let close = self.matching(stop, "{", "}", end);
            item.body = Some((stop + 1, close));
            self.pos = stop + 1;
            item.children = self.items(close);
            self.pos = close + 1;
        } else {
            self.pos = stop + 1;
        }
    }

    /// Consumes a type path (`a::b::C<T>`, `&mut C`, `dyn T`) up to
    /// `for`/`where`/`{`/`;`, returning the last identifier segment.
    fn path_last_segment(&mut self, end: usize) -> String {
        let mut last = String::new();
        let mut angle = 0i64;
        while self.pos < end {
            let Some(t) = self.at(self.pos) else { break };
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "<<" => angle += 2,
                ">>" => angle = (angle - 2).max(0),
                "for" | "where" if t.kind == TokenKind::Ident && angle == 0 => break,
                "{" | ";" if t.kind == TokenKind::Punct && angle == 0 => break,
                _ => {
                    if t.kind == TokenKind::Ident
                        && angle == 0
                        && !matches!(t.text.as_str(), "dyn" | "mut" | "const")
                    {
                        last = t.text.clone();
                    }
                }
            }
            self.pos += 1;
        }
        last
    }

    /// `const NAME: Type = init;` / `static NAME: …;` / `use path;` /
    /// `type Alias = …;` — body is the token range after `=` (when
    /// present) so rules can scan initialisers.
    fn finish_statement_like(&mut self, item: &mut Item, end: usize) {
        if self.is_ident(self.pos, "mut") {
            self.pos += 1;
        }
        if let Some(t) = self.at(self.pos) {
            if t.kind == TokenKind::Ident {
                item.name = t.text.clone();
                self.pos += 1;
            }
        }
        // For statics/consts, record the declared type's head path
        // (`Mutex` in `static X: Mutex<…>`), reusing the Field shape.
        if (item.kind == ItemKind::Const || item.kind == ItemKind::Static)
            && self.is_punct(self.pos, ":")
        {
            let (path, _) = self.type_path_at(self.pos + 1, end);
            item.fields.push(Field {
                name: item.name.clone(),
                type_head: path.last().cloned().unwrap_or_default(),
                type_path: path,
                line: self.line(self.pos),
            });
        }
        // Scan to the terminating `;` at zero bracket depth; `{`/`}` of
        // initialiser blocks nest.
        let mut depth = 0i64;
        let mut eq_at: Option<usize> = None;
        let mut i = self.pos;
        while i < end {
            let Some(t) = self.at(i) else { break };
            match t.text.as_str() {
                "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
                ")" | "]" | "}" if t.kind == TokenKind::Punct => depth -= 1,
                "=" if t.kind == TokenKind::Punct && depth == 0 && eq_at.is_none() => {
                    eq_at = Some(i)
                }
                ";" if t.kind == TokenKind::Punct && depth <= 0 => {
                    if let Some(eq) = eq_at {
                        item.body = Some((eq + 1, i));
                    }
                    self.pos = i + 1;
                    return;
                }
                _ => {}
            }
            i += 1;
        }
        self.pos = end;
    }

    /// `macro_rules! name { … }`.
    fn finish_macro_def(&mut self, item: &mut Item, end: usize) {
        if self.is_punct(self.pos, "!") {
            self.pos += 1;
        }
        if let Some(t) = self.at(self.pos) {
            if t.kind == TokenKind::Ident {
                item.name = t.text.clone();
                self.pos += 1;
            }
        }
        let (stop, has_body) = self.body_or_semi(self.pos, end);
        if has_body {
            let close = self.matching(stop, "{", "}", end);
            item.body = Some((stop + 1, close));
            self.pos = close + 1;
        } else {
            self.pos = stop + 1;
        }
    }

    /// Parses `name: Type` pairs between `from` and `to` (exclusive) at
    /// nesting depth zero — struct fields or fn parameters. With
    /// `params`, `self` receivers and pattern params are skipped.
    fn fields_in(&self, from: usize, to: usize, params: bool) -> Vec<Field> {
        let mut out = Vec::new();
        let mut depth = 0i64;
        let mut i = from;
        while i < to {
            let Some(t) = self.at(i) else { break };
            match t.text.as_str() {
                "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
                ")" | "]" | "}" if t.kind == TokenKind::Punct => depth -= 1,
                "<" if t.kind == TokenKind::Punct => depth += 1,
                ">" if t.kind == TokenKind::Punct => depth -= 1,
                // Nested generics close with a single `>>` token.
                "<<" if t.kind == TokenKind::Punct => depth += 2,
                ">>" if t.kind == TokenKind::Punct => depth -= 2,
                _ => {
                    if depth == 0
                        && t.kind == TokenKind::Ident
                        && t.text != "self"
                        && t.text != "mut"
                        && self.is_punct(i + 1, ":")
                        && !self.is_punct(i + 2, ":")
                    {
                        let (path, _) = self.type_path_at(i + 1, to);
                        out.push(Field {
                            name: t.text.clone(),
                            type_head: path.last().cloned().unwrap_or_default(),
                            type_path: path,
                            line: t.line,
                        });
                    }
                }
            }
            i += 1;
        }
        let _ = params;
        out
    }

    /// Reads the identifier path heading a type after a `:` at `colon`
    /// (skipping `&`, lifetimes, `mut`, `dyn`), with generics stripped:
    /// `: &'a mut std::sync::Mutex<T>` → `["std","sync","Mutex"]`.
    /// Returns `(path, index after the path)`.
    fn type_path_at(&self, colon: usize, end: usize) -> (Vec<String>, usize) {
        let mut i = colon;
        if self.is_punct(i, ":") {
            i += 1;
        }
        while i < end {
            let Some(t) = self.at(i) else { break };
            let skip = t.is_punct("&")
                || t.kind == TokenKind::Lifetime
                || t.is_ident("mut")
                || t.is_ident("dyn");
            if !skip {
                break;
            }
            i += 1;
        }
        let mut path = Vec::new();
        while i < end {
            let Some(t) = self.at(i) else { break };
            if t.kind == TokenKind::Ident {
                path.push(t.text.clone());
                i += 1;
                if self.is_punct(i, "::") {
                    i += 1;
                    continue;
                }
            }
            break;
        }
        (path, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        let tokens: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        parse_items(&tokens)
    }

    #[test]
    fn fns_structs_and_consts_get_names_and_spans() {
        let src = "pub fn go(a: usize, b: &Mutex<u8>) -> usize { a + 1 }\n\
                   struct S { field: Mutex<Option<u8>>, n: usize }\n\
                   static CACHE: Mutex<Option<u8>> = Mutex::new(None);\n\
                   const K: &[&str] = &[\"a\", \"b\"];\n";
        let items = parse(src);
        assert_eq!(items.len(), 4, "{items:?}");
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert_eq!(items[0].name, "go");
        assert_eq!(items[0].params.len(), 2);
        assert_eq!(items[0].params[1].type_head, "Mutex");
        assert!(items[0].body.is_some());
        assert_eq!(items[1].kind, ItemKind::Struct);
        assert_eq!(items[1].fields.len(), 2);
        assert_eq!(items[1].fields[0].name, "field");
        assert_eq!(items[1].fields[0].type_head, "Mutex");
        assert_eq!(items[2].kind, ItemKind::Static);
        assert_eq!(items[2].name, "CACHE");
        assert_eq!(items[2].fields[0].type_head, "Mutex");
        assert!(items[2].body.is_some(), "initialiser range recorded");
        assert_eq!(items[3].kind, ItemKind::Const);
        assert_eq!(items[3].name, "K");
    }

    #[test]
    fn impls_capture_trait_and_type() {
        let src = "impl DeltaStat for MissingDelta { fn absorb(&mut self) {} }\n\
                   impl<T> Plain<T> { fn m(&self) {} }\n";
        let items = parse(src);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].trait_name.as_deref(), Some("DeltaStat"));
        assert_eq!(items[0].name, "MissingDelta");
        assert_eq!(items[0].children.len(), 1);
        assert_eq!(items[0].children[0].name, "absorb");
        assert_eq!(items[1].trait_name, None);
        assert_eq!(items[1].name, "Plain");
        assert_eq!(items[1].children[0].name, "m");
    }

    #[test]
    fn mods_nest_and_test_attrs_are_recognised() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n    fn helper() {}\n}\nfn lib() {}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        let m = &items[0];
        assert_eq!(m.kind, ItemKind::Mod);
        assert!(m.is_test_item());
        assert_eq!(m.start_line, 1);
        assert_eq!(m.end_line, 6);
        assert_eq!(m.children.len(), 2);
        assert!(m.children[0].is_test_item());
        assert!(!m.children[1].is_test_item());
        assert!(!items[1].is_test_item());
    }

    #[test]
    fn enum_variants_are_fields() {
        let src = "pub enum HarnessError {\n    InvalidConfig(String),\n    NotApplicable { algorithm: String },\n    EmptyStream,\n}\n";
        let items = parse(src);
        let names: Vec<&str> = items[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["InvalidConfig", "NotApplicable", "EmptyStream"]);
    }

    #[test]
    fn doc_strings_and_derives_do_not_mark_tests() {
        let src = "#[derive(Debug, Clone)]\n#[doc = \"contains test in a string\"]\nstruct S;\n";
        let items = parse(src);
        assert!(!items[0].is_test_item());
        assert_eq!(items[0].attrs.len(), 2);
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let src = "#[cfg(all(test, unix))]\nmod helpers {}\n";
        let items = parse(src);
        assert!(items[0].is_test_item());
    }

    #[test]
    fn malformed_input_never_loops_or_panics() {
        for src in [
            "fn",
            "impl {",
            "struct ) ] }",
            "const X",
            "mod m { fn broken(",
            "#[attr fn x() {}",
            "enum E { A(",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn const_initialiser_body_covers_literals() {
        let src = "pub const KNOWN: &[&str] = &[\n    \"a.b\",\n    \"c.d\",\n];\n";
        let items = parse(src);
        let (b0, b1) = items[0].body.expect("const body");
        let tokens: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        let lits: Vec<&str> = tokens[b0..b1]
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, ["\"a.b\"", "\"c.d\""]);
    }
}
